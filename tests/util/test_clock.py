import threading
import time

import pytest

from repro.util.clock import LogicalClock, SystemClock


class TestLogicalClock:
    def test_starts_at_given_time(self):
        assert LogicalClock(5.0).now() == 5.0

    def test_starts_at_zero_by_default(self):
        assert LogicalClock().now() == 0.0

    def test_advance_moves_forward(self):
        clock = LogicalClock()
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_sleep_advances_instead_of_blocking(self):
        clock = LogicalClock()
        started = time.monotonic()
        clock.sleep(100.0)
        assert time.monotonic() - started < 1.0
        assert clock.now() == 100.0

    def test_negative_sleep_is_clamped(self):
        clock = LogicalClock(1.0)
        clock.sleep(-5)
        assert clock.now() == 1.0

    def test_cannot_move_backwards(self):
        with pytest.raises(ValueError):
            LogicalClock().advance(-1)

    def test_thread_safe_advancing(self):
        clock = LogicalClock()

        def bump():
            for _ in range(1000):
                clock.advance(1)

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert clock.now() == 4000


class TestSystemClock:
    def test_now_is_monotonic(self):
        clock = SystemClock()
        first = clock.now()
        second = clock.now()
        assert second >= first

    def test_sleep_blocks_approximately(self):
        clock = SystemClock()
        started = time.monotonic()
        clock.sleep(0.02)
        assert time.monotonic() - started >= 0.015

    def test_zero_sleep_returns_immediately(self):
        SystemClock().sleep(0)
        SystemClock().sleep(-1)
