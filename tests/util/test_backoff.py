import random

import pytest

from repro.config import BackoffConfig
from repro.errors import StarvationError
from repro.util.backoff import ExponentialBackoff, FixedBackoff, NoBackoff


class TestExponentialBackoff:
    def test_delays_grow_geometrically_without_jitter(self):
        policy = ExponentialBackoff(
            BackoffConfig(initial_delay=0.001, multiplier=2.0,
                          max_delay=1.0, jitter=0.0)
        )
        delays = policy.delays()
        observed = [next(delays) for _ in range(4)]
        assert observed == [0.001, 0.002, 0.004, 0.008]

    def test_delay_caps_at_max(self):
        policy = ExponentialBackoff(
            BackoffConfig(initial_delay=0.5, multiplier=10.0,
                          max_delay=1.0, jitter=0.0)
        )
        delays = policy.delays()
        observed = [next(delays) for _ in range(4)]
        assert observed == [0.5, 1.0, 1.0, 1.0]

    def test_jitter_stays_in_bounds(self):
        policy = ExponentialBackoff(
            BackoffConfig(initial_delay=0.01, multiplier=1.0,
                          max_delay=0.01, jitter=0.5),
            rng=random.Random(7),
        )
        delays = policy.delays()
        for _ in range(50):
            delay = next(delays)
            assert 0.01 <= delay <= 0.015

    def test_full_jitter_draws_from_the_whole_envelope(self):
        # Full jitter is uniform on [0, envelope]: with enough seeded
        # draws the samples must reach both well below the undecorated
        # delay (classic jitter can never go below it) and near the top.
        policy = ExponentialBackoff(
            BackoffConfig(initial_delay=0.01, multiplier=1.0,
                          max_delay=0.01, jitter=0.5, full_jitter=True),
            rng=random.Random(7),
        )
        delays = policy.delays()
        observed = [next(delays) for _ in range(200)]
        assert all(0.0 <= delay <= 0.01 for delay in observed)
        assert min(observed) < 0.002      # herd-desynchronising low draws
        assert max(observed) > 0.008      # and the envelope is still used
        # the additive `jitter` knob is ignored: nothing exceeds the cap
        assert max(observed) <= 0.01

    def test_full_jitter_envelope_grows_and_caps(self):
        policy = ExponentialBackoff(
            BackoffConfig(initial_delay=0.001, multiplier=2.0,
                          max_delay=0.004, jitter=0.0, full_jitter=True),
            rng=random.Random(3),
        )
        delays = policy.delays()
        envelopes = [0.001, 0.002, 0.004, 0.004, 0.004]
        for envelope in envelopes:
            assert 0.0 <= next(delays) <= envelope

    def test_full_jitter_still_starves_after_max_attempts(self):
        policy = ExponentialBackoff(
            BackoffConfig(max_attempts=3, full_jitter=True),
            rng=random.Random(1),
        )
        delays = policy.delays()
        for _ in range(3):
            next(delays)
        with pytest.raises(StarvationError) as info:
            next(delays)
        assert info.value.attempts == 3

    def test_starves_after_max_attempts(self):
        policy = ExponentialBackoff(
            BackoffConfig(max_attempts=3, jitter=0.0)
        )
        delays = policy.delays()
        for _ in range(3):
            next(delays)
        with pytest.raises(StarvationError) as info:
            next(delays)
        assert info.value.attempts == 3
        assert not info.value.retriable


class TestFixedBackoff:
    def test_constant_delay(self):
        delays = FixedBackoff(delay=0.005).delays()
        assert [next(delays) for _ in range(3)] == [0.005] * 3

    def test_max_attempts(self):
        delays = FixedBackoff(delay=0, max_attempts=1).delays()
        next(delays)
        with pytest.raises(StarvationError):
            next(delays)


class TestNoBackoff:
    def test_zero_delays(self):
        delays = NoBackoff().delays()
        assert [next(delays) for _ in range(5)] == [0.0] * 5

    def test_max_attempts(self):
        delays = NoBackoff(max_attempts=2).delays()
        next(delays)
        next(delays)
        with pytest.raises(StarvationError):
            next(delays)
