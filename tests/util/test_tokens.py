import threading

from repro.util.tokens import TokenGenerator


def test_tokens_are_unique_and_increasing():
    gen = TokenGenerator()
    tokens = [gen.next() for _ in range(100)]
    assert tokens == sorted(tokens)
    assert len(set(tokens)) == 100


def test_start_value():
    gen = TokenGenerator(start=1000)
    assert gen.next() == 1000


def test_thread_safe_uniqueness():
    gen = TokenGenerator()
    seen = []
    lock = threading.Lock()

    def pull():
        local = [gen.next() for _ in range(2000)]
        with lock:
            seen.extend(local)

    threads = [threading.Thread(target=pull) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(seen) == len(set(seen)) == 16000
