import threading

import pytest

from repro.util.histogram import LatencyHistogram


def test_empty_histogram_has_no_percentiles():
    hist = LatencyHistogram()
    assert hist.percentile(0.95) is None
    assert hist.mean() is None
    assert hist.max() is None
    assert len(hist) == 0


def test_percentile_nearest_rank():
    hist = LatencyHistogram()
    for value in range(1, 101):
        hist.record(value / 1000.0)
    assert hist.percentile(0.95) == pytest.approx(0.095)
    assert hist.percentile(0.50) == pytest.approx(0.050)
    assert hist.percentile(1.0) == pytest.approx(0.100)


def test_percentile_bounds_validation():
    hist = LatencyHistogram()
    hist.record(0.1)
    with pytest.raises(ValueError):
        hist.percentile(0.0)
    with pytest.raises(ValueError):
        hist.percentile(1.5)


def test_mean_and_max():
    hist = LatencyHistogram()
    for value in (0.010, 0.020, 0.030):
        hist.record(value)
    assert hist.mean() == pytest.approx(0.020)
    assert hist.max() == pytest.approx(0.030)


def test_meets_sla():
    hist = LatencyHistogram()
    for _ in range(99):
        hist.record(0.010)
    hist.record(0.500)
    assert hist.meets_sla(0.95, 0.100)
    assert not hist.meets_sla(1.0, 0.100)


def test_merge_folds_samples():
    first, second = LatencyHistogram(), LatencyHistogram()
    first.record(0.010)
    second.record(0.020)
    first.merge(second)
    assert len(first) == 2
    assert first.max() == pytest.approx(0.020)


def test_concurrent_recording():
    hist = LatencyHistogram()

    def record():
        for i in range(1000):
            hist.record(i / 1e6)

    threads = [threading.Thread(target=record) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(hist) == 4000


def test_merge_returns_self_for_chaining():
    first, second = LatencyHistogram(), LatencyHistogram()
    second.record(0.030)
    assert first.merge(second) is first
    assert len(first) == 1
    # The source is snapshotted, not drained.
    assert len(second) == 1


def test_merge_with_self_is_a_noop():
    hist = LatencyHistogram()
    hist.record(0.010)
    hist.merge(hist)
    assert len(hist) == 1


def test_merged_classmethod_aggregates_shards():
    shards = [LatencyHistogram() for _ in range(4)]
    for index, shard in enumerate(shards):
        for _ in range(10):
            shard.record((index + 1) / 1000.0)
    combined = LatencyHistogram.merged(shards)
    assert len(combined) == 40
    assert combined.max() == pytest.approx(0.004)
    assert combined.percentile(0.25) == pytest.approx(0.001)
    # The sources are untouched.
    assert all(len(shard) == 10 for shard in shards)


def test_snapshot_and_clear():
    hist = LatencyHistogram()
    hist.record(0.010)
    hist.record(0.020)
    assert hist.snapshot() == [0.010, 0.020]
    hist.clear()
    assert len(hist) == 0
    assert hist.snapshot() == []


def test_concurrent_cross_merges_do_not_deadlock():
    first, second = LatencyHistogram(), LatencyHistogram()
    for i in range(100):
        first.record(i / 1e6)
        second.record(i / 1e6)

    def churn(target, source):
        for _ in range(200):
            target.merge(source)

    threads = [
        threading.Thread(target=churn, args=(first, second)),
        threading.Thread(target=churn, args=(second, first)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert not any(t.is_alive() for t in threads)
