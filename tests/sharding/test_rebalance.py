"""Online rebalancing: quarantine-copy-flip migrations and warm replicas.

The model checker (tests/mc/test_rebalance_mc.py) proves the protocol
over every interleaving of small configurations; these tests pin the
deterministic mechanics -- reports, routing, journal hand-off, the
dual-epoch upgrade of in-flight sessions, and replica promotion -- on
larger key populations.
"""

import pytest

from repro.core.iq_server import IQServer
from repro.errors import QuarantinedError
from repro.obs.audit import CATEGORY_QUARANTINE_LEAK, audited
from repro.sharding import (
    ConsistentHashRing,
    Rebalancer,
    ShardedIQServer,
    WarmReplica,
)


def build_router(shards=2, keys=40):
    router = ShardedIQServer(
        [IQServer() for _ in range(shards)], fanout_workers=0
    )
    seeded = {}
    for i in range(keys):
        key = "key{}".format(i)
        value = "v{}".format(i).encode()
        router.shard_for(key).store.set(key, value)
        seeded[key] = value
    return router, seeded


def moving_keys(seeded, joiner="shard2", members=("shard0", "shard1")):
    old = ConsistentHashRing(list(members), vnodes=64)
    new = ConsistentHashRing(list(members) + [joiner], vnodes=64)
    return sorted(
        key for key in seeded
        if old.node_for(key) != new.node_for(key)
    )


def cached_value(router, key):
    hit = router.shard_for(key).store.get(key)
    return None if hit is None else hit[0]


class TestAddShard:
    def test_values_follow_ownership(self):
        router, seeded = build_router()
        moving = moving_keys(seeded)
        assert moving, "hash layout must move at least one key"
        report = Rebalancer(router).add_shard("shard2", IQServer())
        assert report.completed
        assert report.kind == "add"
        assert report.moving == len(moving)
        assert report.copied == len(moving)
        assert report.dropped == 0
        for key, value in seeded.items():
            assert cached_value(router, key) == value
        for key in moving:
            assert router.shard_name_for(key) == "shard2"

    def test_epoch_advances_and_window_closes(self):
        router, _ = build_router()
        before = router.epoch
        Rebalancer(router).add_shard("shard2", IQServer())
        assert router.epoch == before + 1
        assert not router.rebalance_active
        counters = router._router_counters()
        assert counters["migrations"] == 1
        assert counters["ring_epoch"] == router.epoch

    def test_sources_are_swept_clean(self):
        router, seeded = build_router()
        moving = moving_keys(seeded)
        Rebalancer(router).add_shard("shard2", IQServer())
        for key in moving:
            for name in ("shard0", "shard1"):
                assert router.backend(name).store.get(key) is None

    def test_copy_values_false_serves_misses(self):
        router, seeded = build_router()
        moving = moving_keys(seeded)
        report = Rebalancer(router, copy_values=False).add_shard(
            "shard2", IQServer()
        )
        assert report.copied == 0
        assert report.uncopied == len(moving)
        for key in moving:
            assert cached_value(router, key) is None

    def test_migration_leaves_no_quarantine_leak(self):
        router, _ = build_router()
        with audited() as auditor:
            Rebalancer(router).add_shard("shard2", IQServer())
        leaks = [
            v for v in auditor.violations
            if v.category == CATEGORY_QUARANTINE_LEAK
        ]
        assert not leaks
        assert not auditor.quarantined_keys()


class TestRemoveShard:
    def test_keys_return_to_survivors(self):
        router, seeded = build_router()
        Rebalancer(router).add_shard("shard2", IQServer())
        report = Rebalancer(router).remove_shard("shard2")
        assert report.completed
        for key, value in seeded.items():
            assert router.shard_name_for(key) != "shard2"
            assert cached_value(router, key) == value
        router.detach_shard("shard2")
        assert "shard2" not in router.shard_names

    def test_dead_removal_skips_reads_and_misses(self):
        router, seeded = build_router()
        Rebalancer(router).add_shard("shard2", IQServer())
        moving = [
            key for key in seeded
            if router.shard_name_for(key) == "shard2"
        ]
        report = Rebalancer(router).remove_shard("shard2", dead=True)
        assert report.completed
        assert report.kind == "remove-dead"
        assert report.copied == 0
        for key in moving:
            assert router.shard_name_for(key) != "shard2"
            assert cached_value(router, key) is None  # miss, never stale

    def test_residuals_on_survivors_are_deleted(self):
        router, seeded = build_router()
        Rebalancer(router).add_shard("shard2", IQServer())
        victim = next(
            key for key in sorted(seeded)
            if router.shard_name_for(key) == "shard2"
        )
        # Plant a stale leftover on the shard that will regain the key.
        two_ring = ConsistentHashRing(["shard0", "shard1"], vnodes=64)
        regainer = two_ring.node_for(victim)
        router.backend(regainer).store.set(victim, b"stale-residual")
        report = Rebalancer(
            router, copy_values=False
        ).remove_shard("shard2")
        assert report.completed
        assert cached_value(router, victim) != b"stale-residual"

    def test_cannot_remove_last_shard(self):
        router = ShardedIQServer([IQServer()], fanout_workers=0)
        with pytest.raises(ValueError):
            Rebalancer(router).remove_shard("shard0")


class TestContention:
    def test_contended_key_is_dropped_and_journaled(self):
        router, seeded = build_router()
        victim = moving_keys(seeded)[0]
        holder = router.gen_id()
        router.qar(holder, victim)  # a live writer's Q lease
        report = Rebalancer(router, quarantine_attempts=2).add_shard(
            "shard2", IQServer()
        )
        assert report.completed
        assert report.dropped == 1
        assert report.quarantine_rejections == 2
        assert victim in router.journal.peek()
        # The new owner serves a miss for the dropped key, never a copy.
        assert router.backend("shard2").store.get(victim) is None
        router.dar(holder)

    def test_inflight_writer_is_dual_legged_at_begin(self):
        # The schedule the model checker found: a writer quarantines a
        # moving key *before* the window opens, out-quarantines the
        # migrator (drop), and commits after the flip.  The begin-time
        # upgrade must extend its leg to the new owner so readers there
        # back off until its DaR deletes both copies.
        router, seeded = build_router()
        victim = moving_keys(seeded)[0]
        writer = router.gen_id()
        router.qar(writer, victim)
        joiner = IQServer()
        rebalancer = Rebalancer(router, quarantine_attempts=1)
        steps = rebalancer.steps_add("shard2", joiner)
        for step in steps:
            step.run()
        assert rebalancer.report.dropped == 1
        assert router.shard_name_for(victim) == "shard2"
        # Post-flip, pre-DaR: the upgraded leg's Q lease fences fills.
        fill = router.iq_get(victim)
        assert fill.token is None and fill.backoff
        router.dar(writer)
        # After the DaR both copies are gone; a fresh fill is admitted.
        assert router.backend("shard2").store.get(victim) is None
        fill = router.iq_get(victim)
        assert fill.token is not None
        assert router.iq_set(victim, b"committed", fill.token)
        assert cached_value(router, victim) == b"committed"

    def test_released_sessions_are_not_upgraded(self):
        # A refresh session that already SaR'd (no terminal command)
        # lingers in the router's session map; the upgrade must skip it
        # or its never-released dest leg would fence the key until TTL.
        router, seeded = build_router()
        victim = moving_keys(seeded)[0]
        done = router.gen_id()
        router.qaread(victim, done)
        router.sar(victim, b"refreshed", done)  # lease released here
        Rebalancer(router).add_shard("shard2", IQServer())
        fill = router.iq_get(victim)
        assert fill.value == b"refreshed"  # copied, served, unfenced

    def test_abort_releases_quarantines_and_window(self):
        router, seeded = build_router()
        rebalancer = Rebalancer(router)
        steps = rebalancer.steps_add("shard2", IQServer())
        ran = 0
        for step in steps:
            step.run()
            ran += 1
            if step.label.startswith("move:"):
                break
        assert router.rebalance_active
        rebalancer.abort()
        assert not router.rebalance_active
        assert not rebalancer._held
        # Every key is still readable where the old ring routes it.
        for key, value in seeded.items():
            assert router.shard_name_for(key) != "shard2"
        victim = moving_keys(seeded)[0]
        tid = router.gen_id()
        router.qaread(victim, tid)  # would raise if a lease leaked
        router.abort(tid)


class TestTransitionRaces:
    """Deterministic replays of the route-vs-transition races.

    Each test interposes on a shard command so the topology transition
    happens *inside* an acquisition -- after the route was snapshotted,
    before the leg was recorded.  That is the exact interleaving a
    thread preemption would produce: the begin-time upgrade cannot see
    the not-yet-recorded leg, so the post-acquisition re-check must
    dual-leg the key retroactively.
    """

    def test_window_opening_mid_acquisition_is_dual_legged(self):
        router, seeded = build_router()
        victim = moving_keys(seeded)[0]
        old_owner = router.shard_name_for(victim)
        joiner = IQServer()
        backend = router.backend(old_owner)
        orig_qar = backend.qar
        fired = []

        def racing_qar(tid, key):
            result = orig_qar(tid, key)
            if not fired:
                fired.append(True)
                router.begin_rebalance(add=("shard2", joiner))
            return result

        backend.qar = racing_qar
        writer = router.gen_id()
        try:
            router.qar(writer, victim)
        finally:
            backend.qar = orig_qar
        session = router._lookup(writer)
        assert victim in session.keys_by_shard.get("shard2", set())
        router.commit_rebalance()
        assert router.shard_name_for(victim) == "shard2"
        # Pre-DaR the retro leg's Q lease fences fills on the new owner.
        fill = router.iq_get(victim)
        assert fill.token is None and fill.backoff
        router.dar(writer)
        # The DaR deleted both epochs' copies; a fresh fill is admitted.
        assert joiner.store.get(victim) is None
        fill = router.iq_get(victim)
        assert fill.token is not None

    def test_flip_mid_acquisition_invalidates_new_owner(self):
        # Worst case: the whole window opens *and* flips while one
        # acquisition is in flight, so the session acquired only on the
        # losing epoch's owner.  Its commit must still invalidate the
        # copy the post-flip ring routes.
        router, seeded = build_router()
        victim = moving_keys(seeded)[0]
        old_owner = router.shard_name_for(victim)
        joiner = IQServer()
        # The migration already copied the pre-write value across.
        joiner.store.set(victim, seeded[victim])
        backend = router.backend(old_owner)
        orig_qar = backend.qar
        fired = []

        def racing_qar(tid, key):
            result = orig_qar(tid, key)
            if not fired:
                fired.append(True)
                router.begin_rebalance(add=("shard2", joiner))
                router.commit_rebalance()
            return result

        backend.qar = racing_qar
        writer = router.gen_id()
        try:
            router.qar(writer, victim)
        finally:
            backend.qar = orig_qar
        session = router._lookup(writer)
        assert victim in session.keys_by_shard.get("shard2", set())
        router.dar(writer)
        # The committed write invalidated the routed (new) owner's copy
        # instead of stranding the pre-write value there.
        assert joiner.store.get(victim) is None
        assert cached_value(router, victim) is None

    def test_flip_mid_bulk_acquisition_is_dual_legged(self):
        router, seeded = build_router()
        victim = moving_keys(seeded)[0]
        old_owner = router.shard_name_for(victim)
        joiner = IQServer()
        joiner.store.set(victim, seeded[victim])
        backend = router.backend(old_owner)
        orig_bulk = backend.qar_many
        fired = []

        def racing_bulk(tid, shard_keys):
            result = orig_bulk(tid, shard_keys)
            if not fired:
                fired.append(True)
                router.begin_rebalance(add=("shard2", joiner))
                router.commit_rebalance()
            return result

        backend.qar_many = racing_bulk
        writer = router.gen_id()
        try:
            results = router.qar_many(writer, [victim])
        finally:
            backend.qar_many = orig_bulk
        assert results[victim] == "granted"
        session = router._lookup(writer)
        assert victim in session.keys_by_shard.get("shard2", set())
        router.dar(writer)
        assert joiner.store.get(victim) is None

    def test_mdelete_counts_moving_key_once(self):
        # Inside a window a moving key is deleted on both owners but
        # must count as one hit -- callers compare hits against
        # len(keys) for reconcile accounting.
        router, seeded = build_router()
        victim = moving_keys(seeded)[0]
        old_owner = router.shard_name_for(victim)
        joiner = IQServer()
        joiner.store.set(victim, b"migration-copy")
        router.begin_rebalance(add=("shard2", joiner))
        try:
            assert router.mdelete([victim]) == 1
        finally:
            router.abort_rebalance()
        assert router.backend(old_owner).store.get(victim) is None
        assert joiner.store.get(victim) is None


class TestNaiveMoveIsUnsafe:
    def test_copy_then_flip_resurrects_pre_write_value(self):
        # The control experiment: without quarantine or a window, a
        # writer committing between copy and flip leaves the new owner's
        # copy stale -- the exact bug the safe protocol exists to
        # prevent (the mc scenario explores it; this pins one schedule).
        router, seeded = build_router()
        victim = moving_keys(seeded)[0]
        rebalancer = Rebalancer(router, safe=False)
        steps = rebalancer.steps_add("shard2", IQServer())
        for step in steps:
            if step.label.startswith("flip:"):
                writer = router.gen_id()
                router.qar(writer, victim)
                router.dar(writer)  # invalidates the old owner only
            step.run()
        assert router.shard_name_for(victim) == "shard2"
        assert cached_value(router, victim) == seeded[victim]  # stale!


class TestWarmReplica:
    def test_mirror_tracks_stores_and_deletes(self):
        router, seeded = build_router()
        victim = sorted(seeded)[0]
        owner = router.shard_name_for(victim)
        standby = IQServer()
        replica = WarmReplica(router, owner, standby)
        assert standby.store.get(victim)[0] == seeded[victim]  # synced
        router.backend(owner).store.set(victim, b"updated")
        assert standby.store.get(victim)[0] == b"updated"
        router.backend(owner).store.delete(victim)
        assert standby.store.get(victim) is None
        assert replica.mirrored_stores >= 1
        assert replica.mirrored_deletes >= 1

    def test_promote_swaps_backend_in_place(self):
        router, seeded = build_router()
        victim = sorted(seeded)[0]
        owner = router.shard_name_for(victim)
        replica = WarmReplica(router, owner, IQServer())
        before = router.epoch
        replica.promote()
        assert router.epoch == before + 1
        assert router.backend(owner) is replica.standby
        assert cached_value(router, victim) == seeded[victim]

    def test_promote_rebuilds_inflight_legs_as_invalidations(self):
        router, seeded = build_router()
        victim = sorted(seeded)[0]
        owner = router.shard_name_for(victim)
        replica = WarmReplica(router, owner, IQServer())
        writer = router.gen_id()
        router.qar(writer, victim)
        rebuilt = replica.promote()
        assert rebuilt == 1
        # The rebuilt leg fences the standby until the writer's DaR.
        with pytest.raises(QuarantinedError):
            other = router.gen_id()
            router.qaread(victim, other)
        router.dar(writer)
        assert replica.standby.store.get(victim) is None  # invalidated

    def test_write_during_initial_sync_is_not_lost(self):
        # A write landing on an *already-copied* key while the initial
        # sync is still running must reach the standby: hooks attach
        # and the copy runs under one store-lock acquisition (copying
        # first and attaching after would silently drop such writes,
        # leaving the standby permanently diverged after promote).
        router, seeded = build_router()
        owner = router.shard_name_for(sorted(seeded)[0])
        standby = IQServer()
        real_set = standby.store.set
        copied = []
        fired = []

        def racing_set(key, value, *args, **kwargs):
            if copied and not fired:
                # The first key is fully copied; overwrite it on the
                # owner while the sync is still walking later keys.
                fired.append(True)
                router.backend(owner).store.set(
                    copied[0], b"written-during-sync"
                )
            result = real_set(key, value, *args, **kwargs)
            copied.append(key)
            return result

        standby.store.set = racing_set
        try:
            WarmReplica(router, owner, standby)
        finally:
            standby.store.set = real_set
        assert fired, "owner must cache >= 2 keys to stage the race"
        assert standby.store.get(copied[0])[0] == b"written-during-sync"

    def test_detach_stops_mirroring(self):
        router, seeded = build_router()
        victim = sorted(seeded)[0]
        owner = router.shard_name_for(victim)
        replica = WarmReplica(router, owner, IQServer())
        replica.detach()
        router.backend(owner).store.set(victim, b"after-detach")
        assert replica.standby.store.get(victim)[0] == seeded[victim]

    def test_failed_rebuild_aborts_partial_standby_tid(self):
        # A standby that rejects one key's re-quarantine must not leave
        # the keys it *did* re-quarantine Q-leased until TTL expiry --
        # the partially-built rebuild TID is aborted before the leg is
        # poisoned, so readers and writers of those keys are unblocked.
        router, seeded = build_router()
        owner = "shard0"
        owner_keys = sorted(
            key for key in seeded if router.shard_name_for(key) == owner
        )
        assert len(owner_keys) >= 2
        first, blocked = owner_keys[0], owner_keys[1]
        writer = router.gen_id()
        router.qar(writer, first)
        router.qar(writer, blocked)
        standby = IQServer()
        # A foreign exclusive lease makes the second key's rebuild fail
        # after the first key was already re-quarantined.
        foreign = standby.gen_id()
        standby.qaread(blocked, foreign)
        assert router.promote_replica(owner, standby) == 0
        standby.abort(foreign)
        # The first key's re-quarantine was rolled back: a fresh
        # session acquires it instead of backing off until TTL.
        probe = standby.gen_id()
        standby.qaread(first, probe)
        standby.abort(probe)
        assert first in router.journal.peek()
        router.dar(writer)

    def test_wire_backend_without_store_is_rejected(self):
        router, _ = build_router()

        class Storeless:
            pass

        router._backends["shard0"] = Storeless()
        with pytest.raises(TypeError):
            WarmReplica(router, "shard0", IQServer())
