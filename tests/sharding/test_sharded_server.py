"""ShardedIQServer: routing, composite sessions, parity with one server.

The acceptance bar for the router: with ``shards=1`` it is
indistinguishable from driving the :class:`IQServer` directly (same
results, byte-identical store contents), and with several shards each
key's lease protocol runs entirely on its owning shard.
"""

import pytest

from repro.bg.actions import Technique
from repro.bg.harness import build_bg_system
from repro.casql.keys import KeySpace
from repro.core.backend import LeaseBackend
from repro.core.iq_server import IQServer
from repro.errors import QuarantinedError
from repro.sharding import ShardedIQServer

TECHNIQUES = [Technique.INVALIDATE, Technique.REFRESH, Technique.DELTA]


def make_router(count):
    backends = [IQServer() for _ in range(count)]
    return ShardedIQServer(backends), backends


def keys_on_distinct_shards(router, count, prefix="key"):
    """One key per shard, for ``count`` distinct shards, sorted by shard."""
    chosen = {}
    for i in range(100_000):
        key = "{}{}".format(prefix, i)
        name = router.shard_name_for(key)
        if name not in chosen:
            chosen[name] = key
            if len(chosen) == count:
                return [chosen[name] for name in sorted(chosen)]
    raise AssertionError("could not find keys on {} shards".format(count))


# ---------------------------------------------------------------------------
# Construction and protocol compliance
# ---------------------------------------------------------------------------

def test_router_is_a_lease_backend():
    router, _ = make_router(2)
    assert isinstance(router, LeaseBackend)


def test_requires_at_least_one_shard():
    with pytest.raises(ValueError):
        ShardedIQServer([])


def test_names_must_be_unique_and_match():
    with pytest.raises(ValueError):
        ShardedIQServer([IQServer(), IQServer()], names=["a", "a"])
    with pytest.raises(ValueError):
        ShardedIQServer([IQServer(), IQServer()], names=["a"])


# ---------------------------------------------------------------------------
# shards=1 parity: the router is pure pass-through plus TID indirection
# ---------------------------------------------------------------------------

def drive_protocol(backend):
    """One scripted pass over all three techniques; returns observations."""
    observed = []

    # Read-through population under an I lease.
    miss = backend.iq_get("k")
    assert miss.has_lease
    observed.append(miss.value)
    backend.iq_set("k", b"v1", miss.token)
    observed.append(backend.iq_get("k").value)

    # Invalidate session: QaR then commit deletes.
    tid = backend.gen_id()
    backend.qar(tid, "k")
    backend.commit(tid)
    after = backend.iq_get("k")
    observed.append(after.value)
    backend.iq_set("k", b"v2", after.token)

    # Refresh session: QaRead then SaR.
    tid = backend.gen_id()
    old = backend.qaread("k", tid).value
    observed.append(old)
    backend.sar("k", old + b"+r", tid)
    backend.commit(tid)
    observed.append(backend.iq_get("k").value)

    # Incremental-update session: buffered delta applied at commit.
    counter = backend.iq_get("c")
    backend.iq_set("c", b"10", counter.token)
    tid = backend.gen_id()
    backend.iq_delta(tid, "c", "incr", 5)
    backend.commit(tid)
    observed.append(backend.iq_get("c").value)

    # Abort releases without applying.
    tid = backend.gen_id()
    backend.qar(tid, "c")
    backend.abort(tid)
    observed.append(backend.iq_get("c").value)
    return observed


def test_single_shard_router_matches_direct_server():
    direct = IQServer()
    router, backends = make_router(1)
    assert drive_protocol(direct) == drive_protocol(router)
    for key in ("k", "c"):
        assert direct.store.get(key) == backends[0].store.get(key)


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_single_shard_bg_run_is_byte_identical(technique):
    """A deterministic single-threaded BG run leaves byte-identical
    cache contents behind ``shards=1`` and the direct server path."""
    build = dict(
        members=40, friends_per_member=6, resources_per_member=2,
        technique=technique, seed=7,
    )
    direct = build_bg_system(**build)
    sharded = build_bg_system(shards=1, **build)
    assert isinstance(sharded.cache, ShardedIQServer)

    r1 = direct.runner.run(threads=1, ops_per_thread=150)
    r2 = sharded.runner.run(threads=1, ops_per_thread=150)
    assert r1.actions == r2.actions == 150
    assert r1.errors == r2.errors == 0
    assert direct.log.unpredictable_reads() == 0
    assert sharded.log.unpredictable_reads() == 0

    def cache_contents(store):
        keyspace = KeySpace()
        state = {}
        members = build["members"]
        resources = members * build["resources_per_member"] + 1
        kinds = [
            keyspace.profile, keyspace.friends, keyspace.pending_friends,
            keyspace.top_resources, keyspace.pending_count,
            keyspace.friend_count,
        ]
        for member in range(members):
            for kind in kinds:
                key = kind(member)
                hit = store.get(key)
                state[key] = None if hit is None else hit[0]
        for resource in range(resources):
            key = keyspace.resource_comments(resource)
            hit = store.get(key)
            state[key] = None if hit is None else hit[0]
        return state

    assert cache_contents(direct.cache.store) == cache_contents(
        sharded.cache.backend("shard0").store
    )


# ---------------------------------------------------------------------------
# Multi-shard routing
# ---------------------------------------------------------------------------

def test_keys_live_only_on_their_owning_shard():
    router, backends = make_router(3)
    keys = keys_on_distinct_shards(router, 3)
    for key in keys:
        miss = router.iq_get(key)
        router.iq_set(key, key.encode(), miss.token)
    for key in keys:
        owner = router.shard_for(key)
        assert owner.store.get(key)[0] == key.encode()
        for backend in backends:
            if backend is not owner:
                assert backend.store.get(key) is None


def test_shard_tids_are_minted_lazily():
    router, backends = make_router(3)
    keys = keys_on_distinct_shards(router, 3)
    tid = router.gen_id()
    assert all(backend.session_count() == 0 for backend in backends)
    router.qar(tid, keys[0])
    assert router.shard_for(keys[0]).session_count() == 1
    assert sum(backend.session_count() for backend in backends) == 1
    router.commit(tid)
    assert all(backend.session_count() == 0 for backend in backends)
    assert router.session_count() == 0


def test_commit_fans_out_to_every_touched_shard():
    router, backends = make_router(3)
    keys = keys_on_distinct_shards(router, 3)
    for key in keys:
        miss = router.iq_get(key)
        router.iq_set(key, b"cached", miss.token)
    tid = router.gen_id()
    for key in keys:
        router.qar(tid, key)
    router.commit(tid)
    for key in keys:
        assert router.shard_for(key).store.get(key) is None
    assert all(backend.session_count() == 0 for backend in backends)


def test_abort_releases_across_shards_without_applying():
    router, backends = make_router(3)
    keys = keys_on_distinct_shards(router, 3)
    for key in keys:
        miss = router.iq_get(key)
        router.iq_set(key, b"cached", miss.token)
    tid = router.gen_id()
    for key in keys:
        router.qar(tid, key)
    router.abort(tid)
    for key in keys:
        assert router.shard_for(key).store.get(key)[0] == b"cached"
    assert all(backend.session_count() == 0 for backend in backends)


def test_terminators_are_idempotent_for_unknown_tids():
    router, _ = make_router(2)
    assert router.commit(424242) is True
    assert router.abort(424242) is True


def test_read_your_own_update_routes_to_the_touched_shard():
    router, _ = make_router(3)
    key = keys_on_distinct_shards(router, 3)[0]
    miss = router.iq_get(key)
    router.iq_set(key, b"10", miss.token)
    tid = router.gen_id()
    router.iq_delta(tid, key, "incr", 5)
    # The writing session sees its pending version through the router...
    assert router.iq_get(key, session=tid).value == b"15"
    router.commit(tid)
    assert router.iq_get(key).value == b"15"


def test_merged_stats_sum_every_shard():
    router, backends = make_router(3)
    keys = keys_on_distinct_shards(router, 3)
    for key in keys:
        miss = router.iq_get(key)
        router.iq_set(key, b"v", miss.token)
        router.iq_get(key)
    merged = router.stats.snapshot()
    per_shard = router.shard_stats()
    assert set(per_shard) == {"shard0", "shard1", "shard2"}
    for name in ("cmd_get", "get_hits", "i_lease_grants"):
        assert merged[name] == sum(s[name] for s in per_shard.values())
    assert merged["get_hits"] == 3
    assert router.stats.hit_rate() == pytest.approx(0.5)


def test_local_journal_reconciles_by_routing():
    # In-process IQServer shards have no recovery journal of their own,
    # so journaled keys collect locally and reconcile by routed delete.
    router, _ = make_router(3)
    keys = keys_on_distinct_shards(router, 3)
    for key in keys:
        miss = router.iq_get(key)
        router.iq_set(key, b"stale?", miss.token)
    router.journal.add(keys)
    assert router.journal.peek() == sorted(keys)
    assert router.journal.total_journaled == 3
    assert router.reconcile_local() == 3
    assert not router.journal
    for key in keys:
        assert router.shard_for(key).store.get(key) is None


def test_local_journal_counts_a_requeued_key_once():
    # A failed reconcile pass re-adds the keys it could not delete; the
    # re-add must not inflate total_journaled (the key was never
    # successfully reconciled, so it is the *same* journaling event).
    router, _ = make_router(3)
    keys = keys_on_distinct_shards(router, 3)
    router.journal.add(keys)
    assert router.journal.total_journaled == 3
    requeued = router.journal.drain_local()
    assert sorted(requeued) == sorted(keys)
    router.journal.add(requeued)
    assert router.journal.total_journaled == 3
    assert router.journal.peek() == sorted(keys)


def test_flush_all_clears_shards_and_composite_sessions():
    router, backends = make_router(3)
    keys = keys_on_distinct_shards(router, 3)
    miss = router.iq_get(keys[0])
    router.iq_set(keys[0], b"v", miss.token)
    tid = router.gen_id()
    router.qar(tid, keys[0])
    router.flush_all()
    assert router.session_count() == 0
    assert all(backend.session_count() == 0 for backend in backends)
    assert router.shard_for(keys[0]).store.get(keys[0]) is None
    # A zombie terminator for a pre-flush composite session is a no-op.
    assert router.commit(tid) is True
    # A zombie *acquisition* is rejected at the router's own watermark:
    # recreating the composite session would mint fresh post-flush shard
    # TIDs and resurrect server-side state under a stale identifier.
    with pytest.raises(QuarantinedError):
        router.qar(tid, keys[0])
    with pytest.raises(QuarantinedError):
        router.qaread(keys[0], tid)
    with pytest.raises(QuarantinedError):
        router.iq_delta(tid, keys[0], "incr", 1)
    # sar/propose_refresh from a retired session are lease-less no-ops
    # on the direct server, so the router ignores them the same way.
    assert router.sar(keys[0], b"zombie", tid) is False
    assert router.propose_refresh(keys[0], b"zombie", tid) is False
    assert router.session_count() == 0
    assert all(backend.session_count() == 0 for backend in backends)
    # The shards' own watermarks still guard direct zombie shard TIDs.
    stale_shard_tid = None
    for backend in backends:
        if backend._tid_watermark >= 1:
            stale_shard_tid = backend
    assert stale_shard_tid is not None
    with pytest.raises(QuarantinedError):
        stale_shard_tid.qar(1, "some-key")
    # Post-flush sessions mint fresh TIDs above the watermark and work.
    fresh = router.gen_id()
    assert fresh > tid
    router.qar(fresh, keys[0])
    router.commit(fresh)
