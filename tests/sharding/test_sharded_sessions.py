"""Write sessions whose KeyChange set spans several shards.

One application-level session, three keys, three shards: the growing
phase must acquire Q leases on every owning shard before the RDBMS
commit, the shrinking phase must apply on every touched shard after it,
and nothing may leak (sessions, leases, buffered proposals) once the
session terminates -- under all three consistency techniques.
"""

import pytest

from repro.core.iq_client import IQClient
from repro.core.iq_server import IQServer
from repro.core.policies import (
    IQDeltaClient,
    IQInvalidateClient,
    IQRefreshClient,
    KeyChange,
)
from repro.core.session import AcquisitionMode
from repro.sharding import ShardedIQServer
from repro.util.backoff import NoBackoff

from tests.sharding.test_sharded_server import keys_on_distinct_shards


@pytest.fixture
def router():
    return ShardedIQServer([IQServer() for _ in range(3)])


def make_policy(cls, router, users_db, mode=AcquisitionMode.DURING):
    client = IQClient(router, backoff=NoBackoff(max_attempts=50))
    return cls(client, users_db.connect, mode=mode, backoff=NoBackoff())


def score_body(session):
    session.execute("UPDATE users SET score = score + 1 WHERE id = 1")
    return "done"


def read_score(users_db):
    fresh = users_db.connect()
    try:
        return fresh.query_scalar("SELECT score FROM users WHERE id = 1")
    finally:
        fresh.close()


def populate(policy, keys, value):
    for key in keys:
        assert policy.read(key, lambda: value) == value


def assert_no_leaked_sessions(router):
    assert router.session_count() == 0
    for name in router.shard_names:
        assert router.backend(name).session_count() == 0


@pytest.mark.parametrize(
    "mode", [AcquisitionMode.PRIOR, AcquisitionMode.DURING]
)
def test_invalidate_write_spanning_three_shards(router, users_db, mode):
    policy = make_policy(IQInvalidateClient, router, users_db, mode=mode)
    keys = keys_on_distinct_shards(router, 3)
    populate(policy, keys, b"cached")

    outcome = policy.write(score_body, [KeyChange(k) for k in keys])

    assert outcome.result == "done"
    assert read_score(users_db) == 11
    for key in keys:
        assert router.shard_for(key).store.get(key) is None
    assert_no_leaked_sessions(router)
    assert policy.degraded_key_changes == 0


def test_refresh_write_spanning_three_shards(router, users_db):
    policy = make_policy(
        IQRefreshClient, router, users_db, mode=AcquisitionMode.PRIOR
    )
    keys = keys_on_distinct_shards(router, 3)
    populate(policy, keys, b"old")
    changes = [
        KeyChange(k, refresher=lambda old: b"new:" + (old or b"?"))
        for k in keys
    ]

    def body(session):
        # PRIOR mode: every shard's Q lease is already held and the new
        # values are computed, yet nothing is applied anywhere until the
        # shrinking phase -- the stores still serve the old version.
        for key in keys:
            assert router.shard_for(key).store.get(key)[0] == b"old"
        return score_body(session)

    outcome = policy.write(body, changes)

    assert outcome.result == "done"
    assert read_score(users_db) == 11
    for key in keys:
        assert router.shard_for(key).store.get(key)[0] == b"new:old"
    assert_no_leaked_sessions(router)


def test_delta_write_spanning_three_shards(router, users_db):
    policy = make_policy(
        IQDeltaClient, router, users_db, mode=AcquisitionMode.PRIOR
    )
    keys = keys_on_distinct_shards(router, 3)
    populate(policy, keys, b"10")
    changes = [KeyChange(k, deltas=[("incr", 5)]) for k in keys]

    def body(session):
        # The deltas are proposed (buffered on each owning shard) but
        # not applied until the session commits.
        for key in keys:
            assert router.shard_for(key).store.get(key)[0] == b"10"
        return score_body(session)

    outcome = policy.write(body, changes)

    assert outcome.result == "done"
    assert read_score(users_db) == 11
    for key in keys:
        assert router.shard_for(key).store.get(key)[0] == b"15"
    assert_no_leaked_sessions(router)


def test_quarantined_keys_block_readers_on_every_shard(router, users_db):
    """During the multi-shard growing phase, a concurrent reader gets
    back-off (not a stale hit, not an I lease) on each quarantined key."""
    policy = make_policy(
        IQDeltaClient, router, users_db, mode=AcquisitionMode.PRIOR
    )
    keys = keys_on_distinct_shards(router, 3)
    changes = [KeyChange(k, deltas=[("append", b"+x")]) for k in keys]
    populate(policy, keys, b"base")

    def body(session):
        for key in keys:
            probe = router.iq_get(key)
            assert probe.value == b"base" or probe.backoff
        return score_body(session)

    policy.write(body, changes)
    for key in keys:
        assert router.shard_for(key).store.get(key)[0] == b"base+x"


def test_mixed_change_set_routes_each_kind(router, users_db):
    """One session mixing an invalidation, a refresh, and keys that all
    live on different shards applies each treatment on the right shard."""
    policy = make_policy(
        IQRefreshClient, router, users_db, mode=AcquisitionMode.DURING
    )
    keys = keys_on_distinct_shards(router, 3)
    populate(policy, keys, b"old")
    changes = [
        KeyChange(keys[0], invalidate=True),
        KeyChange(keys[1], refresher=lambda old: b"refreshed"),
        KeyChange(keys[2]),  # no refresher: treated as an invalidation
    ]

    policy.write(score_body, changes)

    assert router.shard_for(keys[0]).store.get(keys[0]) is None
    assert router.shard_for(keys[1]).store.get(keys[1])[0] == b"refreshed"
    assert router.shard_for(keys[2]).store.get(keys[2]) is None
    assert_no_leaked_sessions(router)
