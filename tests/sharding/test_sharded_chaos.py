"""Partial failure of a sharded cache tier: one shard dies, the rest serve.

The sharded degradation contract under test: killing one shard
mid-commit may cost *only that shard's keys* -- they are journaled for
delete-on-recover and their Q leases expire server-side -- while every
other shard applies normally and keeps serving.  And at four shards
under the full BG workload with a kill + cold restart, every technique
still reports exactly zero unpredictable reads.
"""

import threading
import time

import pytest

from repro.bg.actions import Technique
from repro.bg.harness import build_bg_system
from repro.bg.workload import HIGH_WRITE_MIX
from repro.config import BackoffConfig, LeaseConfig, NetConfig
from repro.core.iq_client import IQClient
from repro.core.iq_server import IQServer
from repro.core.policies import (
    IQDeltaClient,
    IQInvalidateClient,
    IQRefreshClient,
    KeyChange,
)
from repro.core.session import AcquisitionMode
from repro.faults import RestartableServer
from repro.net import ResilientIQServer
from repro.obs.audit import audited
from repro.sharding import ShardedIQServer
from repro.util.backoff import NoBackoff

from tests.sharding.test_sharded_server import keys_on_distinct_shards

TECHNIQUES = [Technique.INVALIDATE, Technique.REFRESH, Technique.DELTA]

POLICIES = {
    Technique.INVALIDATE: IQInvalidateClient,
    Technique.REFRESH: IQRefreshClient,
    Technique.DELTA: IQDeltaClient,
}


def make_iq(tid_start=1):
    return IQServer(
        lease_config=LeaseConfig(i_lease_ttl=0.3, q_lease_ttl=0.3),
        tid_start=tid_start,
    )


def make_iq_long_leases(tid_start=1):
    # The deterministic mid-commit test asserts on the *journal* path;
    # long TTLs keep the healthy shards' Q leases from expiring while
    # the victim's kill (a blocking server shutdown) is in progress.
    return IQServer(
        lease_config=LeaseConfig(i_lease_ttl=5.0, q_lease_ttl=5.0),
        tid_start=tid_start,
    )


def resilient(server):
    return ResilientIQServer(
        port=server.port,
        config=NetConfig(
            connect_timeout=1.0, operation_timeout=2.0, max_retries=2,
            breaker_failure_threshold=3, breaker_cooldown=0.02,
        ),
        backoff_config=BackoffConfig(
            initial_delay=0.002, max_delay=0.02, jitter=0.0
        ),
    )


@pytest.fixture
def shard_servers():
    servers = [RestartableServer(make_iq_long_leases) for _ in range(3)]
    for server in servers:
        server.start()
    yield servers
    for server in servers:
        server.kill()


def changes_for(technique, keys):
    if technique is Technique.INVALIDATE:
        return [KeyChange(k) for k in keys]
    if technique is Technique.REFRESH:
        return [KeyChange(k, refresher=lambda old: b"new") for k in keys]
    return [KeyChange(k, deltas=[("incr", 5)]) for k in keys]


def read_score(users_db):
    fresh = users_db.connect()
    try:
        return fresh.query_scalar("SELECT score FROM users WHERE id = 1")
    finally:
        fresh.close()


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_mid_commit_shard_kill_degrades_only_that_shard(
    shard_servers, users_db, technique
):
    """A 3-shard write loses one shard between the SQL commit and the
    KVS apply.  The victim's key is journaled, the other two shards
    apply normally, and the SQL transaction is never re-run."""
    backends = [resilient(server) for server in shard_servers]
    router = ShardedIQServer(backends)
    iq_client = IQClient(router, backoff=NoBackoff(max_attempts=50))
    policy = POLICIES[technique](
        iq_client, users_db.connect,
        mode=AcquisitionMode.PRIOR, backoff=NoBackoff(),
    )
    keys = keys_on_distinct_shards(router, 3)
    initial = b"10" if technique is Technique.DELTA else b"old"
    for key in keys:
        assert policy.read(key, lambda: initial) == initial

    victim_key = keys[0]
    victim_index = int(router.shard_name_for(victim_key)[len("shard"):])
    victim_server = shard_servers[victim_index]
    victim_backend = backends[victim_index]

    def body(session):
        # PRIOR mode: every Q lease (and proposal) is already placed on
        # all three shards.  Killing the victim here lands the failure
        # between commit_sql and the shrinking-phase fan-out.
        session.execute("UPDATE users SET score = score + 1 WHERE id = 1")
        victim_server.kill()
        return "done"

    outcome = policy.write(body, changes_for(technique, keys))

    assert outcome.result == "done"
    assert outcome.restarts == 0          # the SQL transaction ran once
    assert read_score(users_db) == 11

    # Only the victim's key is journaled, on the victim's own journal.
    assert router.degraded_shard_commits >= 1
    assert victim_key in victim_backend.journal.peek()
    for index, backend in enumerate(backends):
        if index != victim_index:
            assert len(backend.journal) == 0

    # The healthy shards applied their legs of the session.
    expected = {
        Technique.INVALIDATE: None,
        Technique.REFRESH: b"new",
        Technique.DELTA: b"15",
    }[technique]
    for key in keys[1:]:
        hit = router.shard_for(key).get(key)
        if expected is None:
            assert hit is None
        else:
            assert hit[0] == expected

    # The victim restarts cold; the first operation through its backend
    # reconciles the journal, so the key can only miss -- never serve
    # the pre-kill value.
    victim_server.start()
    time.sleep(0.05)  # let the breaker cooldown elapse
    assert victim_backend.get(victim_key) is None
    assert len(victim_backend.journal) == 0
    assert policy.read(victim_key, lambda: b"fresh") == b"fresh"

    for backend in backends:
        backend.close()


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_zero_stale_at_four_shards_with_kill_and_restart(technique):
    """BG over four networked shards; one shard dies mid-workload and
    comes back cold.  Zero unpredictable reads, zero errors."""
    servers = [RestartableServer(make_iq) for _ in range(4)]
    for server in servers:
        server.start()
    backends = [resilient(server) for server in servers]
    try:
        system = build_bg_system(
            members=60, friends_per_member=6, resources_per_member=2,
            technique=technique, leased=True, mix=HIGH_WRITE_MIX,
            iq_server=backends,
        )
        assert isinstance(system.cache, ShardedIQServer)
        assert system.cache.shard_count == 4
        victim = servers[1]

        def controller():
            time.sleep(0.2)
            victim.kill()
            time.sleep(0.15)
            victim.start()

        chaos = threading.Thread(target=controller)
        # Second oracle: the lease-protocol auditor rides along the
        # whole chaos window (values via BG log, steps via auditor).
        with audited() as auditor:
            chaos.start()
            result = system.runner.run(threads=4, duration=1.2)
            chaos.join()

        assert result.actions > 0
        assert result.errors == 0
        assert system.log.unpredictable_reads() == 0, system.log.breakdown()
        assert auditor.report().clean, auditor.report().summary()
        assert victim.kills == 1
        # The fleet as a whole kept serving: the merged view shows cache
        # traffic, and the victim's client really did lose connections.
        assert system.cache.stats.get("cmd_get") > 0
        assert backends[1].reconnects >= 2
    finally:
        for backend in backends:
            backend.close()
        for server in servers:
            server.kill()
