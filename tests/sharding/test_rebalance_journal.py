"""ShardedJournal reconciliation racing a ring change.

A key is journaled when a degraded write may have left its cached copy
stale.  The journal records the *key*, not the shard -- so when a
rebalance moves the key between journaling and reconciliation, the
delete-on-recover pass must chase the key to wherever the current (or
pending) ring routes it, never to the shard that owned it at journal
time.
"""

from repro.core.iq_server import IQServer
from repro.sharding import ConsistentHashRing, Rebalancer, ShardedIQServer


def build_router(keys=40):
    router = ShardedIQServer([IQServer(), IQServer()], fanout_workers=0)
    seeded = {}
    for i in range(keys):
        key = "key{}".format(i)
        value = "v{}".format(i).encode()
        router.shard_for(key).store.set(key, value)
        seeded[key] = value
    return router, seeded


def first_moving_key(seeded):
    old = ConsistentHashRing(["shard0", "shard1"], vnodes=64)
    new = ConsistentHashRing(["shard0", "shard1", "shard2"], vnodes=64)
    return sorted(
        key for key in seeded if old.node_for(key) != new.node_for(key)
    )[0]


class TestJournalRacingRingChange:
    def test_key_journaled_pre_flip_is_deleted_on_new_owner(self):
        # Journal against the old owner, migrate, then reconcile: the
        # deletion must land on the post-flip owner, where the possibly
        # stale copy now lives.
        router, seeded = build_router()
        victim = first_moving_key(seeded)
        old_owner = router.shard_name_for(victim)
        router.journal.add([victim])
        assert victim in router.journal.peek()
        Rebalancer(router).add_shard("shard2", IQServer())
        assert router.shard_name_for(victim) == "shard2"
        done = router.reconcile_local()
        assert done >= 1
        assert victim not in router.journal.peek()
        assert router.backend("shard2").store.get(victim) is None
        assert router.backend(old_owner).store.get(victim) is None

    def test_reconcile_mid_window_deletes_both_epochs_copies(self):
        # While the dual-epoch window is open the journaled key may be
        # cached on either epoch's owner; reconciliation must delete on
        # both routes, not just the current one.
        router, seeded = build_router()
        victim = first_moving_key(seeded)
        old_owner = router.shard_name_for(victim)
        joiner = IQServer()
        router.begin_rebalance(add=("shard2", joiner))
        joiner.store.set(victim, b"shadow-copy")
        router.journal.add([victim])
        done = router.reconcile_local()
        assert done >= 1
        assert router.backend(old_owner).store.get(victim) is None
        assert joiner.store.get(victim) is None
        router.abort_rebalance()
        router.detach_shard("shard2")

    def test_key_dropped_by_migration_reconciles_after_flip(self):
        # End to end: a contended key the migrator drops is journaled;
        # the next reconcile pass clears it against the new ring and no
        # copy survives anywhere.
        router, seeded = build_router()
        victim = first_moving_key(seeded)
        holder = router.gen_id()
        router.qar(holder, victim)
        report = Rebalancer(router, quarantine_attempts=1).add_shard(
            "shard2", IQServer()
        )
        assert report.dropped == 1
        assert victim in router.journal.peek()
        router.dar(holder)  # writer finishes, deleting its own copies
        done = router.reconcile_local()
        assert done >= 1
        assert victim not in router.journal.peek()
        for name in router.shard_names:
            assert router.backend(name).store.get(victim) is None

    def test_journal_counts_survive_the_ring_change(self):
        router, seeded = build_router()
        victim = first_moving_key(seeded)
        router.journal.add([victim])
        router.journal.add([victim])  # idempotent
        before = router.journal.total_journaled
        Rebalancer(router).add_shard("shard2", IQServer())
        assert router.journal.total_journaled == before
        router.reconcile_local()
        # total_journaled is a lifetime counter; reconciling must not
        # reset it, only empty the pending set.
        assert router.journal.total_journaled == before
        assert victim not in router.journal.peek()
