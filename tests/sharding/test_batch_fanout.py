"""Batched routing and parallel shard fan-out (PR 5).

Two claims under test.  First, the multi-key commands (``qar_many`` /
``iq_mget`` / ``mdelete``) route by owning shard while preserving the
sequential per-key contract exactly -- stop-at-first-reject, per-shard
degradation, read-your-own-update.  Second, running the shrinking-phase
legs through the fan-out pool changes *latency only*: a parallel router
and a serial one driven through identical histories end in identical
states, including the degraded and poisoned paths.
"""

import threading
import time

import pytest

from repro.core.iq_server import IQServer
from repro.errors import CacheUnavailableError
from repro.kvs.stats import CacheStats, MergedCacheStats
from repro.obs.trace import get_tracer, recording, trace_context
from repro.sharding import ShardedIQServer
from repro.sharding.router import _FanoutPool

from tests.sharding.test_degraded_shards import FlakyShard
from tests.sharding.test_sharded_server import keys_on_distinct_shards


def make_pair(count=4, flaky=False):
    """Twin fleets behind a serial router and a parallel router."""
    routers = []
    for workers in (0, count):
        shards = [IQServer() for _ in range(count)]
        if flaky:
            shards = [FlakyShard(s) for s in shards]
        routers.append(
            ShardedIQServer(shards, fanout_workers=workers)
        )
    return routers  # [serial, parallel]


def populate(router, keys, value=b"base"):
    for key in keys:
        got = router.iq_get(key)
        assert got.has_lease
        assert router.iq_set(key, value, got.token)


def contents(router, keys):
    return {key: router.shard_for(key).store.get(key) for key in keys}


# ---------------------------------------------------------------------------
# The fan-out pool itself
# ---------------------------------------------------------------------------

class TestFanoutPool:
    def test_results_come_back_in_slot_order(self):
        pool = _FanoutPool(4)
        try:
            delays = [0.03, 0.0, 0.02, 0.01]

            def leg(slot):
                def run():
                    time.sleep(delays[slot])
                    return slot
                return run

            assert pool.run([leg(i) for i in range(4)]) == [0, 1, 2, 3]
        finally:
            pool.close()

    def test_single_leg_runs_inline_without_threads(self):
        pool = _FanoutPool(4)
        try:
            assert pool.run([]) == []
            assert pool.run([lambda: threading.current_thread()]) == [
                threading.main_thread()
            ]
            assert pool._threads == []  # nothing was ever spawned
        finally:
            pool.close()

    def test_first_by_slot_error_raised_after_all_legs_finish(self):
        pool = _FanoutPool(4)
        finished = []
        try:
            def ok(slot):
                def run():
                    time.sleep(0.02)
                    finished.append(slot)
                return run

            def boom(message):
                def run():
                    raise CacheUnavailableError(message)
                return run

            with pytest.raises(CacheUnavailableError, match="first"):
                pool.run([boom("first"), ok(1), boom("second"), ok(3)])
            # The failure was held until every leg completed -- a commit
            # fan-out must never leave a leg running unobserved.
            assert sorted(finished) == [1, 3]
        finally:
            pool.close()

    def test_closed_pool_refuses_multi_leg_work(self):
        pool = _FanoutPool(2)
        assert pool.run([lambda: 1, lambda: 2]) == [1, 2]
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError):
            pool.run([lambda: 1, lambda: 2])


# ---------------------------------------------------------------------------
# Multi-key commands route by shard, same contract as the per-key loop
# ---------------------------------------------------------------------------

class TestBatchedRouting:
    def test_qar_many_grants_across_shards_and_commit_invalidates(self):
        router = ShardedIQServer([IQServer() for _ in range(3)])
        keys = keys_on_distinct_shards(router, 3)
        populate(router, keys)
        tid = router.gen_id()
        statuses = router.qar_many(tid, keys)
        assert statuses == {key: "granted" for key in keys}
        assert router.commit(tid)
        for key in keys:
            assert router.shard_for(key).store.get(key) is None
        assert router.session_count() == 0

    def test_qar_many_abort_stops_later_shards(self):
        router = ShardedIQServer([IQServer() for _ in range(3)])
        first, conflicted, never = keys_on_distinct_shards(router, 3)
        holder = router.gen_id()
        # An exclusive (QaRead) holder: the rival's invalidation QaR on
        # the same key rejects (Fig. 5a).
        router.qaread(conflicted, holder)
        rival = router.gen_id()
        statuses = router.qar_many(rival, [first, conflicted, never])
        assert statuses == {first: "granted", conflicted: "abort"}
        # Stop-at-first-reject across shards: the third shard was never
        # touched -- no shard TID minted, no server-side session there.
        assert never not in statuses
        third = router.backend(router.shard_name_for(never))
        assert third.session_count() == 0
        assert router.abort(rival)

    def test_qar_many_unreachable_shard_degrades_only_its_keys(self):
        shards = [FlakyShard(IQServer()) for _ in range(3)]
        router = ShardedIQServer(shards)
        keys = keys_on_distinct_shards(router, 3)
        down_name = router.shard_name_for(keys[1])
        router.backend(down_name).fail_after["gen_id"] = 0
        tid = router.gen_id()
        statuses = router.qar_many(tid, keys)
        assert statuses[keys[1]] == "unavailable"
        assert statuses[keys[0]] == "granted"
        assert statuses[keys[2]] == "granted"
        assert router.commit(tid)

    def test_iq_mget_reassembles_in_caller_order(self):
        router = ShardedIQServer([IQServer() for _ in range(3)])
        keys = keys_on_distinct_shards(router, 3)
        populate(router, [keys[0]], b"v0")
        results = router.iq_mget([keys[2], keys[0], keys[1]])
        assert list(results) == [keys[2], keys[0], keys[1]]
        assert results[keys[0]].is_hit and results[keys[0]].value == b"v0"
        assert results[keys[1]].has_lease
        assert results[keys[2]].has_lease
        assert router.iq_mget([]) == {}

    def test_iq_mget_carries_shard_local_session(self):
        router = ShardedIQServer([IQServer() for _ in range(3)])
        mine, other = keys_on_distinct_shards(router, 2)
        populate(router, [mine], b"v")
        tid = router.gen_id()
        assert router.qar(tid, mine)
        results = router.iq_mget([mine, other], session=tid)
        # Read-your-own-update on the quarantined key: a miss without
        # back-off, translated to the owning shard's local TID.
        assert not results[mine].is_hit
        assert not results[mine].backoff
        # A bystander is served the pending version during quarantine.
        plain = router.iq_mget([mine])
        assert plain[mine].is_hit and plain[mine].value == b"v"
        assert router.abort(tid)

    def test_mdelete_routes_and_counts_across_shards(self):
        router = ShardedIQServer([IQServer() for _ in range(3)])
        keys = keys_on_distinct_shards(router, 3)
        populate(router, keys[:2])
        assert router.mdelete(keys) == 2  # third key was never cached
        for key in keys:
            assert router.shard_for(key).store.get(key) is None
        assert router.mdelete([]) == 0

    def test_mdelete_falls_back_to_per_key_delete(self):
        class NoBulk:
            """A duck-typed shard with only the per-key surface."""

            def __init__(self):
                self.server = IQServer()
                self.store = self.server.store

            def __getattr__(self, name):
                if name in ("mdelete", "delete"):
                    raise AttributeError(name)
                return getattr(self.server, name)

        router = ShardedIQServer([NoBulk(), NoBulk()])
        keys = keys_on_distinct_shards(router, 2)
        populate(router, keys)
        assert router.mdelete(keys) == 2
        for key in keys:
            assert router.shard_for(key).store.get(key) is None


# ---------------------------------------------------------------------------
# Parallel fan-out parity: same outcomes as the serial order
# ---------------------------------------------------------------------------

class TestParallelFanoutParity:
    def test_commit_parity_and_counters(self):
        serial, parallel = make_pair(4)
        for router in (serial, parallel):
            keys = keys_on_distinct_shards(router, 4)
            populate(router, keys)
            tid = router.gen_id()
            assert router.qar_many(tid, keys) == {
                key: "granted" for key in keys
            }
            assert router.commit(tid)
            assert contents(router, keys) == {key: None for key in keys}
            assert router.session_count() == 0
        assert serial.parallel_commit_legs == 0
        assert parallel.parallel_commit_legs == 4
        serial.close()
        parallel.close()

    def test_abort_parity_and_counters(self):
        serial, parallel = make_pair(4)
        for router in (serial, parallel):
            keys = keys_on_distinct_shards(router, 2)
            populate(router, keys, b"kept")
            tid = router.gen_id()
            for key in keys:
                router.qar(tid, key)
            assert router.abort(tid)
            # Nothing applied: aborted invalidations leave values alone.
            assert all(
                value == (b"kept", 0)
                for value in contents(router, keys).values()
            )
        assert serial.parallel_abort_legs == 0
        assert parallel.parallel_abort_legs == 2
        serial.close()
        parallel.close()

    def test_single_shard_commit_stays_on_the_serial_path(self):
        _, parallel = make_pair(4)
        key = keys_on_distinct_shards(parallel, 1)[0]
        tid = parallel.gen_id()
        parallel.qar(tid, key)
        assert parallel.commit(tid)
        assert parallel.parallel_commit_legs == 0  # one leg: no fan-out
        parallel.close()

    def test_degraded_leg_parity(self):
        serial, parallel = make_pair(4, flaky=True)
        observed = []
        for router in (serial, parallel):
            keys = keys_on_distinct_shards(router, 3)
            populate(router, keys)
            down = router.shard_name_for(keys[1])
            tid = router.gen_id()
            assert router.qar_many(tid, keys) == {
                key: "granted" for key in keys
            }
            router.backend(down).fail_after["commit"] = 0
            assert not router.commit(tid)
            observed.append((
                router.degraded_shard_commits,
                router.journaled_commit_keys,
                router.journal.peek(),
                # Healthy shards invalidated; the degraded shard still
                # serves the stale value until reconciliation.
                contents(router, keys),
            ))
        serial_view, parallel_view = observed
        assert serial_view == parallel_view
        assert serial_view[0] == 1  # one degraded commit leg
        assert serial_view[3][keys[1]] is not None
        assert serial_view[3][keys[0]] is None
        serial.close()
        parallel.close()

    def test_poisoned_leg_parity(self):
        serial, parallel = make_pair(4)
        for router in (serial, parallel):
            keys = keys_on_distinct_shards(router, 2)
            populate(router, keys, b"base")
            tid = router.gen_id()
            assert router.iq_delta(tid, keys[0], "append", b"+x")
            assert router.poison(tid, keys[1])
            assert not router.commit(tid)
            final = contents(router, keys)
            assert final[keys[0]] == (b"base+x", 0)  # healthy leg applied
            assert final[keys[1]] is None  # poisoned leg deleted
            assert router.poisoned_shard_aborts == 1
            assert router.session_count() == 0
        serial.close()
        parallel.close()

    def test_parallel_legs_keep_the_ambient_trace(self):
        _, parallel = make_pair(4)
        tracer = get_tracer()
        keys = keys_on_distinct_shards(parallel, 3)
        populate(parallel, keys)
        tid = parallel.gen_id()
        for key in keys:
            parallel.qar(tid, key)
        trace_id = tracer.new_trace()
        with recording() as events:
            with trace_context(trace_id):
                assert parallel.commit(tid)
        legs = [e for e in events.events() if e.name == "shard.commit.leg"]
        assert len(legs) == 3
        # Every pool thread re-bound the caller's trace before running
        # its leg, so the whole fan-out stays on one trace.
        assert {e.trace_id for e in legs} == {trace_id}
        parallel.close()


# ---------------------------------------------------------------------------
# Merged batch counters
# ---------------------------------------------------------------------------

class TestMergedBatchCounters:
    def test_merges_stats_objects_and_callables(self):
        a, b = CacheStats(), CacheStats()
        a.incr("pipelined_commands", 3)
        b.incr("pipelined_commands", 4)
        a.incr("batched_qar_grants", 2)

        def router_counters():
            return {"parallel_commit_legs": 5, "parallel_abort_legs": 1}

        merged = MergedCacheStats([a, b, router_counters]).snapshot()
        assert merged["pipelined_commands"] == 7
        assert merged["batched_qar_grants"] == 2
        assert merged["parallel_commit_legs"] == 5
        assert merged["parallel_abort_legs"] == 1

    def test_router_counters_present_even_without_sources(self):
        merged = MergedCacheStats([]).snapshot()
        for name in MergedCacheStats.ROUTER_COUNTERS:
            assert merged[name] == 0
        assert merged["pipelined_commands"] == 0

    def test_unreachable_callable_source_contributes_nothing(self):
        healthy = CacheStats()
        healthy.incr("batched_qar_grants", 6)

        def down():
            raise CacheUnavailableError("shard down")

        view = MergedCacheStats([healthy, down])
        assert view.get("batched_qar_grants") == 6

    def test_router_stats_sum_batch_counters_across_shards(self):
        router = ShardedIQServer([IQServer() for _ in range(3)])
        keys = keys_on_distinct_shards(router, 3)
        tid = router.gen_id()
        assert router.qar_many(tid, keys) == {
            key: "granted" for key in keys
        }
        # Each shard counted its own bulk grants; the merged view sums
        # them back to the write-set size.
        assert router.stats.get("batched_qar_grants") == 3
        assert router.commit(tid)

    def test_router_stats_carry_fanout_counters(self):
        serial, parallel = make_pair(3)
        for router in (serial, parallel):
            keys = keys_on_distinct_shards(router, 3)
            tid = router.gen_id()
            for key in keys:
                router.qar(tid, key)
            assert router.commit(tid)
        assert serial.stats.get("parallel_commit_legs") == 0
        assert parallel.stats.get("parallel_commit_legs") == 3
        serial.close()
        parallel.close()
