"""Consistent-hash ring: determinism, balance, minimal remapping."""

import pytest

from repro.sharding import ConsistentHashRing

KEYS = ["user:{}".format(i) for i in range(2000)]


def test_same_inputs_produce_same_owners():
    a = ConsistentHashRing(["x", "y", "z"])
    b = ConsistentHashRing(["z", "x", "y"])  # insertion order is irrelevant
    assert [a.node_for(k) for k in KEYS] == [b.node_for(k) for k in KEYS]


def test_every_key_maps_to_a_member_node():
    ring = ConsistentHashRing(["x", "y", "z"])
    owners = {ring.node_for(k) for k in KEYS}
    assert owners <= {"x", "y", "z"}
    assert len(owners) == 3


def test_str_and_bytes_keys_agree():
    ring = ConsistentHashRing(["x", "y", "z"])
    assert ring.node_for("user:7") == ring.node_for(b"user:7")


def test_spread_is_roughly_even():
    ring = ConsistentHashRing(["x", "y", "z"], vnodes=64)
    counts = ring.spread(KEYS)
    # With 64 virtual nodes per shard the imbalance stays far from
    # degenerate: no shard owns less than 10% or more than 60%.
    for node, count in counts.items():
        assert count > len(KEYS) * 0.10, counts
        assert count < len(KEYS) * 0.60, counts


def test_adding_a_node_only_moves_keys_to_it():
    ring = ConsistentHashRing(["x", "y", "z"])
    before = {k: ring.node_for(k) for k in KEYS}
    ring.add_node("w")
    moved = 0
    for key in KEYS:
        owner = ring.node_for(key)
        if owner != before[key]:
            # Consistent hashing: a key may only move *to* the new node.
            assert owner == "w"
            moved += 1
    # Roughly 1/N of the keys move -- never none, never a majority.
    assert 0 < moved < len(KEYS) * 0.5


def test_removing_a_node_preserves_surviving_owners():
    ring = ConsistentHashRing(["x", "y", "z"])
    before = {k: ring.node_for(k) for k in KEYS}
    ring.remove_node("y")
    for key in KEYS:
        if before[key] != "y":
            assert ring.node_for(key) == before[key]
        else:
            assert ring.node_for(key) in ("x", "z")


def test_duplicate_and_unknown_nodes_are_rejected():
    ring = ConsistentHashRing(["x"])
    with pytest.raises(ValueError):
        ring.add_node("x")
    with pytest.raises(ValueError):
        ring.remove_node("nope")


def test_empty_ring_cannot_route():
    ring = ConsistentHashRing()
    with pytest.raises(ValueError):
        ring.node_for("k")


def test_vnodes_must_be_positive():
    with pytest.raises(ValueError):
        ConsistentHashRing(["x"], vnodes=0)


def test_len_counts_physical_nodes():
    ring = ConsistentHashRing(["x", "y"], vnodes=32)
    assert len(ring) == 2
    assert ring.nodes == ["x", "y"]


# -- Topology-change introspection (epochs, arcs, views) ----------------

from repro.sharding import RingView, ownership_diff  # noqa: E402
from repro.sharding.ring import OwnershipChange  # noqa: E402


def test_add_node_arcs_cover_exactly_the_moved_keys():
    ring = ConsistentHashRing(["a", "b"], vnodes=32)
    before = {key: ring.node_for(key) for key in KEYS}
    changes = ring.add_node("c")
    for key in KEYS:
        moved = before[key] != ring.node_for(key)
        covered = any(change.covers(key) for change in changes)
        assert moved == covered, key
    for change in changes:
        assert change.new_owner == "c"
        assert change.old_owner in ("a", "b")


def test_remove_node_arcs_cover_exactly_the_moved_keys():
    ring = ConsistentHashRing(["a", "b", "c"], vnodes=32)
    before = {key: ring.node_for(key) for key in KEYS}
    changes = ring.remove_node("c")
    for key in KEYS:
        moved = before[key] != ring.node_for(key)
        covered = any(change.covers(key) for change in changes)
        assert moved == covered, key
    for change in changes:
        assert change.old_owner == "c"
        assert change.new_owner in ("a", "b")


def test_full_circle_arcs_for_first_and_last_node():
    ring = ConsistentHashRing([], vnodes=8)
    (arc,) = ring.add_node("only")
    assert (arc.start, arc.end) == (0, 0)
    assert arc.old_owner is None and arc.new_owner == "only"
    assert arc.covers("anything")
    (arc,) = ring.remove_node("only")
    assert (arc.start, arc.end) == (0, 0)
    assert arc.old_owner == "only" and arc.new_owner is None


def test_covers_position_handles_wrapping_arcs():
    wrapping = OwnershipChange(2 ** 63, 5, "a", "b")
    assert wrapping.covers_position(2 ** 63 + 1)
    assert wrapping.covers_position(5)
    assert not wrapping.covers_position(2 ** 63)  # half-open at start
    assert not wrapping.covers_position(6)
    plain = OwnershipChange(10, 20, "a", "b")
    assert plain.covers_position(20)
    assert not plain.covers_position(10)
    assert not plain.covers_position(21)


def test_mutations_advance_the_epoch():
    ring = ConsistentHashRing(["a"], vnodes=8)
    start = ring.epoch
    ring.add_node("b")
    assert ring.epoch == start + 1
    ring.remove_node("b")
    assert ring.epoch == start + 2
    ring.bump_epoch()
    assert ring.epoch == start + 3


def test_view_is_immutable_under_live_mutation():
    ring = ConsistentHashRing(["a", "b"], vnodes=32)
    view = ring.view()
    owners = {key: view.node_for(key) for key in KEYS}
    ring.add_node("c")
    assert all(view.node_for(key) == owners[key] for key in KEYS)
    assert "c" not in view
    assert view.epoch == ring.epoch - 1


def test_with_node_matches_a_real_add():
    ring = ConsistentHashRing(["a", "b"], vnodes=32)
    derived = ring.view().with_node("c")
    ring.add_node("c")
    live = ring.view()
    assert derived.epoch == live.epoch
    assert derived.nodes == live.nodes
    assert all(derived.node_for(key) == live.node_for(key) for key in KEYS)
    with pytest.raises(ValueError):
        derived.with_node("c")


def test_without_node_matches_a_real_remove():
    ring = ConsistentHashRing(["a", "b", "c"], vnodes=32)
    derived = ring.view().without_node("c")
    ring.remove_node("c")
    live = ring.view()
    assert derived.nodes == live.nodes
    assert all(derived.node_for(key) == live.node_for(key) for key in KEYS)
    with pytest.raises(ValueError):
        derived.without_node("c")


def test_ownership_diff_reports_each_moved_key_once():
    ring = ConsistentHashRing(["a", "b"], vnodes=32)
    old_view = ring.view()
    new_view = old_view.with_node("c")
    moves = ownership_diff(old_view, new_view, KEYS)
    assert moves  # some keys must move
    for key, (old_owner, new_owner) in moves.items():
        assert old_view.node_for(key) == old_owner
        assert new_view.node_for(key) == new_owner
        assert new_owner == "c"
    for key in set(KEYS) - set(moves):
        assert old_view.node_for(key) == new_view.node_for(key)


def test_concurrent_mutation_is_thread_safe():
    import threading

    ring = ConsistentHashRing(["seed"], vnodes=16)
    errors = []

    def churn(name):
        try:
            for _ in range(25):
                ring.add_node(name)
                for key in KEYS[:50]:
                    ring.node_for(key)
                ring.remove_node(name)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=churn, args=("n{}".format(i),))
        for i in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert ring.nodes == ["seed"]
