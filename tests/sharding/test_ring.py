"""Consistent-hash ring: determinism, balance, minimal remapping."""

import pytest

from repro.sharding import ConsistentHashRing

KEYS = ["user:{}".format(i) for i in range(2000)]


def test_same_inputs_produce_same_owners():
    a = ConsistentHashRing(["x", "y", "z"])
    b = ConsistentHashRing(["z", "x", "y"])  # insertion order is irrelevant
    assert [a.node_for(k) for k in KEYS] == [b.node_for(k) for k in KEYS]


def test_every_key_maps_to_a_member_node():
    ring = ConsistentHashRing(["x", "y", "z"])
    owners = {ring.node_for(k) for k in KEYS}
    assert owners <= {"x", "y", "z"}
    assert len(owners) == 3


def test_str_and_bytes_keys_agree():
    ring = ConsistentHashRing(["x", "y", "z"])
    assert ring.node_for("user:7") == ring.node_for(b"user:7")


def test_spread_is_roughly_even():
    ring = ConsistentHashRing(["x", "y", "z"], vnodes=64)
    counts = ring.spread(KEYS)
    # With 64 virtual nodes per shard the imbalance stays far from
    # degenerate: no shard owns less than 10% or more than 60%.
    for node, count in counts.items():
        assert count > len(KEYS) * 0.10, counts
        assert count < len(KEYS) * 0.60, counts


def test_adding_a_node_only_moves_keys_to_it():
    ring = ConsistentHashRing(["x", "y", "z"])
    before = {k: ring.node_for(k) for k in KEYS}
    ring.add_node("w")
    moved = 0
    for key in KEYS:
        owner = ring.node_for(key)
        if owner != before[key]:
            # Consistent hashing: a key may only move *to* the new node.
            assert owner == "w"
            moved += 1
    # Roughly 1/N of the keys move -- never none, never a majority.
    assert 0 < moved < len(KEYS) * 0.5


def test_removing_a_node_preserves_surviving_owners():
    ring = ConsistentHashRing(["x", "y", "z"])
    before = {k: ring.node_for(k) for k in KEYS}
    ring.remove_node("y")
    for key in KEYS:
        if before[key] != "y":
            assert ring.node_for(key) == before[key]
        else:
            assert ring.node_for(key) in ("x", "z")


def test_duplicate_and_unknown_nodes_are_rejected():
    ring = ConsistentHashRing(["x"])
    with pytest.raises(ValueError):
        ring.add_node("x")
    with pytest.raises(ValueError):
        ring.remove_node("nope")


def test_empty_ring_cannot_route():
    ring = ConsistentHashRing()
    with pytest.raises(ValueError):
        ring.node_for("k")


def test_vnodes_must_be_positive():
    with pytest.raises(ValueError):
        ConsistentHashRing(["x"], vnodes=0)


def test_len_counts_physical_nodes():
    ring = ConsistentHashRing(["x", "y"], vnodes=32)
    assert len(ring) == 2
    assert ring.nodes == ["x", "y"]
