"""Per-key degradation against in-process shards that fail on command.

Two safety properties of the per-shard degradation contract:

* a growing-phase shard failure journals its key only *after* the RDBMS
  commit -- a journal entry that exists pre-commit can be consumed by a
  delete-on-recover pass, after which a concurrent reader re-caches the
  pre-transaction value and no invalidation ever displaces it;
* a shard that fails partway through a key's multi-delta proposal is
  poisoned: its leg is deleted-and-aborted at the shrinking phase, so a
  partial proposal can never surface as a cached value.
"""

import pytest

from repro.core.backend import LeaseBackend
from repro.core.iq_client import IQClient
from repro.core.iq_server import IQServer
from repro.core.policies import (
    IQDeltaClient,
    IQInvalidateClient,
    IQRefreshClient,
    KeyChange,
)
from repro.core.session import AcquisitionMode
from repro.errors import CacheUnavailableError
from repro.sharding import ShardedIQServer
from repro.util.backoff import NoBackoff

from tests.sharding.test_sharded_server import keys_on_distinct_shards


class FlakyShard(LeaseBackend):
    """An in-process shard whose chosen commands become unreachable.

    ``fail_after[name] = k`` lets the first ``k`` calls of command
    ``name`` through and raises :class:`CacheUnavailableError` from
    every later one; :meth:`heal` makes the shard healthy again.
    Everything else (``store``, ``session_count``, ...) passes through
    to the wrapped :class:`IQServer`.
    """

    def __init__(self, server):
        self.server = server
        self.fail_after = {}
        self._calls = {}

    def heal(self):
        self.fail_after.clear()

    def _gate(self, name):
        limit = self.fail_after.get(name)
        if limit is not None and self._calls.get(name, 0) >= limit:
            raise CacheUnavailableError("{} unreachable".format(name))
        self._calls[name] = self._calls.get(name, 0) + 1

    def __getattr__(self, name):
        return getattr(self.server, name)

    def gen_id(self):
        self._gate("gen_id")
        return self.server.gen_id()

    def iq_get(self, key, session=None):
        self._gate("iq_get")
        return self.server.iq_get(key, session=session)

    def iq_set(self, key, value, token):
        self._gate("iq_set")
        return self.server.iq_set(key, value, token)

    def release_i(self, key, token):
        self._gate("release_i")
        return self.server.release_i(key, token)

    def qaread(self, key, tid):
        self._gate("qaread")
        return self.server.qaread(key, tid)

    def sar(self, key, value, tid):
        self._gate("sar")
        return self.server.sar(key, value, tid)

    def propose_refresh(self, key, value, tid):
        self._gate("propose_refresh")
        return self.server.propose_refresh(key, value, tid)

    def qar(self, tid, key):
        self._gate("qar")
        return self.server.qar(tid, key)

    def iq_delta(self, tid, key, op, operand):
        self._gate("iq_delta")
        return self.server.iq_delta(tid, key, op, operand)

    def commit(self, tid):
        self._gate("commit")
        return self.server.commit(tid)

    def abort(self, tid):
        self._gate("abort")
        return self.server.abort(tid)

    def flush_all(self):
        self._gate("flush_all")
        return self.server.flush_all()


@pytest.fixture
def fleet():
    shards = [FlakyShard(IQServer()) for _ in range(3)]
    return ShardedIQServer(shards), shards


def make_policy(cls, router, users_db, mode=AcquisitionMode.PRIOR):
    client = IQClient(router, backoff=NoBackoff(max_attempts=50))
    return cls(client, users_db.connect, mode=mode, backoff=NoBackoff())


def score_body(session):
    session.execute("UPDATE users SET score = score + 1 WHERE id = 1")
    return "done"


def read_score(users_db):
    fresh = users_db.connect()
    try:
        return fresh.query_scalar("SELECT score FROM users WHERE id = 1")
    finally:
        fresh.close()


def populate(policy, keys, value):
    for key in keys:
        assert policy.read(key, lambda: value) == value


POLICIES = {
    "invalidate": (IQInvalidateClient, "qar"),
    "refresh": (IQRefreshClient, "qaread"),
    "delta": (IQDeltaClient, "iq_delta"),
}


@pytest.mark.parametrize("technique", sorted(POLICIES))
def test_growing_phase_failure_journals_only_after_commit(
    fleet, users_db, technique
):
    """The victim key's journal entry must not exist before commit_sql:
    a mid-session recovery pass that ran pre-commit would consume it,
    delete the key, and let a reader re-cache the pre-transaction value
    that the (failed) lease acquisition can no longer invalidate."""
    router, _ = fleet
    cls, command = POLICIES[technique]
    policy = make_policy(cls, router, users_db)
    keys = keys_on_distinct_shards(router, 3)
    initial = b"10" if technique == "delta" else b"old"
    populate(policy, keys, initial)
    victim = keys[0]
    router.shard_for(victim).fail_after[command] = 0
    changes = {
        "invalidate": [KeyChange(k) for k in keys],
        "refresh": [KeyChange(k, refresher=lambda old: b"new") for k in keys],
        "delta": [KeyChange(k, deltas=[("incr", 5)]) for k in keys],
    }[technique]

    observed = {}

    def body(session):
        # PRIOR mode: the growing phase is over and the victim's shard
        # has already failed, yet nothing is journaled -- a recovery
        # pass right now must find nothing to consume, and the victim's
        # cached value (still correct: the SQL has not committed) stays.
        observed["journal_during_sql"] = router.journal.peek()
        observed["reconciled_during_sql"] = router.reconcile_local()
        observed["victim_during_sql"] = router.shard_for(victim).store.get(
            victim
        )
        return score_body(session)

    outcome = policy.write(body, changes)

    assert outcome.result == "done"
    assert outcome.restarts == 0
    assert read_score(users_db) == 11
    assert observed["journal_during_sql"] == []
    assert observed["reconciled_during_sql"] == 0
    assert observed["victim_during_sql"][0] == initial
    # After the commit the victim key is journaled and the stale value
    # is reconciled away; the healthy shards applied normally.
    assert victim in router.journal.peek()
    assert policy.degraded_key_changes == 1
    expected = {
        "invalidate": None, "refresh": b"new", "delta": b"15",
    }[technique]
    for key in keys[1:]:
        hit = router.shard_for(key).store.get(key)
        if expected is None:
            assert hit is None
        else:
            assert hit[0] == expected
    router.shard_for(victim).heal()
    assert router.reconcile_local() == 1
    assert router.shard_for(victim).store.get(victim) is None
    assert policy.read(victim, lambda: b"fresh") == b"fresh"


def test_partial_delta_proposal_never_commits(fleet, users_db):
    """One key's proposal is two deltas; the shard takes the first and
    fails on the second.  Committing that shard's TID would surface
    10+1=11 -- a value no RDBMS state ever had.  The poisoned leg is
    deleted-and-aborted instead, the other shards apply fully."""
    router, shards = fleet
    policy = make_policy(IQDeltaClient, router, users_db)
    keys = keys_on_distinct_shards(router, 3)
    populate(policy, keys, b"10")
    victim = keys[0]
    victim_shard = router.shard_for(victim)
    # populate() ran no deltas yet, so the first iq_delta is this write's.
    victim_shard.fail_after["iq_delta"] = 1
    changes = [
        KeyChange(k, deltas=[("incr", 1), ("incr", 2)]) for k in keys
    ]

    outcome = policy.write(score_body, changes)

    assert outcome.result == "done"
    assert outcome.restarts == 0
    assert read_score(users_db) == 11
    # Never 11 (partial) and never 10 (stale): the poisoned leg deleted.
    assert victim_shard.store.get(victim) is None
    for key in keys[1:]:
        assert router.shard_for(key).store.get(key)[0] == b"13"
    assert router.poisoned_shard_aborts == 1
    # The abort released the victim's server-side session and leases.
    assert all(shard.server.session_count() == 0 for shard in shards)
    assert router.session_count() == 0
    # The key is also journaled (post-commit) for delete-on-recover.
    assert victim in router.journal.peek()
    victim_shard.heal()
    assert router.reconcile_local() == 1
    assert policy.read(victim, lambda: b"fresh") == b"fresh"


def test_poisoned_leg_with_no_shard_tid_still_deletes_stale_keys(
    fleet, users_db
):
    """If the shard fails before its per-shard TID is even minted, the
    poisoned leg holds no leases -- but its cached key is stale once the
    SQL commits, so the shrinking phase still deletes it."""
    router, _ = fleet
    policy = make_policy(IQDeltaClient, router, users_db)
    keys = keys_on_distinct_shards(router, 3)
    populate(policy, keys, b"10")
    victim = keys[0]
    victim_shard = router.shard_for(victim)
    victim_shard.fail_after["gen_id"] = 0
    changes = [KeyChange(k, deltas=[("incr", 5)]) for k in keys]

    outcome = policy.write(score_body, changes)

    assert outcome.result == "done"
    assert read_score(users_db) == 11
    assert victim_shard.store.get(victim) is None
    for key in keys[1:]:
        assert router.shard_for(key).store.get(key)[0] == b"15"
    assert router.poisoned_shard_aborts == 1
