"""CLI surface tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 11211
        assert args.i_ttl == 10.0

    def test_bench_choices(self):
        args = build_parser().parse_args(
            ["bench", "--experiment", "table1"]
        )
        assert args.experiment == "table1"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--experiment", "nope"])

    def test_demo_options(self):
        args = build_parser().parse_args(
            ["demo", "--threads", "2", "--ops", "5", "--members", "40"]
        )
        assert (args.threads, args.ops, args.members) == (2, 5, 40)

    def test_mc_defaults(self):
        args = build_parser().parse_args(["mc"])
        assert args.scenario is None
        assert args.fuzz == 0
        assert args.fuzz_scenario == "fuzz-sharded-fault"
        assert args.max_states == 500000

    def test_scenarios_defaults(self):
        args = build_parser().parse_args(["scenarios", "--list"])
        assert args.mode == "both"
        assert args.seed == 13
        assert not args.sweep and not args.smoke
        assert args.technique is None

    def test_scenarios_choice_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["scenarios", "--technique", "hope"]
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios", "--mode", "psychic"])

    def test_docstring_documents_every_subcommand(self):
        # Guard against --help drift: each registered subcommand must
        # appear in the module docstring's usage block.
        import repro.cli as cli

        sub = build_parser()._subparsers._group_actions[0]
        for command in sub.choices:
            assert "python -m repro {}".format(command) in cli.__doc__


class TestCommands:
    def test_figures_command_runs_clean(self, capsys):
        assert main(["figures"]) == 0
        output = capsys.readouterr().out
        assert "Figure 2" in output
        assert "STALE" in output        # baselines race
        assert "consistent" in output   # IQ holds

    def test_demo_command_runs(self, capsys):
        assert main(
            ["demo", "--threads", "2", "--ops", "10", "--members", "40"]
        ) == 0
        output = capsys.readouterr().out
        assert "IQ-Twemcached" in output
        assert "Twemcache baseline" in output

    def test_mc_list(self, capsys):
        assert main(["mc", "--list"]) == 0
        output = capsys.readouterr().out
        assert "fig3-baseline" in output
        assert "[races]" in output
        assert "[clean]" in output

    def test_mc_single_scenario(self, capsys):
        assert main(["mc", "--scenario", "fig3-iq"]) == 0
        output = capsys.readouterr().out
        assert "fig3-iq" in output
        assert "clean" in output
        assert "model checker: OK" in output

    def test_mc_baseline_scenario_prints_shrunk_script(self, capsys):
        assert main(["mc", "--scenario", "fig3-baseline"]) == 0
        output = capsys.readouterr().out
        assert "Minimal violating schedule" in output
        assert "[forced]" in output

    def test_mc_unexpectedly_clean_expected_race_fails(self, capsys):
        # A clean result on an expect_violation scenario is a failure:
        # the checker lost its ability to find the race.
        assert main(["mc", "--scenario", "fig2-iq"]) == 0
        assert main(["mc", "--scenario", "fig2-iq", "--max-states", "1"]) == 1
        output = capsys.readouterr().out
        assert "state budget exhausted" in output

    def test_scenarios_list(self, capsys):
        assert main(["scenarios", "--list"]) == 0
        output = capsys.readouterr().out
        assert "figure-invalidate" in output
        assert "herd-after-flush-invalidate" in output
        assert "[live,mc]" in output

    def test_scenarios_list_honours_filters(self, capsys):
        assert main(["scenarios", "--list", "--technique", "clock",
                     "--transport", "inproc"]) == 0
        output = capsys.readouterr().out
        assert "figure-clock" in output
        assert "wire-threaded-clock" not in output
        assert "figure-invalidate" not in output

    def test_scenarios_run_both_modes_with_parity(self, capsys, tmp_path):
        out = tmp_path / "reports.json"
        assert main(["scenarios", "--run", "figure-invalidate", "--smoke",
                     "--out", str(out)]) == 0
        output = capsys.readouterr().out
        assert "[live]" in output and "[mc]" in output
        assert "parity: live/mc verdicts agree" in output

        import json

        reports = json.loads(out.read_text())
        assert {r["mode"] for r in reports} == {"live", "mc"}
        assert all(r["verdict"] == "pass" for r in reports)

    def test_scenarios_without_action_explains_usage(self, capsys):
        assert main(["scenarios"]) == 2
        assert "--sweep" in capsys.readouterr().out
