"""CLI surface tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 11211
        assert args.i_ttl == 10.0

    def test_bench_choices(self):
        args = build_parser().parse_args(
            ["bench", "--experiment", "table1"]
        )
        assert args.experiment == "table1"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--experiment", "nope"])

    def test_demo_options(self):
        args = build_parser().parse_args(
            ["demo", "--threads", "2", "--ops", "5", "--members", "40"]
        )
        assert (args.threads, args.ops, args.members) == (2, 5, 40)


class TestCommands:
    def test_figures_command_runs_clean(self, capsys):
        assert main(["figures"]) == 0
        output = capsys.readouterr().out
        assert "Figure 2" in output
        assert "STALE" in output        # baselines race
        assert "consistent" in output   # IQ holds

    def test_demo_command_runs(self, capsys):
        assert main(
            ["demo", "--threads", "2", "--ops", "10", "--members", "40"]
        ) == 0
        output = capsys.readouterr().out
        assert "IQ-Twemcached" in output
        assert "Twemcache baseline" in output
