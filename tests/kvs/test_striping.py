"""Lock striping: semantic transparency of the striped cache store.

Striping is a concurrency optimisation and must be invisible to every
observer: the same command sequence against a 1-stripe (global lock)
and a 16-stripe store leaves byte-identical contents, and a full BG
run over either deployment produces identical results -- the striped
mirror of ``tests/sharding``'s shards=1-vs-direct parity bar.
"""

import threading

import pytest

from repro.bg.actions import Technique
from repro.bg.harness import build_bg_system
from repro.casql.keys import KeySpace
from repro.config import KVSConfig
from repro.core.iq_server import IQServer
from repro.kvs.store import CacheStore

TECHNIQUES = [Technique.INVALIDATE, Technique.REFRESH, Technique.DELTA]


def make_store(stripes):
    return CacheStore(KVSConfig(stripe_count=stripes))


class TestStoreParity:
    def test_command_sequence_leaves_identical_contents(self):
        def drive(store):
            observed = []
            for i in range(64):
                store.set("key-%d" % i, b"v%d" % i)
            store.delete("key-3")
            store.add("key-3", b"re-added")
            store.append("key-4", b"!")
            store.set("n", b"5")
            observed.append(store.incr("n", 7))
            observed.append(store.decr("n", 100))
            store.flush_all()
            store.set("survivor", b"s")
            for i in range(64):
                observed.append(store.get("key-%d" % i))
            observed.append(store.get("survivor"))
            observed.append(sorted(store.keys()))
            observed.append(len(store))
            return observed

        assert drive(make_store(1)) == drive(make_store(16))

    def test_memory_limited_store_collapses_to_one_stripe(self):
        # Exact global LRU needs one recency order; the config contract
        # says a budget forces a single stripe regardless of the knob.
        store = CacheStore(
            KVSConfig(stripe_count=16, memory_limit_bytes=1 << 20))
        assert len(store._stripes) == 1
        assert len(make_store(16)._stripes) == 16

    def test_whole_store_lock_is_reentrant_against_itself(self):
        store = make_store(16)
        store.set("k", b"v")
        with store.locked():
            with store.locked():      # reentrant all-stripes acquisition
                assert store.get("k")[0] == b"v"   # and against per-key
                store.set("k2", b"v2")
        assert store.get("k2")[0] == b"v2"

    def test_concurrent_mixed_load_loses_nothing(self):
        store = make_store(16)
        keys = ["k%03d" % i for i in range(128)]
        errors = []

        def worker(offset):
            try:
                for i in range(400):
                    key = keys[(i * 31 + offset) % len(keys)]
                    store.set(key, key.encode())
                    hit = store.get(key)
                    if hit is not None and hit[0] != key.encode():
                        errors.append((key, hit[0]))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert sorted(store.keys()) == sorted(keys)


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_striped_bg_run_is_byte_identical(technique):
    """A deterministic single-threaded BG run leaves byte-identical
    cache contents behind a global-lock store and the striped default
    (mirrors the shards=1 parity test in tests/sharding)."""
    build = dict(
        members=40, friends_per_member=6, resources_per_member=2,
        technique=technique, seed=7,
    )
    global_lock = build_bg_system(
        iq_server=IQServer(kvs_config=KVSConfig(stripe_count=1)), **build)
    striped = build_bg_system(
        iq_server=IQServer(kvs_config=KVSConfig(stripe_count=16)), **build)
    assert len(striped.cache.store._stripes) == 16

    r1 = global_lock.runner.run(threads=1, ops_per_thread=150)
    r2 = striped.runner.run(threads=1, ops_per_thread=150)
    assert r1.actions == r2.actions == 150
    assert r1.errors == r2.errors == 0
    assert global_lock.log.unpredictable_reads() == 0
    assert striped.log.unpredictable_reads() == 0

    def cache_contents(store):
        keyspace = KeySpace()
        state = {}
        members = build["members"]
        resources = members * build["resources_per_member"] + 1
        kinds = [
            keyspace.profile, keyspace.friends, keyspace.pending_friends,
            keyspace.top_resources, keyspace.pending_count,
            keyspace.friend_count,
        ]
        for member in range(members):
            for kind in kinds:
                key = kind(member)
                hit = store.get(key)
                state[key] = None if hit is None else hit[0]
        for resource in range(resources):
            key = keyspace.resource_comments(resource)
            hit = store.get(key)
            state[key] = None if hit is None else hit[0]
        return state

    assert cache_contents(global_lock.cache.store) == cache_contents(
        striped.cache.store
    )
