"""Facebook read-lease semantics (the paper's baseline Twemcache)."""

from repro.config import LeaseConfig
from repro.kvs.read_lease import ReadLeaseStore
from repro.util.clock import LogicalClock


def make_store(ttl=10.0):
    clock = LogicalClock()
    return ReadLeaseStore(
        lease_config=LeaseConfig(i_lease_ttl=ttl), clock=clock
    ), clock


class TestLeaseGet:
    def test_hit_returns_value(self):
        store, _clock = make_store()
        store.set("k", b"v")
        result = store.lease_get("k")
        assert result.is_hit
        assert result.value == b"v"
        assert not result.has_lease

    def test_miss_grants_token(self):
        store, _clock = make_store()
        result = store.lease_get("k")
        assert not result.is_hit
        assert result.has_lease

    def test_second_miss_is_hot_miss(self):
        store, _clock = make_store()
        store.lease_get("k")
        second = store.lease_get("k")
        assert not second.is_hit and not second.has_lease
        assert second.backoff

    def test_distinct_keys_get_distinct_tokens(self):
        store, _clock = make_store()
        first = store.lease_get("a")
        second = store.lease_get("b")
        assert first.token != second.token


class TestLeaseSet:
    def test_set_with_live_token_stores(self):
        store, _clock = make_store()
        result = store.lease_get("k")
        assert store.lease_set("k", b"v", result.token)
        assert store.get("k") == (b"v", 0)

    def test_set_with_wrong_token_ignored(self):
        store, _clock = make_store()
        store.lease_get("k")
        assert not store.lease_set("k", b"v", 999999)
        assert store.get("k") is None

    def test_set_consumes_the_lease(self):
        store, _clock = make_store()
        result = store.lease_get("k")
        store.lease_set("k", b"v", result.token)
        # A new miss cycle can start once the value is deleted.
        store.delete("k")
        assert store.lease_get("k").has_lease

    def test_delete_voids_outstanding_token(self):
        store, _clock = make_store()
        result = store.lease_get("k")
        store.delete("k")
        assert not store.lease_set("k", b"stale", result.token)
        assert store.get("k") is None
        assert store.stats.get("i_lease_voids") == 1

    def test_token_granted_after_delete_is_valid(self):
        """The hole the IQ framework closes (paper Section 7): a token
        granted *after* an invalidation happily installs stale data."""
        store, _clock = make_store()
        store.set("k", b"fresh")
        store.delete("k")  # writer's invalidation
        result = store.lease_get("k")  # reader arrives afterwards
        assert store.lease_set("k", b"stale", result.token)
        assert store.get("k") == (b"stale", 0)


class TestLeaseExpiry:
    def test_expired_lease_allows_new_grant(self):
        store, clock = make_store(ttl=5.0)
        first = store.lease_get("k")
        clock.advance(6.0)
        second = store.lease_get("k")
        assert second.has_lease
        assert second.token != first.token

    def test_expired_token_cannot_set(self):
        store, clock = make_store(ttl=5.0)
        result = store.lease_get("k")
        clock.advance(6.0)
        assert not store.lease_set("k", b"late", result.token)


class TestPassThrough:
    def test_flush_all_clears_leases(self):
        store, _clock = make_store()
        result = store.lease_get("k")
        store.flush_all()
        assert not store.lease_set("k", b"v", result.token)
        assert store.lease_get("k").has_lease

    def test_basic_commands_work(self):
        store, _clock = make_store()
        store.set("n", b"1")
        assert store.incr("n") == 2
        assert store.decr("n") == 1
        store.append("n", b"0")
        assert store.get("n") == (b"10", 0)
        assert "n" in store and len(store) == 1
