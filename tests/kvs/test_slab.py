import pytest

from repro.kvs.slab import SlabClassTable


def test_chunk_sizes_grow_geometrically():
    table = SlabClassTable(factor=2.0, min_chunk=64, max_chunk=1024)
    assert table.chunk_sizes[0] == 64
    assert table.chunk_sizes[-1] == 1024
    for smaller, larger in zip(table.chunk_sizes, table.chunk_sizes[1:]):
        assert larger > smaller


def test_class_for_picks_smallest_fitting():
    table = SlabClassTable(factor=2.0, min_chunk=64, max_chunk=1024)
    assert table.chunk_sizes[table.class_for(1)] == 64
    assert table.chunk_sizes[table.class_for(64)] == 64
    assert table.chunk_sizes[table.class_for(65)] == 129
    assert table.chunk_sizes[table.class_for(1024)] == 1024


def test_oversized_item_raises():
    table = SlabClassTable(max_chunk=1024)
    with pytest.raises(ValueError):
        table.class_for(1025)


def test_charge_release_balance():
    table = SlabClassTable()
    charged = table.charge(100)
    assert charged == table.chunk_size_for(100)
    assert sum(table.occupancy()) == 1
    released = table.release(100)
    assert released == charged
    assert sum(table.occupancy()) == 0


def test_release_without_charge_raises():
    table = SlabClassTable()
    with pytest.raises(RuntimeError):
        table.release(100)


def test_invalid_factor():
    with pytest.raises(ValueError):
        SlabClassTable(factor=1.0)


def test_internal_fragmentation_is_charged():
    table = SlabClassTable(factor=2.0, min_chunk=64, max_chunk=1024)
    assert table.chunk_size_for(65) > 65
