"""Memcached command semantics of CacheStore."""

import pytest

from repro.config import KVSConfig
from repro.errors import BadValueError, KeyFormatError, ValueTooLargeError
from repro.kvs.store import CacheStore, StoreResult
from repro.util.clock import LogicalClock


class TestGetSet:
    def test_get_miss_returns_none(self, store):
        assert store.get("missing") is None

    def test_set_then_get(self, store):
        assert store.set("k", b"v") is StoreResult.STORED
        assert store.get("k") == (b"v", 0)

    def test_set_overwrites(self, store):
        store.set("k", b"v1")
        store.set("k", b"v2")
        assert store.get("k") == (b"v2", 0)

    def test_flags_round_trip(self, store):
        store.set("k", b"v", flags=42)
        assert store.get("k") == (b"v", 42)

    def test_get_multi(self, store):
        store.set("a", b"1")
        store.set("b", b"2")
        assert store.get_multi(["a", "b", "c"]) == {"a": b"1", "b": b"2"}

    def test_contains_and_len(self, store):
        store.set("a", b"1")
        assert "a" in store
        assert "b" not in store
        assert len(store) == 1


class TestAddReplace:
    def test_add_only_when_absent(self, store):
        assert store.add("k", b"v1") is StoreResult.STORED
        assert store.add("k", b"v2") is StoreResult.NOT_STORED
        assert store.get("k") == (b"v1", 0)

    def test_replace_only_when_present(self, store):
        assert store.replace("k", b"v") is StoreResult.NOT_STORED
        store.set("k", b"v1")
        assert store.replace("k", b"v2") is StoreResult.STORED
        assert store.get("k") == (b"v2", 0)


class TestAppendPrepend:
    def test_append(self, store):
        store.set("k", b"ab")
        assert store.append("k", b"cd") is StoreResult.STORED
        assert store.get("k") == (b"abcd", 0)

    def test_prepend(self, store):
        store.set("k", b"cd")
        assert store.prepend("k", b"ab") is StoreResult.STORED
        assert store.get("k") == (b"abcd", 0)

    def test_append_to_missing_is_not_stored(self, store):
        assert store.append("k", b"x") is StoreResult.NOT_STORED
        assert store.get("k") is None

    def test_prepend_to_missing_is_not_stored(self, store):
        assert store.prepend("k", b"x") is StoreResult.NOT_STORED


class TestCas:
    def test_cas_succeeds_with_current_version(self, store):
        store.set("k", b"v1")
        _value, _flags, cas_id = store.gets("k")
        assert store.cas("k", b"v2", cas_id) is StoreResult.STORED
        assert store.get("k") == (b"v2", 0)

    def test_cas_fails_after_concurrent_change(self, store):
        store.set("k", b"v1")
        _value, _flags, cas_id = store.gets("k")
        store.set("k", b"other")
        assert store.cas("k", b"v2", cas_id) is StoreResult.EXISTS
        assert store.get("k") == (b"other", 0)

    def test_cas_on_missing_key(self, store):
        assert store.cas("k", b"v", 1) is StoreResult.NOT_FOUND

    def test_every_mutation_changes_cas_id(self, store):
        store.set("k", b"v1")
        _v, _f, first = store.gets("k")
        store.append("k", b"2")
        _v, _f, second = store.gets("k")
        assert second != first

    def test_cas_fails_after_delete_and_reinsert(self, store):
        store.set("k", b"v1")
        _v, _f, cas_id = store.gets("k")
        store.delete("k")
        store.set("k", b"v1")
        assert store.cas("k", b"v2", cas_id) is StoreResult.EXISTS


class TestDelete:
    def test_delete_existing(self, store):
        store.set("k", b"v")
        assert store.delete("k") is True
        assert store.get("k") is None

    def test_delete_missing(self, store):
        assert store.delete("k") is False

    def test_flush_all(self, store):
        store.set("a", b"1")
        store.set("b", b"2")
        store.flush_all()
        assert len(store) == 0


class TestArithmetic:
    def test_incr(self, store):
        store.set("k", b"41")
        assert store.incr("k") == 42
        assert store.get("k") == (b"42", 0)

    def test_decr_clamps_at_zero(self, store):
        store.set("k", b"5")
        assert store.decr("k", 10) == 0

    def test_incr_wraps_at_uint64(self, store):
        store.set("k", str(2 ** 64 - 1).encode())
        assert store.incr("k", 1) == 0

    def test_incr_missing_returns_none(self, store):
        assert store.incr("k") is None

    def test_incr_non_numeric_raises(self, store):
        store.set("k", b"hello")
        with pytest.raises(BadValueError):
            store.incr("k")

    def test_negative_delta_rejected(self, store):
        store.set("k", b"1")
        with pytest.raises(BadValueError):
            store.incr("k", -1)
        with pytest.raises(BadValueError):
            store.decr("k", -1)


class TestExpiry:
    def test_ttl_expires_lazily(self, clock, store):
        store.set("k", b"v", ttl=10)
        clock.advance(9)
        assert store.get("k") == (b"v", 0)
        clock.advance(2)
        assert store.get("k") is None
        assert store.stats.get("expirations") == 1

    def test_zero_ttl_never_expires(self, clock, store):
        store.set("k", b"v", ttl=0)
        clock.advance(1e9)
        assert store.get("k") == (b"v", 0)

    def test_touch_extends_ttl(self, clock, store):
        store.set("k", b"v", ttl=10)
        clock.advance(5)
        assert store.touch("k", 10)
        clock.advance(6)
        assert store.get("k") == (b"v", 0)

    def test_touch_missing(self, store):
        assert store.touch("k", 10) is False

    def test_expired_entry_removed_callback(self, clock, store):
        removed = []
        store.on_entry_removed = removed.append
        store.set("k", b"v", ttl=1)
        clock.advance(2)
        store.get("k")
        assert removed == ["k"]


class TestValidation:
    def test_key_must_be_nonempty_string(self, store):
        with pytest.raises(KeyFormatError):
            store.get("")
        with pytest.raises(KeyFormatError):
            store.get(b"bytes-key")

    def test_key_length_limit(self, store):
        with pytest.raises(KeyFormatError):
            store.set("k" * 251, b"v")

    def test_key_rejects_whitespace(self, store):
        with pytest.raises(KeyFormatError):
            store.set("a key", b"v")
        with pytest.raises(KeyFormatError):
            store.set("a\nkey", b"v")

    def test_value_must_be_bytes(self, store):
        with pytest.raises(BadValueError):
            store.set("k", "string")

    def test_value_size_limit(self):
        store = CacheStore(KVSConfig(max_item_bytes=10))
        with pytest.raises(ValueTooLargeError):
            store.set("k", b"x" * 11)

    def test_append_respects_size_limit(self):
        store = CacheStore(KVSConfig(max_item_bytes=10))
        store.set("k", b"x" * 8)
        with pytest.raises(ValueTooLargeError):
            store.append("k", b"yyy")


class TestEviction:
    def _small_store(self, limit=2048):
        return CacheStore(
            KVSConfig(memory_limit_bytes=limit), clock=LogicalClock()
        )

    def test_lru_eviction_under_pressure(self):
        store = self._small_store()
        for i in range(100):
            store.set("key{}".format(i), b"x" * 100)
        assert len(store) < 100
        assert store.stats.get("evictions") > 0
        assert store.memory_used() <= 2048

    def test_recently_read_survives(self):
        store = self._small_store(4096)
        for i in range(10):
            store.set("key{}".format(i), b"x" * 100)
        survivors_before = set(store.keys())
        assert "key0" in survivors_before
        store.get("key0")
        for i in range(10, 25):
            store.set("key{}".format(i), b"x" * 100)
        assert "key0" in store

    def test_eviction_fires_removal_callback(self):
        store = self._small_store()
        removed = []
        store.on_entry_removed = removed.append
        for i in range(100):
            store.set("key{}".format(i), b"x" * 100)
        assert removed
        assert all(key.startswith("key") for key in removed)

    def test_oversized_item_rejected(self):
        store = self._small_store(512)
        with pytest.raises(ValueTooLargeError):
            store.set("big", b"x" * 4096)

    def test_memory_accounting_balances(self):
        store = self._small_store(100000)
        for i in range(20):
            store.set("key{}".format(i), b"x" * 50)
        used = store.memory_used()
        assert used > 0
        for i in range(20):
            store.delete("key{}".format(i))
        assert store.memory_used() == 0


class TestStatsCounting:
    def test_hit_miss_counters(self, store):
        store.set("k", b"v")
        store.get("k")
        store.get("absent")
        assert store.stats.get("get_hits") == 1
        assert store.stats.get("get_misses") == 1
        assert store.stats.hit_rate() == pytest.approx(0.5)

    def test_delete_counters(self, store):
        store.set("k", b"v")
        store.delete("k")
        store.delete("k")
        assert store.stats.get("delete_hits") == 1
        assert store.stats.get("delete_misses") == 1
