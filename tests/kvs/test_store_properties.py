"""Property-based tests over CacheStore with hypothesis."""

import hypothesis.strategies as st
from hypothesis import given, settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.config import KVSConfig
from repro.kvs.store import CacheStore, StoreResult
from repro.util.clock import LogicalClock

keys = st.text(
    alphabet=st.characters(min_codepoint=0x21, max_codepoint=0x7E),
    min_size=1,
    max_size=32,
)
values = st.binary(max_size=256)


@given(key=keys, value=values)
def test_set_get_round_trip(key, value):
    store = CacheStore(clock=LogicalClock())
    store.set(key, value)
    assert store.get(key) == (value, 0)


@given(key=keys, first=values, second=values)
def test_last_set_wins(key, first, second):
    store = CacheStore(clock=LogicalClock())
    store.set(key, first)
    store.set(key, second)
    assert store.get(key) == (second, 0)


@given(key=keys, start=st.integers(min_value=0, max_value=2 ** 32),
       deltas=st.lists(st.integers(min_value=0, max_value=1000), max_size=20))
def test_incr_matches_integer_arithmetic(key, start, deltas):
    store = CacheStore(clock=LogicalClock())
    store.set(key, str(start).encode())
    expected = start
    for delta in deltas:
        expected = expected + delta
        assert store.incr(key, delta) == expected
    assert store.get(key) == (str(expected).encode(), 0)


@given(key=keys, start=st.integers(min_value=0, max_value=1000),
       delta=st.integers(min_value=0, max_value=2000))
def test_decr_clamps(key, start, delta):
    store = CacheStore(clock=LogicalClock())
    store.set(key, str(start).encode())
    assert store.decr(key, delta) == max(0, start - delta)


@given(key=keys, parts=st.lists(values, min_size=1, max_size=10))
def test_append_concatenates(key, parts):
    store = CacheStore(clock=LogicalClock())
    store.set(key, parts[0])
    for part in parts[1:]:
        store.append(key, part)
    assert store.get(key) == (b"".join(parts), 0)


@given(key=keys, value=values, interloper=values)
def test_cas_only_succeeds_unchanged(key, value, interloper):
    store = CacheStore(clock=LogicalClock())
    store.set(key, value)
    _v, _f, cas_id = store.gets(key)
    store.set(key, interloper)
    assert store.cas(key, b"after", cas_id) is StoreResult.EXISTS


class BoundedStoreMachine(RuleBasedStateMachine):
    """Stateful test: the store never exceeds its memory budget and
    always agrees with a model dict on key presence semantics for
    non-evicted keys (presence in the store implies model agreement on
    the value)."""

    LIMIT = 4096

    def __init__(self):
        super().__init__()
        self.store = CacheStore(
            KVSConfig(memory_limit_bytes=self.LIMIT), clock=LogicalClock()
        )
        self.model = {}

    @rule(key=keys, value=st.binary(min_size=1, max_size=200))
    def set_value(self, key, value):
        self.store.set(key, value)
        self.model[key] = value

    @rule(key=keys)
    def delete_value(self, key):
        self.store.delete(key)
        self.model.pop(key, None)

    @rule(key=keys)
    def read_value(self, key):
        hit = self.store.get(key)
        if hit is not None:
            # Anything present must match the model exactly (eviction may
            # drop keys, but never corrupt them).
            assert self.model.get(key) == hit[0]

    @invariant()
    def within_budget(self):
        assert self.store.memory_used() <= self.LIMIT

    @invariant()
    def store_is_subset_of_model(self):
        for key in self.store.keys():
            assert key in self.model


BoundedStoreTest = BoundedStoreMachine.TestCase
BoundedStoreTest.settings = settings(max_examples=25, stateful_step_count=30)
