"""Slab allocator: placement, reassignment, and eviction strategies."""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import KVSError, ValueTooLargeError
from repro.kvs.slab_allocator import (
    SlabAllocator,
    SlabCache,
    SlabStrategy,
)


def allocator(limit=16384, slab=4096, strategy=SlabStrategy.LRA):
    return SlabAllocator(
        limit, slab_bytes=slab, strategy=strategy, rng=random.Random(7)
    )


class TestPlacement:
    def test_items_share_a_slab_within_class(self):
        alloc = allocator()
        first = alloc.allocate("a", 80)
        second = alloc.allocate("b", 80)
        assert first is second
        assert alloc.slab_count() == 1

    def test_different_classes_use_different_slabs(self):
        alloc = allocator()
        small = alloc.allocate("a", 80)
        big = alloc.allocate("b", 2000)
        assert small is not big
        assert small.chunk_size < big.chunk_size

    def test_full_slab_spills_to_new_slab(self):
        alloc = allocator()
        slab = alloc.allocate("k0", 80)
        for i in range(1, slab.chunk_count):
            assert alloc.allocate("k{}".format(i), 80) is slab
        overflow = alloc.allocate("overflow", 80)
        assert overflow is not slab
        assert alloc.slab_count() == 2

    def test_free_reopens_chunk(self):
        alloc = allocator()
        slab = alloc.allocate("a", 80)
        for i in range(slab.chunk_count - 1):
            alloc.allocate("f{}".format(i), 80)
        assert slab.free_chunks == 0
        alloc.free("a")
        assert alloc.allocate("again", 80) is slab

    def test_double_allocate_rejected(self):
        alloc = allocator()
        alloc.allocate("a", 80)
        with pytest.raises(KVSError):
            alloc.allocate("a", 80)

    def test_oversized_item_rejected(self):
        alloc = allocator()
        with pytest.raises(ValueTooLargeError):
            alloc.allocate("big", 10_000)

    def test_free_unknown_is_false(self):
        assert allocator().free("ghost") is False

    def test_memory_accounting(self):
        alloc = allocator(limit=16384, slab=4096)
        alloc.allocate("a", 80)
        assert alloc.memory_used() == 4096
        alloc.allocate("b", 2000)
        assert alloc.memory_used() == 8192


class TestEviction:
    def _fill(self, alloc, prefix, count, size=80):
        for i in range(count):
            alloc.allocate("{}{}".format(prefix, i), size)

    def test_no_eviction_raises_when_full(self):
        alloc = allocator(limit=4096, strategy=SlabStrategy.NO_EVICTION)
        slab = alloc.allocate("k0", 80)
        for i in range(1, slab.chunk_count):
            alloc.allocate("k{}".format(i), 80)
        with pytest.raises(KVSError):
            alloc.allocate("spill", 2000)

    def test_eviction_frees_a_whole_slab(self):
        alloc = allocator(limit=4096, strategy=SlabStrategy.LRC)
        slab = alloc.allocate("k0", 80)
        for i in range(1, slab.chunk_count):
            alloc.allocate("k{}".format(i), 80)
        alloc.allocate("spill", 2000)  # forces slab eviction + new class
        assert alloc.slab_evictions == 1
        assert set(alloc.drain_evicted()) == {
            "k{}".format(i) for i in range(slab.chunk_count)
        }
        assert alloc.holds("spill")

    def test_lra_prefers_least_recently_accessed(self):
        alloc = allocator(limit=8192, strategy=SlabStrategy.LRA)
        alloc.allocate("a0", 80)
        # Two slabs of two classes exist after the big allocation below.
        alloc2_key = "bigitem"
        alloc.allocate(alloc2_key, 2000)
        alloc.touch("a0")  # slab A recently accessed
        alloc.allocate("force", 3000)  # needs a third slab: evict LRA
        assert not alloc.holds(alloc2_key)  # big-item slab was colder
        assert alloc.holds("a0")

    def test_lrc_prefers_oldest_slab(self):
        alloc = allocator(limit=8192, strategy=SlabStrategy.LRC)
        alloc.allocate("old", 80)
        alloc.allocate("new", 2000)
        alloc.touch("old")  # access does not protect under LRC
        alloc.allocate("force", 3000)
        assert not alloc.holds("old")
        assert alloc.holds("new")

    def test_random_eviction_evicts_some_slab(self):
        alloc = allocator(limit=8192, strategy=SlabStrategy.RANDOM)
        alloc.allocate("a", 80)
        alloc.allocate("b", 2000)
        alloc.allocate("force", 3000)
        assert alloc.slab_evictions == 1
        assert alloc.slab_count() == 2

    def test_slab_reassigned_across_classes(self):
        """The Twemcache selling point: memory moves between classes."""
        alloc = allocator(limit=4096, strategy=SlabStrategy.LRC)
        slab = alloc.allocate("small0", 80)
        self._fill(alloc, "x", slab.chunk_count - 1)
        alloc.allocate("large", 2000)  # the only slab is reassigned
        assert alloc.slab_count() == 1
        assert alloc.holds("large")
        assert not alloc.holds("small0")


class TestSlabCache:
    def test_get_set_delete(self):
        cache = SlabCache(8192)
        cache.set("k", b"v")
        assert cache.get("k") == b"v"
        assert cache.delete("k")
        assert cache.get("k") is None
        assert cache.hits == 1 and cache.misses == 1

    def test_overwrite_replaces(self):
        cache = SlabCache(8192)
        cache.set("k", b"v1")
        cache.set("k", b"v2" * 300)  # different class
        assert cache.get("k") == b"v2" * 300

    def test_eviction_removes_values(self):
        cache = SlabCache(4096, strategy=SlabStrategy.LRC)
        for i in range(200):
            cache.set("key{}".format(i), b"x" * 100)
        assert len(cache) < 200
        # Every surviving key must still be readable.
        for key in list(cache._values):
            assert cache.get(key) is not None

    def test_hit_rate_none_before_traffic(self):
        assert SlabCache(8192).hit_rate() is None


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["set", "get", "delete"]),
            st.integers(min_value=0, max_value=30),
            st.integers(min_value=1, max_value=600),
        ),
        max_size=120,
    ),
    strategy=st.sampled_from(
        [SlabStrategy.RANDOM, SlabStrategy.LRA, SlabStrategy.LRC]
    ),
)
@settings(max_examples=50, deadline=None)
def test_allocator_invariants_hold_under_random_ops(ops, strategy):
    cache = SlabCache(8192, strategy=strategy, rng=random.Random(3))
    for op, key_index, size in ops:
        key = "key{}".format(key_index)
        if op == "set":
            cache.set(key, b"x" * size)
        elif op == "get":
            value = cache.get(key)
            if value is not None:
                assert len(value) >= 1
        else:
            cache.delete(key)
        allocator_obj = cache.allocator
        # Invariant 1: memory never exceeds the limit.
        assert allocator_obj.memory_used() <= 8192
        # Invariant 2: the value map and the allocator agree on residency.
        assert set(cache._values) == set(allocator_obj._item_slab)
        # Invariant 3: every mapped item's slab actually lists it.
        for mapped_key, slab in allocator_obj._item_slab.items():
            assert mapped_key in slab.items
