from repro.kvs.entry import CacheEntry
from repro.kvs.lru import LRUList


def entry(key):
    return CacheEntry(key, b"v")


def keys_lru_first(lru):
    return [e.key for e in lru.items_lru_first()]


def test_push_front_orders_mru_first():
    lru = LRUList()
    a, b, c = entry("a"), entry("b"), entry("c")
    for e in (a, b, c):
        lru.push_front(e)
    assert keys_lru_first(lru) == ["a", "b", "c"]
    assert lru.lru_victim() is a
    assert len(lru) == 3


def test_remove_middle():
    lru = LRUList()
    a, b, c = entry("a"), entry("b"), entry("c")
    for e in (a, b, c):
        lru.push_front(e)
    lru.remove(b)
    assert keys_lru_first(lru) == ["a", "c"]
    assert len(lru) == 2


def test_remove_head_and_tail():
    lru = LRUList()
    a, b = entry("a"), entry("b")
    lru.push_front(a)
    lru.push_front(b)
    lru.remove(b)  # head
    assert keys_lru_first(lru) == ["a"]
    lru.remove(a)  # tail (also head)
    assert keys_lru_first(lru) == []
    assert lru.lru_victim() is None


def test_touch_moves_to_mru():
    lru = LRUList()
    a, b, c = entry("a"), entry("b"), entry("c")
    for e in (a, b, c):
        lru.push_front(e)
    lru.touch(a)
    assert lru.lru_victim() is b
    assert keys_lru_first(lru) == ["b", "c", "a"]


def test_touch_head_is_noop():
    lru = LRUList()
    a, b = entry("a"), entry("b")
    lru.push_front(a)
    lru.push_front(b)
    lru.touch(b)
    assert keys_lru_first(lru) == ["a", "b"]


def test_iteration_survives_unlinking_current():
    lru = LRUList()
    entries = [entry(str(i)) for i in range(5)]
    for e in entries:
        lru.push_front(e)
    seen = []
    for e in lru.items_lru_first():
        seen.append(e.key)
        lru.remove(e)
    assert seen == ["0", "1", "2", "3", "4"]
    assert len(lru) == 0
