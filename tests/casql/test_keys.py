from repro.casql.keys import KeySpace


def test_paper_key_format():
    keys = KeySpace()
    assert keys.profile(42) == "Profile42"
    assert keys.friends(42) == "Friends42"
    assert keys.pending_friends(42) == "PendingFriends42"
    assert keys.top_resources(42) == "TopKResources42"
    assert keys.resource_comments(7) == "Comments7"
    assert keys.pending_count(42) == "PendingCount42"
    assert keys.friend_count(42) == "FriendCount42"


def test_namespace_prefix():
    keys = KeySpace(namespace="app1")
    assert keys.profile(1) == "app1:Profile1"
    assert keys.query("abc") == "app1:Qabc"


def test_distinct_kinds_never_collide():
    keys = KeySpace()
    built = {
        keys.profile(1), keys.friends(1), keys.pending_friends(1),
        keys.top_resources(1), keys.resource_comments(1),
        keys.pending_count(1), keys.friend_count(1), keys.query(1),
    }
    assert len(built) == 8
