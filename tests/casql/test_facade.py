"""CASQLFacade: cache-aside query caching end to end."""

import pytest

from repro.casql.cache_store import CASQLFacade
from repro.core.iq_client import IQClient
from repro.core.policies import IQInvalidateClient, KeyChange
from repro.util.backoff import NoBackoff


@pytest.fixture
def facade(iq, users_db):
    iq_client = IQClient(iq, backoff=NoBackoff(max_attempts=100))
    consistency = IQInvalidateClient(
        iq_client, users_db.connect, backoff=NoBackoff()
    )
    return CASQLFacade(consistency, users_db.connect)


class TestCachedQuery:
    def test_first_call_computes_second_hits(self, facade, iq):
        rows = facade.cached_query(
            "SELECT name FROM users WHERE id = ?", (1,)
        )
        assert rows == [{"name": "alice"}]
        hits_before = iq.stats.get("get_hits")
        again = facade.cached_query(
            "SELECT name FROM users WHERE id = ?", (1,)
        )
        assert again == rows
        assert iq.stats.get("get_hits") > hits_before

    def test_distinct_params_distinct_keys(self, facade):
        alice = facade.cached_query(
            "SELECT name FROM users WHERE id = ?", (1,)
        )
        bob = facade.cached_query(
            "SELECT name FROM users WHERE id = ?", (2,)
        )
        assert alice != bob

    def test_explicit_key(self, facade, iq):
        facade.cached_query(
            "SELECT name FROM users WHERE id = ?", (1,), key="AliceName"
        )
        assert iq.store.get("AliceName") is not None

    def test_stale_after_uncached_write_demonstrates_need(self, facade,
                                                          users_db):
        """A raw RDBMS write (bypassing the session model) leaves the
        cached result stale -- motivating write sessions."""
        key = "Score1"
        first = facade.cached_query(
            "SELECT score FROM users WHERE id = ?", (1,), key=key
        )
        raw = users_db.connect()
        raw.execute("UPDATE users SET score = 999 WHERE id = 1")
        again = facade.cached_query(
            "SELECT score FROM users WHERE id = ?", (1,), key=key
        )
        assert again == first  # stale on purpose


class TestCachedObject:
    def test_round_trip(self, facade):
        value = facade.cached_object("Obj1", lambda: {"a": 1})
        assert value == {"a": 1}
        assert facade.cached_object("Obj1", lambda: {"a": 2}) == {"a": 1}

    def test_absent_object(self, facade):
        assert facade.cached_object("Gone", lambda: None) is None


class TestWrites:
    def test_write_session_invalidates(self, facade, iq, users_db):
        key = "Score1"
        facade.cached_query(
            "SELECT score FROM users WHERE id = ?", (1,), key=key
        )

        def body(session):
            session.execute("UPDATE users SET score = 999 WHERE id = 1")

        facade.write(body, [KeyChange(key)])
        fresh = facade.cached_query(
            "SELECT score FROM users WHERE id = ?", (1,), key=key
        )
        assert fresh == [{"score": 999}]

    def test_invalidate_keys_helper(self, facade, iq):
        iq.store.set("a", b"1")
        iq.store.set("b", b"2")
        facade.invalidate_keys(["a", "b"])
        assert iq.store.get("a") is None
        assert iq.store.get("b") is None
