"""CASQLFacade over the refresh and delta clients + namespacing."""

import pytest

from repro.casql.cache_store import CASQLFacade
from repro.casql.keys import KeySpace
from repro.core.iq_client import IQClient
from repro.core.policies import IQDeltaClient, IQRefreshClient, KeyChange
from repro.util.backoff import NoBackoff


@pytest.fixture
def iq_client(iq):
    return IQClient(iq, backoff=NoBackoff(max_attempts=100))


class TestRefreshFacade:
    def test_write_refreshes_cached_query(self, iq, iq_client, users_db):
        facade = CASQLFacade(
            IQRefreshClient(iq_client, users_db.connect, backoff=NoBackoff()),
            users_db.connect,
        )
        key = "Score1"
        first = facade.cached_query(
            "SELECT score FROM users WHERE id = ?", (1,), key=key
        )
        assert first == [{"score": 10}]

        from repro.casql.codec import decode, encode

        def refresher(old):
            if old is None:
                return None
            rows = decode(old)
            rows[0]["score"] += 1
            return encode(rows)

        def body(session):
            session.execute(
                "UPDATE users SET score = score + 1 WHERE id = 1"
            )

        facade.write(body, [KeyChange(key, refresher=refresher)])
        assert facade.cached_query(
            "SELECT score FROM users WHERE id = ?", (1,), key=key
        ) == [{"score": 11}]
        # The refreshed value is a cache hit, not a recomputation.
        assert iq.store.get(key) is not None

    def test_refresh_write_on_cold_key_skips(self, iq, iq_client, users_db):
        facade = CASQLFacade(
            IQRefreshClient(iq_client, users_db.connect, backoff=NoBackoff()),
            users_db.connect,
        )

        def body(session):
            session.execute("UPDATE users SET score = 0 WHERE id = 1")

        facade.write(
            body, [KeyChange("ColdKey", refresher=lambda old: old)]
        )
        assert iq.store.get("ColdKey") is None
        # Lease released; a reader can populate.
        assert facade.cached_object("ColdKey", lambda: 1) == 1


class TestDeltaFacade:
    def test_counter_object_with_deltas(self, iq, iq_client, users_db):
        facade = CASQLFacade(
            IQDeltaClient(iq_client, users_db.connect, backoff=NoBackoff()),
            users_db.connect,
        )
        assert facade.cached_object("Visits", lambda: 10) == 10

        def body(session):
            session.execute("UPDATE users SET score = score + 1 WHERE id = 1")

        facade.write(body, [KeyChange("Visits", deltas=[("incr", 5)])])
        assert facade.cached_object("Visits", lambda: 0) == 15


class TestNamespaces:
    def test_tenants_do_not_collide(self, iq, iq_client, users_db):
        from repro.core.policies import IQInvalidateClient

        client = IQInvalidateClient(
            iq_client, users_db.connect, backoff=NoBackoff()
        )
        tenant_a = CASQLFacade(
            client, users_db.connect, keyspace=KeySpace("tenantA")
        )
        tenant_b = CASQLFacade(
            client, users_db.connect, keyspace=KeySpace("tenantB")
        )
        rows_a = tenant_a.cached_query(
            "SELECT name FROM users WHERE id = ?", (1,)
        )
        users_db.connect().execute(
            "UPDATE users SET name = 'renamed' WHERE id = 1"
        )
        rows_b = tenant_b.cached_query(
            "SELECT name FROM users WHERE id = ?", (1,)
        )
        # A cached under tenantA before the rename; B computed after.
        assert rows_a == [{"name": "alice"}]
        assert rows_b == [{"name": "renamed"}]
