import pytest

from repro.casql.codec import decode, encode
from repro.errors import BadValueError


class TestEncode:
    def test_int_encodes_as_ascii_decimal(self):
        assert encode(42) == b"42"

    def test_dict_round_trip(self):
        value = {"name": "alice", "count": 3, "tags": ["a", "b"]}
        assert decode(encode(value)) == value

    def test_list_round_trip(self):
        assert decode(encode([1, 2, 3])) == [1, 2, 3]

    def test_string_round_trip(self):
        assert decode(encode("hello")) == "hello"

    def test_bool_survives(self):
        assert decode(encode(True)) is True

    def test_bytes_pass_through(self):
        assert encode(b"raw") == b"raw"

    def test_encoded_int_is_incr_compatible(self, store):
        store.set("k", encode(10))
        assert store.incr("k", 5) == 15
        assert decode(store.get("k")[0]) == 15

    def test_unserializable_raises(self):
        with pytest.raises(BadValueError):
            encode(object())

    def test_deterministic_key_order(self):
        assert encode({"b": 1, "a": 2}) == encode({"a": 2, "b": 1})


class TestDecode:
    def test_none_passes_through(self):
        assert decode(None) is None

    def test_plain_bytes_fall_through(self):
        assert decode(b"not-json-not-int") == b"not-json-not-int"

    def test_int_decodes(self):
        assert decode(b"7") == 7

    def test_type_check(self):
        with pytest.raises(BadValueError):
            decode("a str")
