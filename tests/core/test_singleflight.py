"""Client-side miss coalescing: the registry, the fences, the parking.

The exhaustive proof of the fencing rule lives in
``tests/mc/test_coalesced_scenarios.py``; this suite pins the concrete
implementation -- registry ordering, the applied fence against real
``flush_all``/write-session invalidations, the clock client's interval
fence, and the parking behaviour (a waiter blocks on the one in-flight
fill instead of re-polling the server at every backoff boundary).
"""

import threading

import pytest

from repro.config import BackoffConfig, ClockConfig
from repro.core.iq_client import IQClient
from repro.core.iq_server import IQServer
from repro.core.policies import ClockClient, KeyChange
from repro.core.singleflight import FillOutcome, Flight, SingleFlight
from repro.errors import StarvationError
from repro.util.backoff import ExponentialBackoff

#: parks resolve in microseconds here; tight delays keep tests snappy
FAST_BACKOFF = BackoffConfig(initial_delay=0.001, multiplier=2.0,
                             max_delay=0.01, jitter=0.0)


class TestFillOutcome:
    def test_covers_is_half_open(self):
        outcome = FillOutcome(b"v", valid_from=3, valid_until=7)
        assert not outcome.covers(2)
        assert outcome.covers(3)
        assert outcome.covers(6)
        assert not outcome.covers(7)

    def test_unstamped_outcome_covers_nothing(self):
        assert not FillOutcome(b"v", applied=True).covers(0)


class TestFlight:
    def test_wait_times_out_unresolved(self):
        flight = Flight()
        assert flight.wait(0.001) is None
        assert not flight.resolved

    def test_resolve_wakes_and_marks(self):
        flight = Flight()
        outcome = FillOutcome(b"v", applied=True)
        flight.resolve(outcome)
        assert flight.resolved
        assert flight.wait(0.0) is outcome

    def test_abandoned_flight_is_resolved_with_nothing(self):
        flights = SingleFlight()
        flight = flights.begin("k")
        flights.abandon("k", flight)
        assert flight.resolved
        assert flight.wait(0.0) is None
        assert flights.join("k") is None


class TestRegistry:
    def test_join_before_unregister_only(self):
        flights = SingleFlight()
        flight = flights.begin("k")
        assert flights.join("k") is flight
        flights.unregister("k", flight)
        # The install happens after unregister; a late reader must not
        # be able to join (its window opened after the install).
        assert flights.join("k") is None

    def test_unregister_is_a_noop_for_a_replaced_flight(self):
        flights = SingleFlight()
        stale = flights.begin("k")
        fresh = flights.begin("k")
        flights.unregister("k", stale)
        assert flights.join("k") is fresh

    def test_counters(self):
        flights = SingleFlight()
        flights.note(True)
        flights.note(False)
        flights.note(False)
        assert flights.coalesced == 1
        assert flights.refused == 2
        assert flights.in_flight() == 0


def _gated(value, started, release, calls=None):
    """A compute() that announces entry and blocks until released."""
    def compute():
        if calls is not None:
            calls.append(value)
        started.set()
        assert release.wait(5.0), "test deadlock: compute never released"
        return value
    return compute


def _start(target):
    thread = threading.Thread(target=target)
    thread.start()
    return thread


def _await_poll(server, floor, timeout=5.0):
    """Block until the server has seen more than ``floor`` iqget polls."""
    deadline = 50 * timeout
    while server.stats.snapshot()["cmd_get"] <= floor:
        deadline -= 1
        assert deadline > 0, "waiter never polled the server"
        threading.Event().wait(0.02)


class TestIQCoalescing:
    def _run(self, coalesce=True):
        server = IQServer()
        client = IQClient(
            server, backoff=ExponentialBackoff(FAST_BACKOFF),
            coalesce_fills=coalesce,
        )
        return server, client

    def test_waiter_is_served_from_the_applied_fill(self):
        server, client = self._run()
        started, release = threading.Event(), threading.Event()
        waiter_calls, results = [], {}

        filler = _start(lambda: results.setdefault(
            "filler",
            client.read_through("k", _gated(b"v0", started, release))))
        assert started.wait(5.0)
        polls = server.stats.snapshot()["cmd_get"]
        waiter = _start(lambda: results.setdefault(
            "waiter",
            client.read_through(
                "k", _gated(b"WRONG", threading.Event(), threading.Event(),
                            waiter_calls))))
        _await_poll(server, polls)   # waiter polled once, now parked
        release.set()
        filler.join(5.0)
        waiter.join(5.0)
        assert results == {"filler": b"v0", "waiter": b"v0"}
        assert waiter_calls == []    # the waiter never touched SQL
        assert client.flights.coalesced == 1
        assert client.flights.in_flight() == 0

    def test_parked_waiter_polls_the_server_exactly_once(self):
        """The herd claim: parking replaces per-backoff re-polling, so a
        fill spanning many backoff periods still costs one ``IQget`` per
        waiter (filler lease grant + one backoff poll = 2 total)."""
        server, client = self._run()
        started, release = threading.Event(), threading.Event()
        results = {}

        filler = _start(lambda: results.setdefault(
            "filler",
            client.read_through("k", _gated(b"v0", started, release))))
        assert started.wait(5.0)
        waiter = _start(lambda: results.setdefault(
            "waiter", client.read_through("k", lambda: b"WRONG")))
        _await_poll(server, 1)
        # Hold the fill across what would be many backoff boundaries
        # (delays are capped at 10ms; 80ms ~ several re-polls unparked).
        threading.Event().wait(0.08)
        release.set()
        filler.join(5.0)
        waiter.join(5.0)
        assert results["waiter"] == b"v0"
        assert server.stats.snapshot()["cmd_get"] == 2

    def test_flush_all_during_fill_is_fenced(self):
        """The losing interleaving from the mc witness, live: the fill
        races a ``flush_all``; the refused install must not be consumed
        by the waiter, which retries the wire and fills fresh."""
        server, client = self._run()
        started, release = threading.Event(), threading.Event()
        results = {}

        filler = _start(lambda: results.setdefault(
            "filler",
            client.read_through("k", _gated(b"stale", started, release))))
        assert started.wait(5.0)
        polls = server.stats.snapshot()["cmd_get"]
        waiter = _start(lambda: results.setdefault(
            "waiter", client.read_through("k", lambda: b"fresh")))
        _await_poll(server, polls)
        server.flush_all()           # voids the filler's I lease
        release.set()
        filler.join(5.0)
        waiter.join(5.0)
        # The filler may keep its own computed value (it serializes
        # before the invalidation); the waiter may not.
        assert results["filler"] == b"stale"
        assert results["waiter"] == b"fresh"
        assert client.flights.coalesced == 0
        assert client.flights.refused >= 1
        assert server.store.get("k")[0] == b"fresh"

    def test_write_session_invalidation_during_fill_is_fenced(self):
        """Same fence against the paper's own invalidation: a Q grant
        voids the I lease mid-fill, ``dar`` deletes, install refused."""
        server, client = self._run()
        started, release = threading.Event(), threading.Event()
        results = {}

        filler = _start(lambda: results.setdefault(
            "filler",
            client.read_through("k", _gated(b"stale", started, release))))
        assert started.wait(5.0)
        polls = server.stats.snapshot()["cmd_get"]
        waiter = _start(lambda: results.setdefault(
            "waiter", client.read_through("k", lambda: b"fresh")))
        _await_poll(server, polls)
        tid = server.gen_id()
        assert server.qar(tid, "k") is True
        server.dar(tid)
        release.set()
        filler.join(5.0)
        waiter.join(5.0)
        assert results["waiter"] == b"fresh"
        assert client.flights.refused >= 1

    def test_abandoned_flight_falls_back_to_the_wire(self):
        """A filler whose compute finds nothing wakes waiters with no
        outcome; a parked waiter must fall through and fill itself."""
        server, client = self._run()
        started, release = threading.Event(), threading.Event()
        results = {}

        def empty_compute():
            started.set()
            assert release.wait(5.0)
            return None

        filler = _start(lambda: results.setdefault(
            "filler", client.read_through("k", empty_compute)))
        assert started.wait(5.0)
        polls = server.stats.snapshot()["cmd_get"]
        waiter = _start(lambda: results.setdefault(
            "waiter", client.read_through("k", lambda: b"mine")))
        _await_poll(server, polls)
        release.set()
        filler.join(5.0)
        waiter.join(5.0)
        assert results["filler"] is None
        assert results["waiter"] == b"mine"

    def test_starvation_still_fires_while_parked(self):
        """Parking draws from the same delays generator, so a backoff
        attempt cap starves a parked waiter exactly as it would have
        starved the sleep-and-repoll loop."""
        server = IQServer()
        capped = BackoffConfig(initial_delay=0.001, multiplier=1.0,
                               max_delay=0.001, jitter=0.0, max_attempts=3)
        client = IQClient(server, backoff=ExponentialBackoff(capped))
        started, release = threading.Event(), threading.Event()
        errors = []

        filler = _start(
            lambda: client.read_through("k", _gated(b"v", started, release)))
        assert started.wait(5.0)

        def starving_waiter():
            try:
                client.read_through("k", lambda: b"x")
            except StarvationError as exc:
                errors.append(exc)

        waiter = _start(starving_waiter)
        waiter.join(5.0)
        release.set()
        filler.join(5.0)
        assert len(errors) == 1
        assert errors[0].attempts == 3


class TestClockCoalescing:
    @pytest.fixture
    def items_db(self, db):
        connection = db.connect()
        connection.execute(
            "CREATE TABLE items (id INTEGER PRIMARY KEY, val INTEGER)")
        connection.execute("INSERT INTO items (id, val) VALUES (1, 10)")
        connection.close()
        return db

    def _client(self, iq, items_db):
        return ClockClient(
            iq, items_db.connect, config=ClockConfig(local_cache_entries=0),
            backoff=ExponentialBackoff(FAST_BACKOFF),
        )

    def test_waiter_inside_the_interval_is_served(self, iq, items_db):
        client = self._client(iq, items_db)
        started, release = threading.Event(), threading.Event()
        waiter_calls, results = [], {}

        filler = _start(lambda: results.setdefault(
            "filler", client.read("k", _gated(b"fill", started, release))))
        assert started.wait(5.0)
        waiter = _start(lambda: results.setdefault(
            "waiter", client.read(
                "k", _gated(b"WRONG", threading.Event(), threading.Event(),
                            waiter_calls))))
        threading.Event().wait(0.05)   # waiter promises, joins, parks
        release.set()
        filler.join(5.0)
        waiter.join(5.0)
        assert results == {"filler": b"fill", "waiter": b"fill"}
        assert waiter_calls == []
        assert client.flights.coalesced == 1

    def test_interval_expiry_is_fenced_arithmetically(self, iq, items_db):
        """A commit that jumps the key's clock past the fill's promised
        horizon expires the outcome for every later reader: the waiter's
        own reading falls outside ``[valid_from, valid_until)``, so it
        must refuse the hand-off and compute fresh."""
        client = self._client(iq, items_db)
        started, release = threading.Event(), threading.Event()
        results = {}

        filler = _start(lambda: results.setdefault(
            "filler", client.read("k", _gated(b"fill", started, release))))
        assert started.wait(5.0)

        # The write commits while the fill is in flight; its clock jump
        # invalidates the promised interval by arithmetic.
        def bump(session):
            session.execute("UPDATE items SET val = 11 WHERE id = 1")

        client.write(bump, [KeyChange("k")])
        waiter = _start(lambda: results.setdefault(
            "waiter", client.read("k", lambda: b"own")))
        threading.Event().wait(0.05)
        release.set()
        filler.join(5.0)
        waiter.join(5.0)
        assert results["waiter"] == b"own"
        assert client.flights.coalesced == 0
        assert client.flights.refused == 1
