"""Consistency clients: IQ protocols and the raceful baselines."""

import pytest

from repro.core.iq_client import IQClient
from repro.core.policies import (
    BaselineDeltaClient,
    BaselineInvalidateClient,
    BaselineRefreshClient,
    DeleteTiming,
    IQDeltaClient,
    IQInvalidateClient,
    IQRefreshClient,
    KeyChange,
)
from repro.core.session import AcquisitionMode
from repro.kvs.read_lease import ReadLeaseStore
from repro.util.backoff import NoBackoff


@pytest.fixture
def iq_client(iq):
    return IQClient(iq, backoff=NoBackoff(max_attempts=1000))


def increment_refresher(old):
    if old is None:
        return None
    return str(int(old) + 1).encode()


def score_body(session):
    session.execute("UPDATE users SET score = score + 1 WHERE id = 1")
    return "done"


class TestIQInvalidateClient:
    @pytest.mark.parametrize(
        "mode", [AcquisitionMode.PRIOR, AcquisitionMode.DURING]
    )
    def test_write_deletes_keys(self, iq, iq_client, users_db, mode):
        iq.store.set("Profile1", b"cached")
        client = IQInvalidateClient(
            iq_client, users_db.connect, mode=mode, backoff=NoBackoff()
        )
        outcome = client.write(score_body, [KeyChange("Profile1")])
        assert outcome.result == "done"
        assert iq.store.get("Profile1") is None
        fresh = users_db.connect()
        assert fresh.query_scalar("SELECT score FROM users WHERE id = 1") == 11

    def test_read_through(self, iq, iq_client, users_db):
        client = IQInvalidateClient(iq_client, users_db.connect)
        assert client.read("k", lambda: b"v") == b"v"
        assert client.is_strongly_consistent

    def test_missing_key_still_fine(self, iq, iq_client, users_db):
        client = IQInvalidateClient(iq_client, users_db.connect)
        outcome = client.write(score_body, [KeyChange("NeverCached")])
        assert outcome.restarts == 0


class TestIQRefreshClient:
    @pytest.mark.parametrize(
        "mode", [AcquisitionMode.PRIOR, AcquisitionMode.DURING]
    )
    def test_write_refreshes_value(self, iq, iq_client, users_db, mode):
        iq.store.set("Score1", b"10")
        client = IQRefreshClient(
            iq_client, users_db.connect, mode=mode, backoff=NoBackoff()
        )
        client.write(
            score_body, [KeyChange("Score1", refresher=increment_refresher)]
        )
        assert iq.store.get("Score1") == (b"11", 0)

    def test_skip_on_miss(self, iq, iq_client, users_db):
        client = IQRefreshClient(iq_client, users_db.connect)
        client.write(
            score_body, [KeyChange("Absent", refresher=increment_refresher)]
        )
        assert iq.store.get("Absent") is None
        # The Q lease must have been released.
        iq.qaread("Absent", iq.gen_id())

    def test_conflicting_sessions_serialize(self, iq, iq_client, users_db):
        """Two refresh sessions on the same key: the loser aborts and
        retries, and the final KVS value reflects both increments."""
        iq.store.set("Score1", b"10")
        client = IQRefreshClient(
            iq_client, users_db.connect, backoff=NoBackoff(max_attempts=100)
        )
        blocker = iq.gen_id()
        iq.qaread("Score1", blocker)
        state = {"attempts": 0}

        def body(session):
            state["attempts"] += 1
            if state["attempts"] == 2:
                # Mid-retry, the blocker finishes its own increment.
                iq.sar("Score1", b"11", blocker)
            return score_body(session)

        outcome = client.write(
            body, [KeyChange("Score1", refresher=increment_refresher)]
        )
        assert outcome.restarts >= 1
        assert iq.store.get("Score1") == (b"12", 0)


class TestIQDeltaClient:
    @pytest.mark.parametrize(
        "mode", [AcquisitionMode.PRIOR, AcquisitionMode.DURING]
    )
    def test_write_applies_deltas(self, iq, iq_client, users_db, mode):
        iq.store.set("List1", b"a,")
        client = IQDeltaClient(
            iq_client, users_db.connect, mode=mode, backoff=NoBackoff()
        )
        client.write(
            score_body, [KeyChange("List1", deltas=[("append", b"b,")])]
        )
        assert iq.store.get("List1") == (b"a,b,", 0)

    def test_invalidate_flagged_keys_deleted(self, iq, iq_client, users_db):
        iq.store.set("List1", b"a,")
        client = IQDeltaClient(iq_client, users_db.connect)
        client.write(score_body, [KeyChange("List1", invalidate=True)])
        assert iq.store.get("List1") is None

    def test_mixed_delta_and_invalidate(self, iq, iq_client, users_db):
        iq.store.set("Count1", b"5")
        iq.store.set("List1", b"a,")
        client = IQDeltaClient(iq_client, users_db.connect)
        client.write(
            score_body,
            [
                KeyChange("Count1", deltas=[("incr", 1)]),
                KeyChange("List1", invalidate=True),
            ],
        )
        assert iq.store.get("Count1") == (b"6", 0)
        assert iq.store.get("List1") is None


class TestBaselineClients:
    def test_invalidate_during_transaction(self, users_db):
        store = ReadLeaseStore()
        store.set("Profile1", b"cached")
        client = BaselineInvalidateClient(
            store, users_db.connect,
            timing=DeleteTiming.DURING_TRANSACTION,
        )
        outcome = client.write(score_body, [KeyChange("Profile1")])
        assert outcome.result == "done"
        assert store.get("Profile1") is None
        assert not client.is_strongly_consistent

    def test_invalidate_after_commit(self, users_db):
        store = ReadLeaseStore()
        store.set("Profile1", b"cached")
        client = BaselineInvalidateClient(
            store, users_db.connect, timing=DeleteTiming.AFTER_COMMIT
        )
        client.write(score_body, [KeyChange("Profile1")])
        assert store.get("Profile1") is None

    def test_invalidate_rolls_back_on_error(self, users_db):
        store = ReadLeaseStore()
        client = BaselineInvalidateClient(store, users_db.connect)

        def bad_body(session):
            session.execute("UPDATE users SET score = 0 WHERE id = 1")
            raise RuntimeError("constraint violation")

        with pytest.raises(RuntimeError):
            client.write(bad_body, [KeyChange("Profile1")])
        fresh = users_db.connect()
        assert fresh.query_scalar("SELECT score FROM users WHERE id = 1") == 10

    def test_refresh_cas_loop(self, users_db):
        store = ReadLeaseStore()
        store.set("Score1", b"10")
        client = BaselineRefreshClient(store, users_db.connect)
        client.write(
            score_body, [KeyChange("Score1", refresher=increment_refresher)]
        )
        assert store.get("Score1") == (b"11", 0)

    def test_refresh_skips_missing(self, users_db):
        store = ReadLeaseStore()
        client = BaselineRefreshClient(store, users_db.connect)
        client.write(
            score_body, [KeyChange("Absent", refresher=increment_refresher)]
        )
        assert store.get("Absent") is None

    def test_delta_direct_application(self, users_db):
        store = ReadLeaseStore()
        store.set("List1", b"a,")
        store.set("Count1", b"5")
        client = BaselineDeltaClient(store, users_db.connect)
        client.write(
            score_body,
            [
                KeyChange("List1", deltas=[("append", b"b,")]),
                KeyChange("Count1", deltas=[("incr", 2), ("decr", 1)]),
            ],
        )
        assert store.get("List1") == (b"a,b,", 0)
        assert store.get("Count1") == (b"6", 0)

    def test_delta_invalidate_flag(self, users_db):
        store = ReadLeaseStore()
        store.set("List1", b"a,")
        client = BaselineDeltaClient(store, users_db.connect)
        client.write(score_body, [KeyChange("List1", invalidate=True)])
        assert store.get("List1") is None

    def test_baseline_read_uses_read_lease(self, users_db):
        store = ReadLeaseStore()
        client = BaselineInvalidateClient(store, users_db.connect)
        assert client.read("k", lambda: b"computed") == b"computed"
        assert store.get("k") == (b"computed", 0)
