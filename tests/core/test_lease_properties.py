"""Property-based invariants of the lease table (hypothesis stateful)."""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.config import LeaseConfig
from repro.core.leases import LeaseTable, QMode, QRequestOutcome
from repro.util.clock import LogicalClock

KEYS = ["k1", "k2", "k3"]
SESSIONS = [1, 2, 3, 4]


class LeaseMachine(RuleBasedStateMachine):
    """Model-checked lease table.

    The model tracks, per key, the set of Q holders with their modes and
    whether an I lease is live, and asserts the Figure 5 matrices hold
    for every operation sequence hypothesis generates.
    """

    def __init__(self):
        super().__init__()
        self.clock = LogicalClock()
        self.table = LeaseTable(
            LeaseConfig(i_lease_ttl=1e9, q_lease_ttl=1e9), self.clock
        )
        self.model_i = {}      # key -> token
        self.model_q = {}      # key -> (mode, set of sessions)

    @rule(key=st.sampled_from(KEYS))
    def request_i(self, key):
        token = self.table.request_i(key)
        has_q = key in self.model_q and self.model_q[key][1]
        if key in self.model_i or has_q:
            assert token is None, "I granted despite existing lease"
        else:
            assert token is not None
            self.model_i[key] = token

    @rule(key=st.sampled_from(KEYS), session=st.sampled_from(SESSIONS),
          mode=st.sampled_from([QMode.SHARED_INVALIDATE, QMode.EXCLUSIVE]))
    def request_q(self, key, session, mode):
        outcome = self.table.request_q(key, session, mode)
        current = self.model_q.get(key)
        if current is None or not current[1]:
            assert outcome is QRequestOutcome.GRANTED
            self.model_q[key] = (mode, {session})
            self.model_i.pop(key, None)
            return
        current_mode, holders = current
        if session in holders:
            assert outcome is QRequestOutcome.GRANTED
            return
        compatible = (
            current_mode is QMode.SHARED_INVALIDATE
            and mode is QMode.SHARED_INVALIDATE
        )
        if compatible:
            assert outcome is QRequestOutcome.GRANTED
            holders.add(session)
            self.model_i.pop(key, None)
        else:
            assert outcome is QRequestOutcome.REJECTED

    @rule(key=st.sampled_from(KEYS), session=st.sampled_from(SESSIONS))
    def release_q(self, key, session):
        released = self.table.release_q(key, session)
        current = self.model_q.get(key)
        if current and session in current[1]:
            assert released
            current[1].discard(session)
            if not current[1]:
                del self.model_q[key]
        else:
            assert not released

    @rule(key=st.sampled_from(KEYS))
    def void_i(self, key):
        self.table.void_i(key)
        self.model_i.pop(key, None)

    @rule(key=st.sampled_from(KEYS))
    def redeem_i(self, key):
        token = self.model_i.get(key)
        if token is not None:
            assert self.table.redeem_i(key, token)
            del self.model_i[key]
        else:
            assert not self.table.redeem_i(key, 10 ** 9)

    @invariant()
    def leases_match_model(self):
        for key in KEYS:
            has_i, holders = self.table.leases_on(key)
            assert has_i == (key in self.model_i)
            model_holders = (
                self.model_q[key][1] if key in self.model_q else set()
            )
            assert holders == frozenset(model_holders)

    @invariant()
    def i_and_q_never_coexist(self):
        """A granted Q always voids the I lease (core paper invariant)."""
        for key in KEYS:
            has_i, holders = self.table.leases_on(key)
            assert not (has_i and holders)

    @invariant()
    def exclusive_q_is_single_holder(self):
        for key, (mode, holders) in self.model_q.items():
            if mode is QMode.EXCLUSIVE:
                assert len(holders) <= 1


LeaseMachineTest = LeaseMachine.TestCase
LeaseMachineTest.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
