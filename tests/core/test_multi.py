"""Multi-transaction sessions (the Section 8 future-work extension)."""

import pytest

from repro.core.iq_client import IQClient
from repro.core.multi import (
    CompensationError,
    MultiSessionRunner,
    MultiTransactionSession,
)
from repro.errors import QuarantinedError, SessionAbortedError
from repro.util.backoff import NoBackoff


@pytest.fixture
def client(iq):
    return IQClient(iq, backoff=NoBackoff())


@pytest.fixture
def bank_db(db):
    connection = db.connect()
    connection.execute(
        "CREATE TABLE accounts (id INTEGER PRIMARY KEY, balance INTEGER)"
    )
    connection.execute(
        "INSERT INTO accounts (id, balance) VALUES (1, 100), (2, 50)"
    )
    connection.close()
    return db


def balance(db, account):
    connection = db.connect()
    try:
        return connection.query_scalar(
            "SELECT balance FROM accounts WHERE id = ?", (account,)
        )
    finally:
        connection.close()


class TestHappyPath:
    def test_two_transactions_one_session(self, client, bank_db, iq):
        iq.store.set("acct:1", b"100")
        iq.store.set("acct:2", b"50")
        session = MultiTransactionSession(client, bank_db.connect)
        old1 = session.qaread("acct:1")
        old2 = session.qaread("acct:2")

        with session.transaction() as txn:
            txn.execute(
                "UPDATE accounts SET balance = balance - 10 WHERE id = 1"
            )
        with session.transaction() as txn:
            txn.execute(
                "UPDATE accounts SET balance = balance + 10 WHERE id = 2"
            )

        session.sar_at_commit("acct:1", str(int(old1) - 10).encode())
        session.sar_at_commit("acct:2", str(int(old2) + 10).encode())
        session.commit()

        assert balance(bank_db, 1) == 90
        assert balance(bank_db, 2) == 60
        assert iq.store.get("acct:1") == (b"90", 0)
        assert iq.store.get("acct:2") == (b"60", 0)

    def test_leases_held_across_transactions(self, client, bank_db, iq):
        session = MultiTransactionSession(client, bank_db.connect)
        session.qaread("acct:1")
        with session.transaction() as txn:
            txn.execute("UPDATE accounts SET balance = 0 WHERE id = 1")
        # Between constituent transactions the key stays quarantined.
        with pytest.raises(QuarantinedError):
            iq.qaread("acct:1", iq.gen_id())
        session.commit()
        iq.qaread("acct:1", iq.gen_id())

    def test_invalidate_and_delta_mix(self, client, bank_db, iq):
        iq.store.set("acct:1", b"100")
        iq.store.set("total", b"150")
        session = MultiTransactionSession(client, bank_db.connect)
        session.qar("acct:1")
        session.delta("total", "decr", 10)
        with session.transaction() as txn:
            txn.execute(
                "UPDATE accounts SET balance = balance - 10 WHERE id = 1"
            )
        session.commit()
        assert iq.store.get("acct:1") is None
        assert iq.store.get("total") == (b"140", 0)


class TestAbortAndCompensation:
    def test_abort_compensates_committed_steps(self, client, bank_db, iq):
        iq.store.set("acct:1", b"100")
        session = MultiTransactionSession(client, bank_db.connect)
        session.qaread("acct:1")

        def undo(connection):
            connection.execute(
                "UPDATE accounts SET balance = balance + 10 WHERE id = 1"
            )

        with session.transaction(undo=undo) as txn:
            txn.execute(
                "UPDATE accounts SET balance = balance - 10 WHERE id = 1"
            )
        assert balance(bank_db, 1) == 90  # committed
        session.abort()
        assert balance(bank_db, 1) == 100  # compensated
        # KVS untouched; lease released.
        assert iq.store.get("acct:1") == (b"100", 0)
        iq.qaread("acct:1", iq.gen_id())

    def test_compensations_run_newest_first(self, client, bank_db):
        order = []
        session = MultiTransactionSession(client, bank_db.connect)
        for step in (1, 2):
            def undo(connection, step=step):
                order.append(step)

            with session.transaction(undo=undo, description=str(step)) as txn:
                txn.execute(
                    "UPDATE accounts SET balance = balance - 1 WHERE id = 1"
                )
        session.abort()
        assert order == [2, 1]

    def test_lease_conflict_mid_session_aborts_whole_session(
        self, client, bank_db, iq
    ):
        blocker = iq.gen_id()
        iq.qaread("acct:2", blocker)
        session = MultiTransactionSession(client, bank_db.connect)
        session.qaread("acct:1")

        def undo(connection):
            connection.execute(
                "UPDATE accounts SET balance = balance + 10 WHERE id = 1"
            )

        with session.transaction(undo=undo) as txn:
            txn.execute(
                "UPDATE accounts SET balance = balance - 10 WHERE id = 1"
            )
        with pytest.raises(QuarantinedError):
            session.qaread("acct:2")
        assert balance(bank_db, 1) == 100  # first step compensated
        iq.qaread("acct:1", iq.gen_id())   # leases released

    def test_missing_undo_deletes_keys_for_safety(self, client, bank_db, iq):
        iq.store.set("acct:1", b"100")
        session = MultiTransactionSession(client, bank_db.connect)
        session.qaread("acct:1")
        with session.transaction() as txn:  # no undo registered
            txn.execute("UPDATE accounts SET balance = 0 WHERE id = 1")
        with pytest.raises(CompensationError):
            session.abort()
        # Safety via deletion: the possibly-inconsistent key is gone.
        assert iq.store.get("acct:1") is None

    def test_session_unusable_after_finish(self, client, bank_db):
        session = MultiTransactionSession(client, bank_db.connect)
        session.commit()
        with pytest.raises(SessionAbortedError):
            session.qar("k")

    def test_sar_without_lease_rejected(self, client, bank_db):
        session = MultiTransactionSession(client, bank_db.connect)
        with pytest.raises(SessionAbortedError):
            session.sar_at_commit("nope", b"v")


class TestRunner:
    def test_retries_until_lease_free(self, client, bank_db, iq, clock):
        blocker = iq.gen_id()
        iq.qaread("acct:1", blocker)
        attempts = []
        runner = MultiSessionRunner(
            client, bank_db.connect, backoff=NoBackoff(max_attempts=10),
            clock=clock,
        )

        def body(session):
            attempts.append(1)
            if len(attempts) == 2:
                iq.sar("acct:1", None, blocker)
            old = session.qaread("acct:1")
            with session.transaction() as txn:
                txn.execute(
                    "UPDATE accounts SET balance = balance - 1 WHERE id = 1"
                )
            if old is not None:
                session.sar_at_commit(
                    "acct:1", str(int(old) - 1).encode()
                )
            return "moved"

        assert runner.run(body) == "moved"
        assert len(attempts) == 2
        assert balance(bank_db, 1) == 99


class TestNoStaleDataExhaustive:
    def test_reader_vs_two_transaction_writer(self, clock):
        """Enumerate reader/two-txn-writer interleavings: never stale."""
        from repro.core.iq_server import IQServer
        from repro.sim.scheduler import (
            Interleaver, Program, all_interleavings,
        )
        from repro.sql.engine import Database

        def run_once(schedule):
            db = Database()
            setup = db.connect()
            setup.execute(
                "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)"
            )
            setup.execute("INSERT INTO t (id, v) VALUES (1, 0)")
            setup.close()
            server = IQServer()
            server.store.set("k", b"0")
            iq_client = IQClient(server, backoff=NoBackoff())

            def writer():
                session = MultiTransactionSession(iq_client, db.connect)
                old = session.qaread("k")
                yield "w:qaread"
                with session.transaction() as txn:
                    txn.execute("UPDATE t SET v = v + 1 WHERE id = 1")
                yield "w:txn1"
                with session.transaction() as txn:
                    txn.execute("UPDATE t SET v = v + 1 WHERE id = 1")
                yield "w:txn2"
                session.sar_at_commit("k", str(int(old) + 2).encode())
                session.commit()
                yield "w:commit"

            def reader():
                for _ in range(20):
                    result = server.iq_get("k")
                    if result.is_hit:
                        return int(result.value)
                    if result.backoff:
                        yield "r:backoff"
                        continue
                    yield "r:lease"
                    connection = db.connect()
                    value = connection.query_scalar(
                        "SELECT v FROM t WHERE id = 1"
                    )
                    connection.close()
                    yield "r:query"
                    server.iq_set("k", str(value).encode(), result.token)
                    yield "r:set"
                    return value
                raise AssertionError("no convergence")

            interleaver = Interleaver(
                [Program("W", writer), Program("R", reader)]
            )
            interleaver.run(schedule, finish_remaining=True, strict=False)
            cached = server.store.get("k")
            connection = db.connect()
            final = connection.query_scalar("SELECT v FROM t WHERE id = 1")
            connection.close()
            return final, None if cached is None else int(cached[0])

        for schedule in all_interleavings({"W": 4, "R": 5}):
            final, cached = run_once(schedule)
            assert final == 2
            assert cached in (None, 2), (schedule, cached)
