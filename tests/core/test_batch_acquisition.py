"""Batched Q-lease acquisition in the consistency clients (PR 5).

The growing phase collapses a known write-set into one ``qareg`` when
the backend allows.  The contract: semantics are *identical* to the
per-key loop -- an ``"abort"`` restarts the session (Fig. 5a/5b
unchanged), an ``"unavailable"`` key degrades individually and is
journaled only after ``commit_sql``, and a backend that cannot run the
batch at all silently falls back to sequential ``QaR``.
"""

import pytest

from repro.core.iq_client import IQClient
from repro.core.iq_server import IQServer
from repro.core.policies import (
    IQDeltaClient,
    IQInvalidateClient,
    IQRefreshClient,
    KeyChange,
)
from repro.core.session import AcquisitionMode
from repro.errors import CacheUnavailableError
from repro.util.backoff import NoBackoff


class ScriptedBatch:
    """An IQServer whose next ``qar_many`` calls are scripted.

    Each entry in :attr:`script` is a callable ``(server, tid, keys) ->
    status dict`` consumed once, in order; with an empty script the real
    ``qar_many`` runs.  Everything else passes straight through, so the
    sequential fallback path exercises the genuine server.
    """

    def __init__(self):
        self.server = IQServer()
        self.script = []
        self.batch_calls = 0

    def __getattr__(self, name):
        return getattr(self.server, name)

    def qar_many(self, tid, keys):
        self.batch_calls += 1
        if self.script:
            action = self.script.pop(0)
            return action(self.server, tid, keys)
        return self.server.qar_many(tid, keys)


def abort_on(victim):
    """Grant for real until ``victim``, then report the reject."""

    def action(server, tid, keys):
        results = {}
        for key in keys:
            if key == victim:
                results[key] = "abort"
                break
            server.qar(tid, key)
            results[key] = "granted"
        return results

    return action


def unavailable_on(victim):
    """One key's shard is away; the rest acquire for real."""

    def action(server, tid, keys):
        results = {}
        for key in keys:
            if key == victim:
                results[key] = "unavailable"
                continue
            server.qar(tid, key)
            results[key] = "granted"
        return results

    return action


def whole_backend_down(server, tid, keys):
    raise CacheUnavailableError("no shard reachable")


def make_client(cls, backend, users_db, **kwargs):
    client = IQClient(backend, backoff=NoBackoff(max_attempts=100))
    return cls(client, users_db.connect, backoff=NoBackoff(), **kwargs)


def score_body(session):
    session.execute("UPDATE users SET score = score + 1 WHERE id = 1")
    return "done"


@pytest.fixture
def backend():
    return ScriptedBatch()


class TestBatchedGrowingPhase:
    @pytest.mark.parametrize(
        "mode", [AcquisitionMode.PRIOR, AcquisitionMode.DURING]
    )
    def test_multi_key_write_uses_one_batch(self, backend, users_db, mode):
        policy = make_client(IQInvalidateClient, backend, users_db,
                             mode=mode)
        for key in ("a", "b", "c"):
            backend.store.set(key, b"cached")
        outcome = policy.write(
            score_body, [KeyChange(k) for k in ("a", "b", "c")]
        )
        assert outcome.result == "done"
        assert backend.batch_calls == 1
        assert backend.stats.get("batched_qar_grants") == 3
        for key in ("a", "b", "c"):
            assert backend.store.get(key) is None
        assert backend.session_count() == 0

    def test_single_key_write_stays_per_key(self, backend, users_db):
        policy = make_client(IQInvalidateClient, backend, users_db)
        backend.store.set("only", b"cached")
        policy.write(score_body, [KeyChange("only")])
        assert backend.batch_calls == 0
        assert backend.store.get("only") is None

    def test_batch_leases_false_disables_batching(self, backend, users_db):
        policy = make_client(IQInvalidateClient, backend, users_db,
                             batch_leases=False)
        policy.write(score_body, [KeyChange("a"), KeyChange("b")])
        assert backend.batch_calls == 0
        assert backend.stats.get("q_lease_grants") == 2  # sequential QaR

    def test_abort_in_batch_restarts_the_session(self, backend, users_db):
        policy = make_client(IQInvalidateClient, backend, users_db)
        backend.script.append(abort_on("b"))
        for key in ("a", "b"):
            backend.store.set(key, b"cached")
        outcome = policy.write(
            score_body, [KeyChange("a"), KeyChange("b")]
        )
        # First attempt: "a" granted, "b" rejected -> QuarantinedError,
        # SQL rolled back, leases released, session restarted.  Second
        # attempt runs the real (clean) batch and commits.
        assert outcome.restarts == 1
        assert outcome.result == "done"
        assert backend.batch_calls == 2
        assert backend.store.get("a") is None
        assert backend.store.get("b") is None
        assert backend.session_count() == 0
        # The RDBMS applied the transaction exactly once.
        fresh = users_db.connect()
        assert fresh.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 11

    def test_unavailable_key_degrades_individually(self, backend, users_db):
        policy = make_client(IQInvalidateClient, backend, users_db)
        backend.script.append(unavailable_on("down"))
        backend.store.set("up", b"cached")
        backend.store.set("down", b"stale-after-commit")
        outcome = policy.write(
            score_body, [KeyChange("up"), KeyChange("down")]
        )
        assert outcome.result == "done"
        assert outcome.restarts == 0
        # The healthy key was invalidated through its lease; the
        # degraded key was journaled (after commit_sql) for delete-on-
        # recover reconciliation and counted.
        assert backend.store.get("up") is None
        assert policy.degraded_key_changes == 1
        assert policy.degraded_keys == {"down"}

    def test_unavailable_without_fallback_degrades_whole_write(
        self, backend, users_db
    ):
        policy = make_client(IQInvalidateClient, backend, users_db,
                             degraded_fallback=False)
        backend.script.append(unavailable_on("down"))
        from repro.errors import DegradedModeActive

        with pytest.raises(DegradedModeActive):
            policy.write(
                score_body, [KeyChange("up"), KeyChange("down")]
            )

    def test_whole_backend_failure_falls_back_to_per_key(
        self, backend, users_db
    ):
        policy = make_client(IQInvalidateClient, backend, users_db)
        backend.script.append(whole_backend_down)
        for key in ("a", "b"):
            backend.store.set(key, b"cached")
        outcome = policy.write(
            score_body, [KeyChange("a"), KeyChange("b")]
        )
        assert outcome.result == "done"
        # The batch path was tried once, failed, and the per-key loop
        # took over in the same attempt -- no restart, real grants.
        assert outcome.restarts == 0
        assert backend.batch_calls == 1
        assert backend.stats.get("q_lease_grants") == 2
        assert backend.store.get("a") is None
        assert backend.store.get("b") is None


class TestRefreshAndDeltaSubsets:
    def test_refresh_batches_only_the_invalidation_subset(
        self, backend, users_db
    ):
        policy = make_client(IQRefreshClient, backend, users_db,
                             mode=AcquisitionMode.PRIOR)
        backend.store.set("inv1", b"x")
        backend.store.set("inv2", b"y")
        backend.store.set("score", b"10")
        changes = [
            KeyChange("inv1", invalidate=True),
            KeyChange("inv2"),  # no refresher: treated as invalidation
            KeyChange("score",
                      refresher=lambda old: str(int(old) + 1).encode()),
        ]
        policy.write(score_body, changes)
        # One batch for the two invalidations; the exclusive QaRead leg
        # stays per-key (it needs the old value back).
        assert backend.batch_calls == 1
        assert backend.stats.get("batched_qar_grants") == 2
        assert backend.store.get("inv1") is None
        assert backend.store.get("inv2") is None
        assert backend.store.get("score") == (b"11", 0)

    def test_delta_batches_only_the_invalidation_subset(
        self, backend, users_db
    ):
        policy = make_client(IQDeltaClient, backend, users_db,
                             mode=AcquisitionMode.PRIOR)
        backend.store.set("inv1", b"x")
        backend.store.set("inv2", b"y")
        backend.store.set("count", b"10")
        changes = [
            KeyChange("inv1", invalidate=True),
            KeyChange("inv2", invalidate=True),
            KeyChange("count", deltas=[("incr", 5)]),
        ]
        policy.write(score_body, changes)
        assert backend.batch_calls == 1
        assert backend.stats.get("batched_qar_grants") == 2
        assert backend.store.get("inv1") is None
        assert backend.store.get("inv2") is None
        assert backend.store.get("count") == (b"15", 0)

    def test_lone_invalidation_in_mixed_set_stays_per_key(
        self, backend, users_db
    ):
        policy = make_client(IQDeltaClient, backend, users_db,
                             mode=AcquisitionMode.PRIOR)
        backend.store.set("count", b"1")
        changes = [
            KeyChange("inv", invalidate=True),
            KeyChange("count", deltas=[("incr", 1)]),
        ]
        policy.write(score_body, changes)
        assert backend.batch_calls == 0  # one invalidation: no batch
        assert backend.store.get("count") == (b"2", 0)
