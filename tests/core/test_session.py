"""Write sessions and the SessionRunner retry machinery."""

import pytest

from repro.core.iq_client import IQClient
from repro.core.session import SessionRunner, WriteSession
from repro.errors import (
    QuarantinedError,
    SessionAbortedError,
    StarvationError,
    TransactionAbortedError,
)
from repro.util.backoff import NoBackoff


@pytest.fixture
def client(iq):
    return IQClient(iq, backoff=NoBackoff())


@pytest.fixture
def runner(client, users_db, clock):
    return SessionRunner(
        client, users_db.connect, backoff=NoBackoff(max_attempts=100),
        clock=clock,
    )


class TestWriteSession:
    def test_full_invalidate_session(self, client, users_db, iq):
        iq.store.set("Profile1", b"cached")
        session = WriteSession(client, users_db.connect())
        session.qar("Profile1")
        session.begin_sql()
        session.execute("UPDATE users SET score = 0 WHERE id = 1")
        session.commit_sql()
        session.dar()
        assert iq.store.get("Profile1") is None

    def test_full_refresh_session(self, client, users_db, iq):
        iq.store.set("Profile1", b"10")
        session = WriteSession(client, users_db.connect())
        old = session.qaread("Profile1").value
        session.begin_sql()
        session.execute("UPDATE users SET score = score + 1 WHERE id = 1")
        session.commit_sql()
        session.sar("Profile1", str(int(old) + 1).encode())
        assert iq.store.get("Profile1") == (b"11", 0)

    def test_abandon_releases_everything(self, client, users_db, iq):
        session = WriteSession(client, users_db.connect())
        session.qaread("k")
        session.begin_sql()
        session.execute("UPDATE users SET score = 0 WHERE id = 1")
        session.abandon()
        # Q lease released:
        iq.qaread("k", iq.gen_id())
        # RDBMS change rolled back:
        fresh = users_db.connect()
        assert fresh.query_scalar("SELECT score FROM users WHERE id = 1") == 10

    def test_own_update_visibility(self, client, users_db, iq):
        iq.store.set("k", b"old")
        session = WriteSession(client, users_db.connect())
        session.qaread("k")
        session.propose_refresh("k", b"new")
        assert session.iq_get("k").value == b"new"
        assert iq.iq_get("k").value == b"old"


class TestSessionRunner:
    def test_success_first_try(self, runner):
        def body(session):
            session.begin_sql()
            session.execute("UPDATE users SET score = 1 WHERE id = 1")
            session.commit_sql()
            session.commit_kvs()
            return "done"

        outcome = runner.run(body)
        assert outcome.result == "done"
        assert outcome.restarts == 0

    def test_retries_on_quarantine(self, runner, iq):
        blocker = iq.gen_id()
        iq.qaread("hot", blocker)
        attempts = []

        def body(session):
            attempts.append(1)
            if len(attempts) == 3:
                iq.sar("hot", None, blocker)  # blocker finishes
            session.qaread("hot")
            session.sar("hot", b"v")
            return "ok"

        outcome = runner.run(body)
        assert outcome.result == "ok"
        assert outcome.restarts == 2

    def test_retries_on_rdbms_conflict(self, runner, users_db):
        competitor = users_db.connect()
        competitor.begin()
        competitor.execute("UPDATE users SET score = 5 WHERE id = 1")
        attempts = []

        def body(session):
            attempts.append(1)
            if len(attempts) == 2:
                competitor.commit()
            session.begin_sql()
            session.execute("UPDATE users SET score = 9 WHERE id = 1")
            session.commit_sql()
            session.commit_kvs()
            return "ok"

        outcome = runner.run(body)
        assert outcome.result == "ok"
        assert outcome.restarts >= 1

    def test_starvation_after_max_attempts(self, client, users_db, iq, clock):
        runner = SessionRunner(
            client, users_db.connect, backoff=NoBackoff(max_attempts=3),
            clock=clock,
        )
        iq.qaread("hot", iq.gen_id())  # never released

        def body(session):
            session.qaread("hot")
            return "unreachable"

        with pytest.raises(StarvationError):
            runner.run(body)

    def test_cleanup_on_retry(self, runner, users_db, iq):
        """Each failed attempt must release its leases and roll back."""
        attempts = []

        def body(session):
            attempts.append(session.tid)
            session.qaread("a")
            session.begin_sql()
            session.execute("UPDATE users SET score = 99 WHERE id = 1")
            if len(attempts) < 3:
                raise QuarantinedError("b")
            session.commit_sql()
            session.sar("a", b"done")
            return "ok"

        outcome = runner.run(body)
        assert outcome.restarts == 2
        assert len(set(attempts)) == 3  # fresh TID per attempt
        fresh = users_db.connect()
        assert fresh.query_scalar("SELECT score FROM users WHERE id = 1") == 99

    def test_non_retriable_error_propagates(self, runner, iq):
        def body(session):
            session.qaread("k")
            raise ValueError("boom")

        with pytest.raises(ValueError):
            runner.run(body)
        # Lease still released by cleanup:
        iq.qaread("k", iq.gen_id())

    def test_session_aborted_error_propagates(self, runner):
        def body(session):
            raise SessionAbortedError("fatal", retriable=False)

        with pytest.raises(SessionAbortedError):
            runner.run(body)
