"""IQ-Server command semantics (Section 5 of the paper)."""

import pytest

from repro.config import LeaseConfig
from repro.core.iq_server import IQServer, apply_delta
from repro.errors import BadValueError, QuarantinedError
from repro.util.clock import LogicalClock


class TestIQGetSet:
    def test_hit(self, iq):
        iq.store.set("k", b"v")
        result = iq.iq_get("k")
        assert result.is_hit and result.value == b"v"

    def test_miss_grants_i_lease(self, iq):
        result = iq.iq_get("k")
        assert not result.is_hit and result.has_lease

    def test_concurrent_miss_backs_off(self, iq):
        iq.iq_get("k")
        second = iq.iq_get("k")
        assert second.backoff and not second.has_lease

    def test_iqset_with_valid_token(self, iq):
        result = iq.iq_get("k")
        assert iq.iq_set("k", b"v", result.token)
        assert iq.iq_get("k").value == b"v"

    def test_iqset_with_stale_token_ignored(self, iq):
        result = iq.iq_get("k")
        tid = iq.gen_id()
        iq.qar(tid, "k")  # voids the I lease
        assert not iq.iq_set("k", b"stale", result.token)
        assert iq.stats.get("ignored_sets") == 1

    def test_release_i_frees_key(self, iq):
        result = iq.iq_get("k")
        iq.release_i("k", result.token)
        assert iq.iq_get("k").has_lease


class TestInvalidate:
    def test_qar_then_dar_deletes(self, iq):
        iq.store.set("k", b"v")
        tid = iq.gen_id()
        iq.qar(tid, "k")
        assert iq.store.get("k") is not None  # deferred delete (S3.3)
        iq.dar(tid)
        assert iq.store.get("k") is None

    def test_deferred_delete_serves_old_version(self, iq):
        iq.store.set("k", b"old")
        tid = iq.gen_id()
        iq.qar(tid, "k")
        assert iq.iq_get("k").value == b"old"

    def test_writer_observes_own_miss(self, iq):
        """Section 3.3: the invalidating session must see a miss on its
        own key so it re-queries the RDBMS."""
        iq.store.set("k", b"old")
        tid = iq.gen_id()
        iq.qar(tid, "k")
        own = iq.iq_get("k", session=tid)
        assert not own.is_hit and not own.has_lease and not own.backoff

    def test_eager_delete_when_optimization_off(self, clock):
        iq = IQServer(
            lease_config=LeaseConfig(serve_pending_versions=False),
            clock=clock,
        )
        iq.store.set("k", b"old")
        tid = iq.gen_id()
        iq.qar(tid, "k")
        assert iq.store.get("k") is None
        assert iq.iq_get("k").backoff  # I lease blocked by Q

    def test_multiple_invalidate_sessions_coexist(self, iq):
        iq.store.set("k", b"v")
        tid1, tid2 = iq.gen_id(), iq.gen_id()
        iq.qar(tid1, "k")
        iq.qar(tid2, "k")  # idempotent deletes: both granted
        iq.dar(tid1)
        assert iq.store.get("k") is None
        iq.dar(tid2)

    def test_i_lease_blocked_until_dar(self, iq):
        tid = iq.gen_id()
        iq.qar(tid, "k")
        assert iq.iq_get("k").backoff
        iq.dar(tid)
        assert iq.iq_get("k").has_lease


class TestRefresh:
    def test_qaread_returns_value_and_quarantines(self, iq):
        iq.store.set("k", b"10")
        tid = iq.gen_id()
        result = iq.qaread("k", tid)
        assert result.value == b"10"
        other = iq.gen_id()
        with pytest.raises(QuarantinedError):
            iq.qaread("k", other)

    def test_qaread_miss_still_quarantines(self, iq):
        tid = iq.gen_id()
        result = iq.qaread("k", tid)
        assert result.is_miss
        with pytest.raises(QuarantinedError):
            iq.qaread("k", iq.gen_id())

    def test_sar_swaps_and_releases(self, iq):
        iq.store.set("k", b"10")
        tid = iq.gen_id()
        iq.qaread("k", tid)
        assert iq.sar("k", b"20", tid)
        assert iq.store.get("k") == (b"20", 0)
        # Lease released: a new session may quarantine.
        iq.qaread("k", iq.gen_id())

    def test_sar_with_null_only_releases(self, iq):
        iq.store.set("k", b"10")
        tid = iq.gen_id()
        iq.qaread("k", tid)
        iq.sar("k", None, tid)
        assert iq.store.get("k") == (b"10", 0)
        iq.qaread("k", iq.gen_id())

    def test_sar_without_lease_ignored(self, iq):
        assert not iq.sar("k", b"v", 12345)
        assert iq.store.get("k") is None

    def test_readers_hit_old_version_during_quarantine(self, iq):
        iq.store.set("k", b"old")
        tid = iq.gen_id()
        iq.qaread("k", tid)
        assert iq.iq_get("k").value == b"old"

    def test_propose_refresh_read_your_own_write(self, iq):
        iq.store.set("k", b"old")
        tid = iq.gen_id()
        iq.qaread("k", tid)
        assert iq.propose_refresh("k", b"new", tid)
        assert iq.iq_get("k", session=tid).value == b"new"
        assert iq.iq_get("k").value == b"old"
        iq.commit(tid)
        assert iq.iq_get("k").value == b"new"

    def test_qaread_voids_i_lease(self, iq):
        reader = iq.iq_get("k")
        tid = iq.gen_id()
        iq.qaread("k", tid)
        assert not iq.iq_set("k", b"stale", reader.token)


class TestDelta:
    def test_delta_applied_at_commit(self, iq):
        iq.store.set("k", b"ab")
        tid = iq.gen_id()
        iq.iq_delta(tid, "k", "append", b"cd")
        assert iq.iq_get("k").value == b"ab"  # not yet applied
        iq.commit(tid)
        assert iq.iq_get("k").value == b"abcd"

    def test_delta_read_your_own_change(self, iq):
        iq.store.set("k", b"ab")
        tid = iq.gen_id()
        iq.iq_delta(tid, "k", "append", b"cd")
        assert iq.iq_get("k", session=tid).value == b"abcd"

    def test_multiple_deltas_compose_in_order(self, iq):
        iq.store.set("k", b"b")
        tid = iq.gen_id()
        iq.iq_delta(tid, "k", "append", b"c")
        iq.iq_delta(tid, "k", "prepend", b"a")
        iq.commit(tid)
        assert iq.iq_get("k").value == b"abc"

    def test_incr_decr_deltas(self, iq):
        iq.store.set("k", b"10")
        tid = iq.gen_id()
        iq.iq_delta(tid, "k", "incr", 5)
        iq.iq_delta(tid, "k", "decr", 2)
        iq.commit(tid)
        assert iq.iq_get("k").value == b"13"

    def test_delta_to_missing_key_is_skipped(self, iq):
        tid = iq.gen_id()
        iq.iq_delta(tid, "k", "append", b"x")
        iq.commit(tid)
        assert iq.store.get("k") is None

    def test_delta_conflict_aborts_requester(self, iq):
        tid = iq.gen_id()
        iq.iq_delta(tid, "k", "append", b"x")
        with pytest.raises(QuarantinedError):
            iq.iq_delta(iq.gen_id(), "k", "append", b"y")

    def test_unknown_op_rejected(self, iq):
        with pytest.raises(BadValueError):
            iq.iq_delta(iq.gen_id(), "k", "reverse", b"")


class TestAbort:
    def test_abort_discards_deltas(self, iq):
        iq.store.set("k", b"ab")
        tid = iq.gen_id()
        iq.iq_delta(tid, "k", "append", b"cd")
        iq.abort(tid)
        assert iq.iq_get("k").value == b"ab"
        iq.qaread("k", iq.gen_id())  # lease released

    def test_abort_keeps_value_for_invalidate(self, iq):
        iq.store.set("k", b"v")
        tid = iq.gen_id()
        iq.qar(tid, "k")
        iq.abort(tid)
        assert iq.iq_get("k").value == b"v"

    def test_abort_unknown_session_is_noop(self, iq):
        iq.abort(99999)


class TestLeaseExpiryFaultTolerance:
    def test_expired_q_deletes_key(self, clock):
        iq = IQServer(
            lease_config=LeaseConfig(q_lease_ttl=5), clock=clock
        )
        iq.store.set("k", b"v")
        tid = iq.gen_id()
        iq.qaread("k", tid)
        clock.advance(6)
        iq.leases.sweep_expired()
        assert iq.store.get("k") is None

    def test_late_sar_after_expiry_ignored(self, clock):
        iq = IQServer(
            lease_config=LeaseConfig(q_lease_ttl=5), clock=clock
        )
        iq.store.set("k", b"v")
        tid = iq.gen_id()
        iq.qaread("k", tid)
        clock.advance(6)
        iq.leases.sweep_expired()
        assert not iq.sar("k", b"late", tid)
        assert iq.store.get("k") is None

    def test_late_commit_after_expiry_applies_nothing(self, clock):
        iq = IQServer(
            lease_config=LeaseConfig(q_lease_ttl=5), clock=clock
        )
        iq.store.set("k", b"ab")
        tid = iq.gen_id()
        iq.iq_delta(tid, "k", "append", b"cd")
        clock.advance(6)
        iq.leases.sweep_expired()
        iq.commit(tid)
        assert iq.store.get("k") is None  # deleted at expiry, delta dropped

    def test_key_usable_after_expiry(self, clock):
        iq = IQServer(
            lease_config=LeaseConfig(q_lease_ttl=5), clock=clock
        )
        tid = iq.gen_id()
        iq.qaread("k", tid)
        clock.advance(6)
        result = iq.iq_get("k")
        assert result.has_lease


class TestApplyDelta:
    def test_append_prepend(self):
        assert apply_delta(b"b", "append", b"c") == b"bc"
        assert apply_delta(b"b", "prepend", b"a") == b"ab"

    def test_incr_decr(self):
        assert apply_delta(b"10", "incr", 5) == b"15"
        assert apply_delta(b"10", "decr", 15) == b"0"
        assert apply_delta(b"10", "incr", b"3") == b"13"

    def test_incr_non_numeric(self):
        with pytest.raises(BadValueError):
            apply_delta(b"abc", "incr", 1)

    def test_unknown_op(self):
        with pytest.raises(BadValueError):
            apply_delta(b"x", "rot13", None)


class TestFlush:
    def test_flush_all_resets_everything(self, iq):
        iq.store.set("k", b"v")
        tid = iq.gen_id()
        iq.qaread("k", tid)
        iq.flush_all()
        assert iq.store.get("k") is None
        assert iq.session_count() == 0
        assert iq.iq_get("k").has_lease

    def test_flush_all_retires_inflight_tids(self, iq):
        """A pre-flush TID cannot re-acquire leases after the flush: the
        zombie session is rejected (retriably) instead of silently
        resurrected under a stale identifier."""
        tid = iq.gen_id()
        iq.qar(tid, "k")
        iq.flush_all()
        with pytest.raises(QuarantinedError):
            iq.qar(tid, "other")
        with pytest.raises(QuarantinedError):
            iq.qaread("other", tid)
        with pytest.raises(QuarantinedError):
            iq.iq_delta(tid, "other", "incr", 1)
        assert iq.session_count() == 0

    def test_fresh_tids_after_flush_work_normally(self, iq):
        stale = iq.gen_id()
        iq.flush_all()
        fresh = iq.gen_id()
        assert fresh > stale
        iq.store.set("k", b"v")
        iq.qar(fresh, "k")
        iq.commit(fresh)
        assert iq.store.get("k") is None

    def test_zombie_terminators_after_flush_are_noops(self, iq):
        tid = iq.gen_id()
        iq.qaread("k", tid)
        iq.flush_all()
        # The flushed session is gone; commit/abort find nothing to do
        # and must not fail or touch post-flush state.
        iq.store.set("k", b"after-flush")
        iq.commit(tid)
        iq.abort(tid)
        assert iq.store.get("k")[0] == b"after-flush"
