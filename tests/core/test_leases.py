"""Lease table semantics: the compatibility matrices of Figure 5."""

import pytest

from repro.config import LeaseConfig
from repro.core.leases import LeaseTable, QMode, QRequestOutcome
from repro.util.clock import LogicalClock


@pytest.fixture
def table(clock):
    return LeaseTable(LeaseConfig(i_lease_ttl=10, q_lease_ttl=10), clock)


class TestILeases:
    def test_single_i_lease_per_key(self, table):
        first = table.request_i("k")
        assert first is not None
        assert table.request_i("k") is None  # Figure 5a: back off

    def test_i_leases_on_distinct_keys_independent(self, table):
        assert table.request_i("a") is not None
        assert table.request_i("b") is not None

    def test_i_valid_checks_token(self, table):
        token = table.request_i("k")
        assert table.i_valid("k", token)
        assert not table.i_valid("k", token + 1)
        assert not table.i_valid("other", token)

    def test_redeem_consumes(self, table):
        token = table.request_i("k")
        assert table.redeem_i("k", token)
        assert not table.i_valid("k", token)
        assert not table.redeem_i("k", token)
        # A new reader may now acquire.
        assert table.request_i("k") is not None

    def test_void_i(self, table):
        token = table.request_i("k")
        table.void_i("k")
        assert not table.i_valid("k", token)


class TestQOverI:
    def test_q_voids_i_always(self, table):
        token = table.request_i("k")
        for mode in (QMode.SHARED_INVALIDATE, QMode.EXCLUSIVE):
            table_mode = LeaseTable(clock=LogicalClock())
            tok = table_mode.request_i("k")
            assert table_mode.request_q("k", 1, mode) is QRequestOutcome.GRANTED
            assert not table_mode.i_valid("k", tok)
        assert table.request_q("k", 1, QMode.EXCLUSIVE) is QRequestOutcome.GRANTED
        assert not table.i_valid("k", token)

    def test_i_request_backs_off_under_q(self, table):
        table.request_q("k", 1, QMode.SHARED_INVALIDATE)
        assert table.request_i("k") is None

    def test_i_available_after_q_release(self, table):
        table.request_q("k", 1, QMode.EXCLUSIVE)
        table.release_q("k", 1)
        assert table.request_i("k") is not None


class TestQQCompatibility:
    def test_invalidate_q_compatible(self, table):
        """Figure 5a: multiple invalidate Q leases coexist."""
        assert table.request_q(
            "k", 1, QMode.SHARED_INVALIDATE
        ) is QRequestOutcome.GRANTED
        assert table.request_q(
            "k", 2, QMode.SHARED_INVALIDATE
        ) is QRequestOutcome.GRANTED
        _has_i, holders = table.leases_on("k")
        assert holders == {1, 2}

    def test_exclusive_q_rejects_second(self, table):
        """Figure 5b: reject and abort requester."""
        assert table.request_q(
            "k", 1, QMode.EXCLUSIVE
        ) is QRequestOutcome.GRANTED
        assert table.request_q(
            "k", 2, QMode.EXCLUSIVE
        ) is QRequestOutcome.REJECTED

    def test_same_session_reacquire_granted(self, table):
        table.request_q("k", 1, QMode.EXCLUSIVE)
        assert table.request_q(
            "k", 1, QMode.EXCLUSIVE
        ) is QRequestOutcome.GRANTED

    def test_mixed_modes_rejected(self, table):
        table.request_q("k", 1, QMode.SHARED_INVALIDATE)
        assert table.request_q(
            "k", 2, QMode.EXCLUSIVE
        ) is QRequestOutcome.REJECTED
        table2 = LeaseTable(clock=LogicalClock())
        table2.request_q("k", 1, QMode.EXCLUSIVE)
        assert table2.request_q(
            "k", 2, QMode.SHARED_INVALIDATE
        ) is QRequestOutcome.REJECTED

    def test_release_unknown_is_false(self, table):
        assert table.release_q("k", 99) is False

    def test_exclusive_available_after_release(self, table):
        table.request_q("k", 1, QMode.EXCLUSIVE)
        table.release_q("k", 1)
        assert table.request_q(
            "k", 2, QMode.EXCLUSIVE
        ) is QRequestOutcome.GRANTED


class TestExpiry:
    def test_i_lease_expires(self, table, clock):
        table.request_i("k")
        clock.advance(11)
        assert table.request_i("k") is not None

    def test_expired_i_token_invalid(self, table, clock):
        token = table.request_i("k")
        clock.advance(11)
        assert not table.i_valid("k", token)

    def test_q_expiry_fires_callback(self, table, clock):
        expired = []
        table.on_q_expired = lambda key, sid: expired.append((key, sid))
        table.request_q("k", 7, QMode.EXCLUSIVE)
        clock.advance(11)
        table.sweep_expired()
        assert expired == [("k", 7)]
        assert not table.q_held_by("k", 7)

    def test_reacquire_refreshes_expiry(self, table, clock):
        table.request_q("k", 1, QMode.EXCLUSIVE)
        clock.advance(8)
        table.request_q("k", 1, QMode.EXCLUSIVE)
        clock.advance(8)
        assert table.q_held_by("k", 1)

    def test_expired_q_frees_key_for_new_q(self, table, clock):
        table.request_q("k", 1, QMode.EXCLUSIVE)
        clock.advance(11)
        assert table.request_q(
            "k", 2, QMode.EXCLUSIVE
        ) is QRequestOutcome.GRANTED

    def test_outstanding_counts_live_keys(self, table, clock):
        table.request_i("a")
        table.request_q("b", 1, QMode.EXCLUSIVE)
        assert table.outstanding() == 2
        clock.advance(11)
        assert table.outstanding() == 0


class TestStats:
    def test_counters(self, table):
        table.request_i("k")
        table.request_i("k")  # backoff
        table.request_q("k", 1, QMode.EXCLUSIVE)  # grant + void
        table.request_q("k", 2, QMode.EXCLUSIVE)  # reject
        snapshot = table.stats.snapshot()
        assert snapshot["i_lease_grants"] == 1
        assert snapshot["lease_backoffs"] == 1
        assert snapshot["i_lease_voids"] == 1
        assert snapshot["q_lease_grants"] == 1
        assert snapshot["q_lease_rejects"] == 1
