"""Degraded mode: consistency clients with an unreachable cache.

The safety argument under test: a vanished KVS can only ever cause
misses or deletes, never stale hits.  Reads fall back to the SQL
engine, writes run SQL-only and journal their keys, and recovery
deletes every journaled key before the cache serves anything.
"""

import pytest

from repro.config import BackoffConfig, LeaseConfig, NetConfig
from repro.core.iq_client import IQClient
from repro.core.iq_server import IQServer
from repro.core.policies import (
    IQDeltaClient,
    IQInvalidateClient,
    IQRefreshClient,
    KeyChange,
)
from repro.errors import DegradedModeActive
from repro.faults import FaultAction, FaultInjector, FaultPlan, FaultRule
from repro.faults import RestartableServer
from repro.faults.injector import SITE_CLIENT_AFTER_SEND
from repro.net import ResilientIQServer
from repro.util.backoff import NoBackoff


def make_iq(tid_start=1):
    return IQServer(
        lease_config=LeaseConfig(i_lease_ttl=5, q_lease_ttl=5),
        tid_start=tid_start,
    )


@pytest.fixture
def chaos_server():
    server = RestartableServer(make_iq)
    server.start()
    yield server
    server.kill()


def resilient(server, injector=None):
    return ResilientIQServer(
        port=server.port,
        config=NetConfig(
            connect_timeout=1.0, operation_timeout=1.0, max_retries=1,
            breaker_failure_threshold=3, breaker_cooldown=0.02,
        ),
        backoff_config=BackoffConfig(
            initial_delay=0.005, max_delay=0.02, jitter=0.0
        ),
        injector=injector,
    )


def policy(cls, server, users_db, injector=None, **kwargs):
    remote = resilient(server, injector=injector)
    client = IQClient(remote, backoff=NoBackoff(max_attempts=50))
    return cls(client, users_db.connect, backoff=NoBackoff(), **kwargs), remote


def score_body(session):
    session.execute("UPDATE users SET score = score + 1 WHERE id = 1")
    return "done"


def read_score(users_db):
    fresh = users_db.connect()
    try:
        return fresh.query_scalar("SELECT score FROM users WHERE id = 1")
    finally:
        fresh.close()


class TestDegradedReads:
    def test_read_falls_back_to_sql(self, chaos_server, users_db):
        client, remote = policy(IQInvalidateClient, chaos_server, users_db)
        assert client.read("Profile1", lambda: b"computed") == b"computed"
        chaos_server.kill()
        assert client.read("Profile1", lambda: b"from-sql") == b"from-sql"
        assert client.degraded_reads == 1
        remote.close()

    def test_fallback_disabled_raises(self, chaos_server, users_db):
        client, remote = policy(
            IQInvalidateClient, chaos_server, users_db,
            degraded_fallback=False,
        )
        chaos_server.kill()
        with pytest.raises(DegradedModeActive):
            client.read("Profile1", lambda: b"v")
        assert client.degraded_reads == 0
        remote.close()


class TestDegradedWrites:
    @pytest.mark.parametrize(
        "cls", [IQInvalidateClient, IQRefreshClient, IQDeltaClient]
    )
    def test_write_runs_sql_only_and_journals(
        self, chaos_server, users_db, cls
    ):
        client, remote = policy(cls, chaos_server, users_db)
        chaos_server.kill()
        outcome = client.write(score_body, [KeyChange("Profile1")])
        assert outcome.result == "done"
        assert read_score(users_db) == 11
        assert client.degraded_writes == 1
        assert "Profile1" in client.degraded_keys
        assert "Profile1" in remote.journal.peek()
        remote.close()

    def test_fallback_disabled_raises_and_rolls_back_nothing(
        self, chaos_server, users_db
    ):
        client, remote = policy(
            IQInvalidateClient, chaos_server, users_db,
            degraded_fallback=False,
        )
        chaos_server.kill()
        with pytest.raises(DegradedModeActive):
            client.write(score_body, [KeyChange("Profile1")])
        # The SQL transaction never committed under the refusal policy.
        assert read_score(users_db) == 10
        remote.close()


class TestPostCommitDetach:
    def test_cache_loss_after_sql_commit_never_reruns_sql(
        self, chaos_server, users_db
    ):
        # Every dar send is dropped: the write's SQL commit lands, then
        # the commit-time cache phase fails.  The session must detach --
        # journal the keys and let the Q leases expire -- not replay SQL.
        injector = FaultInjector(FaultPlan([FaultRule(
            SITE_CLIENT_AFTER_SEND, FaultAction.DROP_CONNECTION,
            every=1, count=None,
            match=lambda ctx: ctx.get("command") == "dar",
        )]))
        client, remote = policy(
            IQInvalidateClient, chaos_server, users_db, injector=injector,
        )
        remote.set("Profile1", b"pre-write-value")
        outcome = client.write(score_body, [KeyChange("Profile1")])
        assert outcome.result == "done"
        assert read_score(users_db) == 11  # exactly one increment
        assert client.detached_sessions == 1
        assert "Profile1" in remote.journal.peek()
        remote.close()


class TestRecovery:
    def test_reconciliation_restores_coherence(self, chaos_server, users_db):
        client, remote = policy(IQRefreshClient, chaos_server, users_db)

        def compute():
            return str(read_score(users_db)).encode()

        # Warm the cache with the pre-partition value.
        assert client.read("Score1", compute) == b"10"
        chaos_server.kill()
        # Degraded write: SQL moves to 11 while the cached copy says 10.
        client.write(score_body, [KeyChange("Score1")])
        assert read_score(users_db) == 11
        chaos_server.start()
        # The journaled key is purged before the cache serves anything,
        # so the next read recomputes from SQL instead of the stale hit.
        assert client.read("Score1", compute) == b"11"
        assert len(remote.journal) == 0
        assert remote.journal.total_reconciled >= 1
        remote.close()
