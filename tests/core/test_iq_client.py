"""IQClient: transparent token management and the read-through loop."""

import pytest

from repro.config import BackoffConfig
from repro.core.iq_client import IQClient
from repro.errors import StarvationError
from repro.util.backoff import NoBackoff


@pytest.fixture
def client(iq, clock):
    return IQClient(iq, backoff=NoBackoff(max_attempts=50), clock=clock)


class TestReadThrough:
    def test_hit_skips_compute(self, iq, client):
        iq.store.set("k", b"cached")
        calls = []

        def compute():
            calls.append(1)
            return b"computed"

        assert client.read_through("k", compute) == b"cached"
        assert calls == []

    def test_miss_computes_and_installs(self, iq, client):
        assert client.read_through("k", lambda: b"fresh") == b"fresh"
        assert iq.store.get("k") == (b"fresh", 0)

    def test_none_result_not_cached(self, iq, client):
        assert client.read_through("k", lambda: None) is None
        assert iq.store.get("k") is None
        # The I lease was released, so the next reader gets a lease
        # immediately (no backoff window).
        assert iq.iq_get("k").has_lease

    def test_backoff_until_writer_commits(self, iq, client):
        tid = iq.gen_id()
        iq.qar(tid, "k")

        # The key is quarantined with no value: the reader would back off
        # forever, so finish the writer from within compute's clock domain:
        # simulate by releasing before reading.
        iq.dar(tid)
        assert client.read_through("k", lambda: b"v") == b"v"

    def test_starvation_surfaces(self, iq, clock):
        client = IQClient(iq, backoff=NoBackoff(max_attempts=3), clock=clock)
        tid = iq.gen_id()
        iq.qar(tid, "k")  # quarantined, never released
        with pytest.raises(StarvationError):
            client.read_through("k", lambda: b"v")

    def test_voided_lease_returns_computed_value_uncached(self, iq, client):
        """If a Q lease voids the reader's I lease mid-computation, the
        reader still returns its computed value (it serializes before the
        writer) but must not install it."""
        state = {}

        def compute():
            tid = iq.gen_id()
            state["tid"] = tid
            iq.qar(tid, "k")  # writer arrives mid-read
            return b"possibly-stale"

        assert client.read_through("k", compute) == b"possibly-stale"
        assert iq.iq_get("k", session=None).backoff or iq.store.get("k") is None
        iq.dar(state["tid"])
        assert iq.store.get("k") is None

    def test_write_session_reads_own_invalidated_key(self, iq, client):
        """A write session referencing its own quarantined key observes a
        miss and recomputes directly (no lease, no backoff)."""
        iq.store.set("k", b"old")
        tid = iq.gen_id()
        iq.qar(tid, "k")
        value = client.read_through("k", lambda: b"recomputed", session=tid)
        assert value == b"recomputed"
        assert iq.iq_get("k").value == b"old"  # others still see old


class TestGetCached:
    def test_returns_value_or_none(self, iq, client):
        assert client.get_cached("k") is None
        iq.store.set("k", b"v")
        assert client.get_cached("k") == b"v"


class TestPassthroughs:
    def test_write_command_surface(self, iq, client):
        tid = client.gen_id()
        client.qar(tid, "k")
        client.dar(tid)
        tid = client.gen_id()
        iq.store.set("r", b"1")
        result = client.qaread("r", tid)
        assert result.value == b"1"
        client.sar("r", b"2", tid)
        assert iq.store.get("r") == (b"2", 0)
        tid = client.gen_id()
        client.iq_delta(tid, "r", "incr", 1)
        client.commit(tid)
        assert iq.store.get("r") == (b"3", 0)
        tid = client.gen_id()
        client.iq_delta(tid, "r", "incr", 10)
        client.abort(tid)
        assert iq.store.get("r") == (b"3", 0)

    def test_default_backoff_is_exponential(self, iq):
        client = IQClient(iq)
        assert client.backoff.config.multiplier == BackoffConfig().multiplier
