"""Shared fixtures for the test suite."""

import pytest

from repro.config import KVSConfig, LeaseConfig
from repro.core.iq_server import IQServer
from repro.kvs.store import CacheStore
from repro.sql.engine import Database
from repro.util.clock import LogicalClock


@pytest.fixture
def clock():
    """A deterministic, manually advanced clock."""
    return LogicalClock()


@pytest.fixture
def store(clock):
    """A cache store with no memory limit on a logical clock."""
    return CacheStore(KVSConfig(), clock=clock)


@pytest.fixture
def iq(clock):
    """An IQ server on a logical clock with default lease config."""
    return IQServer(clock=clock)


@pytest.fixture
def iq_short_leases(clock):
    """An IQ server whose leases expire after one second."""
    return IQServer(
        lease_config=LeaseConfig(i_lease_ttl=1.0, q_lease_ttl=1.0),
        clock=clock,
    )


@pytest.fixture
def db():
    """An empty database."""
    return Database()


@pytest.fixture
def users_db(db):
    """A database with a tiny ``users`` table (3 rows)."""
    connection = db.connect()
    connection.execute(
        "CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT NOT NULL,"
        " score INTEGER)"
    )
    connection.execute(
        "INSERT INTO users (id, name, score) VALUES"
        " (1, 'alice', 10), (2, 'bob', 20), (3, 'carol', 30)"
    )
    connection.close()
    return db
