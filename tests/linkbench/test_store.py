"""LinkBench store operations across techniques."""

import pytest

from repro.linkbench import build_linkbench_system

LINK_TYPE = 1


@pytest.fixture(params=["invalidate", "refresh", "delta"])
def system(request):
    return build_linkbench_system(
        nodes=30, initial_degree=3, leased=True, technique=request.param
    )


class TestNodes:
    def test_get_node(self, system):
        node = system.store.get_node(5)
        assert node["id"] == 5
        assert node["data"] == "node5"

    def test_add_and_get_node(self, system):
        system.store.add_node(500, 2, data="fresh")
        node = system.store.get_node(500)
        assert node["type"] == 2
        assert node["data"] == "fresh"

    def test_update_node_bumps_version(self, system):
        system.store.get_node(5)  # warm the cache
        system.store.update_node(5, "changed")
        node = system.store.get_node(5)
        assert node["data"] == "changed"
        assert node["version"] == 1

    def test_delete_node(self, system):
        system.store.add_node(501, 1)
        system.store.delete_node(501)
        assert system.store.get_node(501) is None

    def test_missing_node(self, system):
        assert system.store.get_node(12345) is None


class TestLinks:
    def test_initial_link_list_and_count(self, system):
        assert system.store.get_link_list(5, LINK_TYPE) == frozenset(
            {6, 7, 8}
        )
        assert system.store.count_links(5, LINK_TYPE) == 3

    def test_add_link_updates_list_and_count(self, system):
        system.store.get_link_list(5, LINK_TYPE)  # warm
        system.store.count_links(5, LINK_TYPE)
        system.store.add_link(5, LINK_TYPE, 20)
        assert 20 in system.store.get_link_list(5, LINK_TYPE)
        assert system.store.count_links(5, LINK_TYPE) == 4

    def test_delete_link(self, system):
        system.store.get_link_list(5, LINK_TYPE)
        system.store.delete_link(5, LINK_TYPE, 6)
        assert 6 not in system.store.get_link_list(5, LINK_TYPE)
        assert system.store.count_links(5, LINK_TYPE) == 2

    def test_duplicate_add_is_noop(self, system):
        assert system.store.add_link(5, LINK_TYPE, 6) is None
        assert system.store.count_links(5, LINK_TYPE) == 3

    def test_delete_missing_is_noop(self, system):
        assert system.store.delete_link(5, LINK_TYPE, 29) is None
        assert system.store.count_links(5, LINK_TYPE) == 3

    def test_get_link_point_lookup(self, system):
        link = system.store.get_link(5, LINK_TYPE, 6)
        assert link["id2"] == 6
        assert system.store.get_link(5, LINK_TYPE, 25) is None

    def test_no_unpredictable_reads_single_threaded(self, system):
        system.store.get_link_list(5, LINK_TYPE)
        system.store.add_link(5, LINK_TYPE, 20)
        system.store.get_link_list(5, LINK_TYPE)
        system.store.delete_link(5, LINK_TYPE, 20)
        system.store.get_link_list(5, LINK_TYPE)
        system.store.count_links(5, LINK_TYPE)
        assert system.log.unpredictable_reads() == 0
