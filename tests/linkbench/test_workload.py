"""LinkBench driver: concurrency, validation, and the IQ guarantee."""

import random

import pytest

from repro.linkbench import LinkBenchRunner, build_linkbench_system
from repro.linkbench.workload import LINKBENCH_MIX, LinkGraphState


class TestGraphState:
    def test_claims_are_exclusive(self):
        state = LinkGraphState(20, 2)
        rng = random.Random(1)
        pair = state.claim_add(rng)
        assert pair is not None
        for _ in range(30):
            other = state.claim_add(rng)
            if other is not None:
                assert other != pair
                state.complete(other, "add", succeeded=False)
        state.complete(pair, "add", succeeded=True)
        id1, id2 = pair
        assert id2 in state._links[id1]

    def test_claim_delete_targets_existing(self):
        state = LinkGraphState(20, 2)
        pair = state.claim_delete(random.Random(2))
        assert pair is not None
        id1, id2 = pair
        assert id2 in state._links[id1]

    def test_fresh_node_ids_unique(self):
        state = LinkGraphState(10, 2)
        ids = {state.fresh_node_id() for _ in range(100)}
        assert len(ids) == 100
        assert min(ids) >= 10


class TestMix:
    def test_mix_covers_core_operations(self):
        assert set(LINKBENCH_MIX) >= {
            "get_link_list", "count_links", "add_link", "delete_link",
            "get_node", "update_node",
        }
        assert sum(LINKBENCH_MIX.values()) == pytest.approx(100.0)


class TestConcurrentRuns:
    @pytest.mark.parametrize(
        "technique", ["invalidate", "refresh", "delta"]
    )
    def test_iq_zero_unpredictable(self, technique):
        system = build_linkbench_system(
            nodes=50, initial_degree=3, leased=True, technique=technique,
            compute_delay=0.0005, write_delay=0.0005,
        )
        result = LinkBenchRunner(system).run(threads=6, ops_per_thread=60)
        assert result.actions == 360
        assert result.errors == 0
        assert system.log.unpredictable_reads() == 0, system.log.breakdown()

    def test_baseline_produces_stale(self):
        total = 0
        for seed in range(3):
            system = build_linkbench_system(
                nodes=50, initial_degree=3, leased=False,
                technique="invalidate",
                compute_delay=0.001, write_delay=0.001,
            )
            result = LinkBenchRunner(system, seed=seed).run(
                threads=8, ops_per_thread=80
            )
            total += system.log.unpredictable_reads()
            if total:
                break
        assert total > 0

    def test_cache_agrees_with_db_after_quiescence(self):
        from repro.linkbench.store import _decode_members

        system = build_linkbench_system(
            nodes=50, initial_degree=3, leased=True, technique="refresh",
        )
        result = LinkBenchRunner(system).run(threads=6, ops_per_thread=60)
        assert result.errors == 0
        connection = system.db.connect()
        checked = 0
        for id1 in range(50):
            raw = system.cache.store.get("LinkList{}:1".format(id1))
            if raw is None:
                continue
            cached = frozenset(_decode_members(raw[0]))
            rows = connection.execute(
                "SELECT id2 FROM links WHERE id1 = ? AND link_type = 1"
                " AND visibility = 1",
                (id1,),
            )
            assert cached == frozenset(r[0] for r in rows), id1
            checked += 1
        assert checked > 0
