import random

import pytest

from repro.bg.workload import (
    ACTIONS,
    HIGH_WRITE_MIX,
    LOW_WRITE_MIX,
    MIXES,
    VERY_LOW_WRITE_MIX,
    ActionMix,
    mix_with_write_fraction,
)


class TestTable5Mixes:
    """The three mixes must match Table 5 of the paper exactly."""

    def test_very_low_mix(self):
        pct = VERY_LOW_WRITE_MIX.percentages
        assert pct["view_profile"] == 40.0
        assert pct["invite_friend"] == 0.02
        assert pct["thaw_friendship"] == 0.03
        assert pct["view_comments_on_resource"] == 9.9
        assert VERY_LOW_WRITE_MIX.write_fraction() == pytest.approx(0.1)

    def test_low_mix(self):
        assert LOW_WRITE_MIX.write_fraction() == pytest.approx(1.0)
        assert LOW_WRITE_MIX.percentages["view_comments_on_resource"] == 9.0

    def test_high_mix(self):
        pct = HIGH_WRITE_MIX.percentages
        assert pct["view_profile"] == 35.0
        assert pct["view_top_k_resources"] == 35.0
        assert HIGH_WRITE_MIX.write_fraction() == pytest.approx(10.0)

    def test_all_mixes_sum_to_100(self):
        for mix in MIXES.values():
            assert sum(mix.percentages.values()) == pytest.approx(100.0)

    def test_mix_lookup_labels(self):
        assert set(MIXES) == {"0.1%", "1%", "10%"}


class TestActionMix:
    def test_sampling_respects_weights(self):
        rng = random.Random(1)
        counts = {}
        for _ in range(20000):
            name = HIGH_WRITE_MIX.sample(rng)
            counts[name] = counts.get(name, 0) + 1
        assert counts["view_profile"] / 20000 == pytest.approx(0.35, abs=0.02)
        writes = sum(
            counts.get(a, 0)
            for a in ("invite_friend", "accept_friend_request",
                      "reject_friend_request", "thaw_friendship")
        )
        assert writes / 20000 == pytest.approx(0.10, abs=0.01)

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            ActionMix("bad", {"tweet": 100.0})

    def test_bad_total_rejected(self):
        with pytest.raises(ValueError):
            ActionMix("bad", {"view_profile": 50.0})

    def test_all_actions_enumerated(self):
        from repro.bg.workload import CORE_ACTIONS

        assert len(CORE_ACTIONS) == 9  # the Table 5 set
        assert len(ACTIONS) == 11      # + post/delete comment


class TestCustomMix:
    def test_custom_write_fraction(self):
        mix = mix_with_write_fraction(5.0)
        assert mix.write_fraction() == pytest.approx(5.0)
        assert sum(mix.percentages.values()) == pytest.approx(100.0)

    def test_zero_writes(self):
        mix = mix_with_write_fraction(0.0)
        assert mix.write_fraction() == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            mix_with_write_fraction(100.0)
        with pytest.raises(ValueError):
            mix_with_write_fraction(-1.0)
