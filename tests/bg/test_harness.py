"""The build_bg_system assembly options."""

import pytest

from repro.bg.actions import Technique
from repro.bg.harness import build_bg_system
from repro.core.iq_server import IQServer
from repro.core.policies import (
    BaselineDeltaClient,
    BaselineInvalidateClient,
    BaselineRefreshClient,
    DeleteTiming,
    IQDeltaClient,
    IQInvalidateClient,
    IQRefreshClient,
)
from repro.core.session import AcquisitionMode
from repro.kvs.read_lease import ReadLeaseStore


def build(**kwargs):
    kwargs.setdefault("members", 20)
    kwargs.setdefault("friends_per_member", 4)
    kwargs.setdefault("resources_per_member", 1)
    return build_bg_system(**kwargs)


class TestClientSelection:
    @pytest.mark.parametrize("technique,client_class", [
        (Technique.INVALIDATE, IQInvalidateClient),
        (Technique.REFRESH, IQRefreshClient),
        (Technique.DELTA, IQDeltaClient),
    ])
    def test_leased_clients(self, technique, client_class):
        system = build(technique=technique, leased=True)
        assert isinstance(system.consistency_client, client_class)
        assert isinstance(system.cache, IQServer)
        assert system.consistency_client.is_strongly_consistent

    @pytest.mark.parametrize("technique,client_class", [
        (Technique.INVALIDATE, BaselineInvalidateClient),
        (Technique.REFRESH, BaselineRefreshClient),
        (Technique.DELTA, BaselineDeltaClient),
    ])
    def test_baseline_clients(self, technique, client_class):
        system = build(technique=technique, leased=False)
        assert isinstance(system.consistency_client, client_class)
        assert isinstance(system.cache, ReadLeaseStore)
        assert not system.consistency_client.is_strongly_consistent


class TestOptions:
    def test_database_is_loaded(self):
        system = build()
        connection = system.db.connect()
        assert connection.query_scalar("SELECT COUNT(*) FROM users") == 20
        assert connection.query_scalar(
            "SELECT COUNT(*) FROM friendship"
        ) == 80

    def test_validation_can_be_disabled(self):
        system = build(validate=False)
        assert system.log is None
        system.actions.view_profile(3)  # must not crash

    def test_acquisition_mode_propagates(self):
        system = build(technique=Technique.REFRESH,
                       mode=AcquisitionMode.PRIOR)
        assert system.consistency_client.mode is AcquisitionMode.PRIOR

    def test_delete_timing_propagates(self):
        system = build(leased=False,
                       delete_timing=DeleteTiming.AFTER_COMMIT)
        assert system.consistency_client.timing is DeleteTiming.AFTER_COMMIT

    def test_serve_pending_versions_off(self):
        system = build(serve_pending_versions=False)
        assert not system.cache.lease_config.serve_pending_versions

    def test_hot_writes_flag(self):
        system = build(hot_writes=True)
        assert system.runner.hot_writes

    def test_stats_property(self):
        system = build()
        system.actions.view_profile(1)
        assert system.stats.get("cmd_get") >= 1
