"""The nine BG actions against each technique (single-threaded)."""

import pytest

from repro.bg.actions import (
    Technique,
    decode_id_set,
    encode_id_csv,
    encode_id_list,
)
from repro.bg.harness import build_bg_system


def build(technique, leased=True):
    return build_bg_system(
        members=30, friends_per_member=4, resources_per_member=2,
        technique=technique, leased=leased,
    )


class TestEncodings:
    def test_id_list_round_trip(self):
        assert decode_id_set(encode_id_list([3, 1, 2])) == frozenset({1, 2, 3})

    def test_id_csv_round_trip(self):
        assert decode_id_set(encode_id_csv([3, 1])) == frozenset({1, 3})

    def test_empty_csv(self):
        assert decode_id_set(b"") == frozenset()

    def test_none_passthrough(self):
        assert decode_id_set(None) is None


@pytest.mark.parametrize(
    "technique", [Technique.INVALIDATE, Technique.REFRESH, Technique.DELTA]
)
class TestActionsAcrossTechniques:
    def test_read_actions_match_initial_state(self, technique):
        system = build(technique)
        actions = system.actions
        profile = actions.view_profile(3)
        assert profile["pendingcount"] == 0
        assert profile["friendcount"] == 4
        assert actions.list_friends(3) == system.graph.initial_friends(3)
        assert actions.view_friend_requests(3) == frozenset()
        top = actions.view_top_k_resources(3)
        assert [r["rid"] for r in top] == [7, 6]
        comments = actions.view_comments_on_resource(6)
        assert len(comments) == 1

    def test_invite_updates_cache_and_db(self, technique):
        system = build(technique)
        actions = system.actions
        actions.view_profile(5)          # warm the cache
        actions.view_friend_requests(5)
        actions.invite_friend(20, 5)
        assert actions.view_profile(5)["pendingcount"] == 1
        assert actions.view_friend_requests(5) == frozenset({20})
        connection = system.db.connect()
        assert connection.query_scalar(
            "SELECT pendingcount FROM users WHERE userid = 5"
        ) == 1

    def test_accept_updates_five_entities(self, technique):
        system = build(technique)
        actions = system.actions
        for warm in (actions.view_profile, actions.list_friends):
            warm(5)
            warm(20)
        actions.view_friend_requests(5)
        actions.invite_friend(20, 5)
        actions.accept_friend_request(20, 5)
        assert actions.view_profile(5)["pendingcount"] == 0
        assert actions.view_profile(5)["friendcount"] == 5
        assert actions.view_profile(20)["friendcount"] == 5
        assert 20 in actions.list_friends(5)
        assert 5 in actions.list_friends(20)
        assert actions.view_friend_requests(5) == frozenset()

    def test_reject_removes_invitation(self, technique):
        system = build(technique)
        actions = system.actions
        actions.invite_friend(20, 5)
        actions.reject_friend_request(20, 5)
        assert actions.view_profile(5)["pendingcount"] == 0
        assert actions.view_friend_requests(5) == frozenset()
        assert 20 not in actions.list_friends(5)

    def test_thaw_removes_friendship(self, technique):
        system = build(technique)
        actions = system.actions
        friend = next(iter(system.graph.initial_friends(5)))
        actions.thaw_friendship(5, friend)
        assert actions.view_profile(5)["friendcount"] == 3
        assert friend not in actions.list_friends(5)
        assert 5 not in actions.list_friends(friend)

    def test_no_unpredictable_reads_single_threaded(self, technique):
        system = build(technique)
        actions = system.actions
        actions.invite_friend(20, 5)
        actions.accept_friend_request(20, 5)
        friend = next(iter(system.graph.initial_friends(10)))
        actions.thaw_friendship(10, friend)
        for member in (5, 10, 20):
            actions.view_profile(member)
            actions.list_friends(member)
            actions.view_friend_requests(member)
        assert system.log.unpredictable_reads() == 0

    def test_baseline_also_correct_single_threaded(self, technique):
        """Without concurrency the baselines are correct too (Table 1,
        row '1 session': 0%)."""
        system = build(technique, leased=False)
        actions = system.actions
        actions.view_profile(5)
        actions.invite_friend(20, 5)
        actions.accept_friend_request(20, 5)
        actions.view_profile(5)
        actions.list_friends(5)
        actions.view_friend_requests(5)
        assert system.log.unpredictable_reads() == 0


class TestTechniqueSpecificFormats:
    def test_delta_mode_uses_standalone_counters(self):
        system = build(Technique.DELTA)
        actions = system.actions
        actions.view_profile(5)
        assert system.cache.store.get("PendingCount5") == (b"0", 0)
        actions.invite_friend(20, 5)
        assert system.cache.store.get("PendingCount5") == (b"1", 0)

    def test_delta_mode_appends_to_pending_csv(self):
        system = build(Technique.DELTA)
        actions = system.actions
        actions.view_friend_requests(5)
        actions.invite_friend(20, 5)
        raw = system.cache.store.get("PendingFriends5")
        assert raw is not None
        assert decode_id_set(raw[0]) == frozenset({20})

    def test_refresh_mode_updates_profile_in_place(self):
        system = build(Technique.REFRESH)
        actions = system.actions
        actions.view_profile(5)
        actions.invite_friend(20, 5)
        raw = system.cache.store.get("Profile5")
        assert raw is not None and b'"pendingcount":1' in raw[0]

    def test_invalidate_mode_deletes_profile(self):
        system = build(Technique.INVALIDATE)
        actions = system.actions
        actions.view_profile(5)
        actions.invite_friend(20, 5)
        assert system.cache.store.get("Profile5") is None
