import pytest

from repro.bg.graph import SocialGraph
from repro.bg.schema import STATUS_CONFIRMED, create_bg_database
from repro.config import BGConfig


@pytest.fixture
def small_graph():
    return SocialGraph(
        BGConfig(members=20, friends_per_member=4, resources_per_member=2)
    )


class TestDeterministicState:
    def test_friend_count_is_phi(self, small_graph):
        for member in small_graph.member_ids():
            assert len(small_graph.initial_friends(member)) == 4

    def test_friendship_is_symmetric(self, small_graph):
        for member in small_graph.member_ids():
            for friend in small_graph.initial_friends(member):
                assert member in small_graph.initial_friends(friend)

    def test_no_self_friendship(self, small_graph):
        for member in small_graph.member_ids():
            assert member not in small_graph.initial_friends(member)

    def test_profiles_are_deterministic(self, small_graph):
        first = small_graph.initial_profile(7)
        second = small_graph.initial_profile(7)
        assert first == second
        assert first["pendingcount"] == 0
        assert first["friendcount"] == 4

    def test_resource_ids_partition(self, small_graph):
        seen = set()
        for member in small_graph.member_ids():
            ids = set(small_graph.resource_ids_of(member))
            assert not (ids & seen)
            seen |= ids
        assert seen == set(range(small_graph.total_resources()))

    def test_validation_params(self):
        with pytest.raises(ValueError):
            SocialGraph(BGConfig(members=10, friends_per_member=10))
        with pytest.raises(ValueError):
            SocialGraph(BGConfig(members=10, friends_per_member=3))


class TestLoading:
    def test_loaded_counts_match(self, small_graph):
        db = small_graph.load(comments_per_resource=2)
        connection = db.connect()
        assert connection.query_scalar("SELECT COUNT(*) FROM users") == 20
        assert connection.query_scalar(
            "SELECT COUNT(*) FROM friendship"
        ) == 20 * 4
        assert connection.query_scalar(
            "SELECT COUNT(*) FROM resources"
        ) == 40
        assert connection.query_scalar(
            "SELECT COUNT(*) FROM manipulations"
        ) == 80

    def test_loaded_friendships_match_initial_sets(self, small_graph):
        db = small_graph.load()
        connection = db.connect()
        for member in (0, 7, 19):
            rows = connection.execute(
                "SELECT inviteeid FROM friendship"
                " WHERE inviterid = ? AND status = ?",
                (member, STATUS_CONFIRMED),
            )
            assert frozenset(
                r[0] for r in rows
            ) == small_graph.initial_friends(member)

    def test_load_into_existing_database(self, small_graph):
        db = create_bg_database()
        returned = small_graph.load(db=db)
        assert returned is db

    def test_counters_initialized(self, small_graph):
        db = small_graph.load()
        connection = db.connect()
        row = connection.query_one(
            "SELECT pendingcount, friendcount FROM users WHERE userid = 3"
        )
        assert row["pendingcount"] == 0
        assert row["friendcount"] == 4
