import random

import pytest

from repro.bg.zipfian import (
    ZipfianGenerator,
    exponent_for_hotspot,
    hotspot_fraction,
)


class TestZipfianGenerator:
    def test_samples_in_range(self):
        gen = ZipfianGenerator(100, rng=random.Random(1))
        for _ in range(1000):
            assert 0 <= gen.next_rank() < 100

    def test_rank_zero_most_popular(self):
        gen = ZipfianGenerator(1000, exponent=0.9, rng=random.Random(2))
        counts = {}
        for _ in range(20000):
            rank = gen.next_rank()
            counts[rank] = counts.get(rank, 0) + 1
        assert counts.get(0, 0) > counts.get(100, 0)
        assert counts.get(0, 0) > counts.get(999, 0)

    def test_low_exponent_is_flatter(self):
        skewed = ZipfianGenerator(1000, exponent=0.9, rng=random.Random(3))
        flat = ZipfianGenerator(1000, exponent=0.01, rng=random.Random(3))

        def top_share(gen):
            hits = sum(1 for _ in range(5000) if gen.next_rank() < 10)
            return hits / 5000

        assert top_share(skewed) > top_share(flat)

    def test_scramble_spreads_hot_ids(self):
        gen = ZipfianGenerator(
            1000, exponent=0.9, rng=random.Random(4), scramble=True
        )
        ids = {gen.next() for _ in range(2000)}
        # Popular ids should not all cluster below 100.
        assert any(i > 500 for i in ids)

    def test_population_must_be_positive(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)

    def test_sample_helper(self):
        gen = ZipfianGenerator(10, rng=random.Random(5))
        assert len(gen.sample(7)) == 7


class TestHotspotSolver:
    def test_solved_exponent_achieves_target(self):
        n = 1000
        exponent = exponent_for_hotspot(
            n, data_fraction=0.2, access_fraction=0.7
        )
        achieved = hotspot_fraction(n, exponent, 0.2)
        assert achieved == pytest.approx(0.7, abs=0.01)

    def test_empirical_hotspot_close_to_analytic(self):
        n = 500
        exponent = exponent_for_hotspot(n, 0.2, 0.7)
        gen = ZipfianGenerator(n, exponent=exponent, rng=random.Random(6))
        hot = sum(1 for _ in range(20000) if gen.next_rank() < n * 0.2)
        assert hot / 20000 == pytest.approx(0.7, abs=0.05)

    def test_stronger_skew_needs_larger_exponent(self):
        mild = exponent_for_hotspot(1000, 0.2, 0.6)
        strong = exponent_for_hotspot(1000, 0.2, 0.9)
        assert strong > mild
