import random

import pytest

from repro.bg.graph import SocialGraph
from repro.bg.registry import FriendshipRegistry
from repro.config import BGConfig


@pytest.fixture
def registry():
    graph = SocialGraph(
        BGConfig(members=30, friends_per_member=4, resources_per_member=1)
    )
    return FriendshipRegistry(graph)


def test_claim_invite_avoids_existing_relationships(registry):
    rng = random.Random(1)
    for _ in range(20):
        claim = registry.claim_invite(rng)
        assert claim is not None
        assert claim.invitee not in registry._friends[claim.inviter]
        registry.complete(claim, succeeded=True)


def test_invite_then_accept_updates_counts(registry):
    rng = random.Random(2)
    claim = registry.claim_invite(rng)
    invitee = claim.invitee
    registry.complete(claim, succeeded=True)
    assert registry.pending_count(invitee) == 1

    pending = registry.claim_pending(rng, "accept")
    assert pending is not None
    before = registry.friend_count(pending.invitee)
    registry.complete(pending, succeeded=True)
    assert registry.pending_count(pending.invitee) == 0
    assert registry.friend_count(pending.invitee) == before + 1


def test_reject_removes_pending_without_friendship(registry):
    rng = random.Random(3)
    claim = registry.claim_invite(rng)
    registry.complete(claim, succeeded=True)
    reject = registry.claim_pending(rng, "reject")
    friends_before = registry.friend_count(reject.invitee)
    registry.complete(reject, succeeded=True)
    assert registry.total_pending() == 0
    assert registry.friend_count(reject.invitee) == friends_before


def test_thaw_removes_friendship_both_sides(registry):
    rng = random.Random(4)
    claim = registry.claim_confirmed(rng)
    assert claim is not None
    a, b = claim.inviter, claim.invitee
    registry.complete(claim, succeeded=True)
    assert b not in registry._friends[a]
    assert a not in registry._friends[b]


def test_claims_exclude_pairs_in_flight(registry):
    rng = random.Random(5)
    claim = registry.claim_confirmed(rng)
    # The same canonical pair cannot be claimed again until completion.
    for _ in range(50):
        other = registry.claim_confirmed(rng)
        if other is None:
            continue
        assert {other.inviter, other.invitee} != {claim.inviter, claim.invitee}
        registry.complete(other, succeeded=False)
    registry.complete(claim, succeeded=False)


def test_failed_action_reverts_nothing(registry):
    rng = random.Random(6)
    claim = registry.claim_invite(rng)
    registry.complete(claim, succeeded=False)
    assert registry.total_pending() == 0


def test_claim_pending_empty_returns_none(registry):
    assert registry.claim_pending(random.Random(7), "accept") is None
