"""The unpredictable-read detector."""

from repro.bg.validation import ValidationLog


ITEM = ("pendingcount", 1)


def test_initial_value_is_acceptable():
    log = ValidationLog()
    log.register(ITEM, 0)
    floors = log.read_begin([ITEM])
    end = log.read_end()
    assert log.validate(ITEM, 0, floors, end)
    assert log.unpredictable_reads() == 0


def test_old_value_after_commit_is_stale():
    log = ValidationLog()
    log.register(ITEM, 0)
    handle = log.write_begin([ITEM])
    log.record(ITEM, 1)
    log.write_end(handle)
    floors = log.read_begin([ITEM])
    end = log.read_end()
    assert not log.validate(ITEM, 0, floors, end)
    assert log.validate(ITEM, 1, floors, end)
    assert log.unpredictable_reads() == 1
    assert log.reads() == 2


def test_read_overlapping_write_may_see_either_value():
    """The re-arrangement rule: a read that starts while a write session
    is mid-flight may serialize before it."""
    log = ValidationLog()
    log.register(ITEM, 0)
    handle = log.write_begin([ITEM])
    log.record(ITEM, 1)  # RDBMS committed, KVS ops still pending
    floors = log.read_begin([ITEM])
    end = log.read_end()
    assert log.validate(ITEM, 0, floors, end)  # pre-write value OK
    assert log.validate(ITEM, 1, floors, end)  # new value also OK
    log.write_end(handle)


def test_after_write_end_old_value_is_stale():
    log = ValidationLog()
    log.register(ITEM, 0)
    handle = log.write_begin([ITEM])
    log.record(ITEM, 1)
    log.write_end(handle)
    floors = log.read_begin([ITEM])
    assert not log.validate(ITEM, 0, floors, log.read_end())


def test_value_committed_during_read_window_is_acceptable():
    log = ValidationLog()
    log.register(ITEM, 0)
    floors = log.read_begin([ITEM])
    handle = log.write_begin([ITEM])
    log.record(ITEM, 1)
    log.write_end(handle)
    end = log.read_end()
    assert log.validate(ITEM, 0, floors, end)
    assert log.validate(ITEM, 1, floors, end)


def test_never_held_value_is_always_stale():
    log = ValidationLog()
    log.register(ITEM, 0)
    floors = log.read_begin([ITEM])
    assert not log.validate(ITEM, 42, floors, log.read_end())


def test_two_writes_in_window_all_intermediate_values_ok():
    log = ValidationLog()
    log.register(ITEM, 0)
    floors = log.read_begin([ITEM])
    for value in (1, 2):
        handle = log.write_begin([ITEM])
        log.record(ITEM, value)
        log.write_end(handle)
    end = log.read_end()
    for value in (0, 1, 2):
        assert log.validate(ITEM, value, floors, end)
    assert not log.validate(ITEM, 3, floors, end)


def test_set_valued_items():
    item = ("friends", 5)
    log = ValidationLog()
    log.register(item, frozenset({1, 2}))
    handle = log.write_begin([item])
    log.record(item, frozenset({1, 2, 3}))
    log.write_end(handle)
    floors = log.read_begin([item])
    end = log.read_end()
    assert log.validate(item, frozenset({1, 2, 3}), floors, end)
    assert not log.validate(item, frozenset({1, 2}), floors, end)


def test_unregistered_item_is_not_counted_stale():
    log = ValidationLog()
    floors = log.read_begin([ITEM])
    assert log.validate(ITEM, 123, floors, log.read_end())
    assert log.unpredictable_reads() == 0


def test_percentage_and_breakdown():
    log = ValidationLog()
    log.register(ITEM, 0)
    handle = log.write_begin([ITEM])
    log.record(ITEM, 1)
    log.write_end(handle)
    floors = log.read_begin([ITEM])
    end = log.read_end()
    log.validate(ITEM, 1, floors, end)
    log.validate(ITEM, 0, floors, end, kind="pendingcount")
    assert log.unpredictable_percentage() == 50.0
    assert log.breakdown() == {"pendingcount": 1}
    log.reset_counters()
    assert log.reads() == 0
    assert log.unpredictable_percentage() == 0.0


def test_floor_extends_to_oldest_inflight_writer():
    """A long-running write session keeps the pre-write value acceptable
    for reads that start any time before its KVS ops finish."""
    log = ValidationLog()
    log.register(ITEM, 0)
    slow = log.write_begin([ITEM])
    log.record(ITEM, 1)
    fast = log.write_begin([ITEM])
    log.record(ITEM, 2)
    log.write_end(fast)
    floors = log.read_begin([ITEM])
    end = log.read_end()
    # value 0 acceptable only because `slow` began before it changed
    # anything and is still mid-flight.
    assert log.validate(ITEM, 0, floors, end)
    log.write_end(slow)
    floors = log.read_begin([ITEM])
    assert not log.validate(ITEM, 0, floors, log.read_end())
