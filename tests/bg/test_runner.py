"""The multithreaded workload driver and SoAR rater."""

import pytest

from repro.bg.actions import Technique
from repro.bg.harness import build_bg_system
from repro.bg.metrics import RestartStats
from repro.bg.soar import SoARRater
from repro.bg.workload import HIGH_WRITE_MIX, LOW_WRITE_MIX


class TestRestartStats:
    def test_average_over_restarted_only(self):
        stats = RestartStats([0, 0, 2, 4])
        assert stats.average == 3.0
        assert stats.maximum == 4
        assert stats.sessions == 4
        assert stats.restarted_sessions == 2

    def test_empty(self):
        stats = RestartStats([])
        assert stats.average == 0.0
        assert stats.maximum == 0


class TestWorkloadRunner:
    def test_single_thread_ops_run(self):
        system = build_bg_system(
            members=40, friends_per_member=4, resources_per_member=2,
            mix=HIGH_WRITE_MIX,
        )
        result = system.runner.run(threads=1, ops_per_thread=200)
        assert result.actions == 200
        assert result.reads + result.writes == 200
        assert result.unpredictable_percentage == 0.0
        assert result.throughput > 0
        assert len(result.latency) == 200

    def test_duration_mode(self):
        system = build_bg_system(
            members=40, friends_per_member=4, resources_per_member=2,
            mix=LOW_WRITE_MIX,
        )
        result = system.runner.run(threads=2, duration=0.3)
        assert result.actions > 0
        assert result.duration >= 0.3

    def test_exactly_one_mode_required(self):
        system = build_bg_system(
            members=40, friends_per_member=4, resources_per_member=2,
        )
        with pytest.raises(ValueError):
            system.runner.run(threads=1)
        with pytest.raises(ValueError):
            system.runner.run(threads=1, duration=1, ops_per_thread=1)

    def test_concurrent_iq_run_has_zero_stale(self):
        system = build_bg_system(
            members=60, friends_per_member=4, resources_per_member=2,
            technique=Technique.INVALIDATE, leased=True, mix=HIGH_WRITE_MIX,
        )
        result = system.runner.run(threads=8, ops_per_thread=100)
        assert result.actions == 800
        assert result.unpredictable_percentage == 0.0
        assert result.errors == 0

    def test_warmup_populates_cache(self):
        system = build_bg_system(
            members=40, friends_per_member=4, resources_per_member=2,
            mix=LOW_WRITE_MIX,
        )
        system.runner.run(threads=2, ops_per_thread=20, warmup_ops=10)
        assert system.cache.stats.get("get_hits") > 0

    def test_summary_is_readable(self):
        system = build_bg_system(
            members=40, friends_per_member=4, resources_per_member=2,
        )
        result = system.runner.run(threads=1, ops_per_thread=20)
        text = result.summary()
        assert "actions/s" in text and "stale=" in text


class TestSoAR:
    def test_rater_returns_positive_soar(self):
        system = build_bg_system(
            members=40, friends_per_member=4, resources_per_member=2,
            mix=LOW_WRITE_MIX,
        )
        rater = SoARRater(
            system.runner, probe_duration=0.2, max_threads=4, warmup_ops=5
        )
        result = rater.rate()
        assert result.soar > 0
        assert result.best_threads >= 1
        assert result.probes
