"""BG's extended comment actions (beyond the Table 5 nine)."""

import pytest

from repro.bg.actions import Technique
from repro.bg.harness import build_bg_system
from repro.bg.workload import EXTENDED_MIX


def build(technique, leased=True, **kwargs):
    return build_bg_system(
        members=30, friends_per_member=4, resources_per_member=2,
        technique=technique, leased=leased, **kwargs
    )


@pytest.mark.parametrize(
    "technique", [Technique.INVALIDATE, Technique.REFRESH, Technique.DELTA]
)
class TestCommentActions:
    def test_post_comment_visible(self, technique):
        system = build(technique)
        actions = system.actions
        resource = 10
        before = actions.view_comments_on_resource(resource)
        outcome = actions.post_comment(5, resource, content="hello")
        after = actions.view_comments_on_resource(resource)
        assert len(after) == len(before) + 1
        assert any(c["content"] == "hello" for c in after)
        assert outcome.restarts == 0

    def test_delete_comment_removes_newest(self, technique):
        system = build(technique)
        actions = system.actions
        resource = 10
        mid = actions.post_comment(5, resource).result
        actions.delete_comment(resource)
        after = actions.view_comments_on_resource(resource)
        assert mid not in {c["mid"] for c in after}

    def test_delete_on_empty_resource_is_noop(self, technique):
        system = build(technique)
        actions = system.actions
        resource = 10
        # Drain the seeded comment plus anything else.
        while actions.delete_comment(resource) is not None:
            pass
        assert actions.view_comments_on_resource(resource) == []
        assert actions.delete_comment(resource) is None

    def test_mids_are_unique(self, technique):
        system = build(technique)
        actions = system.actions
        mids = {actions.post_comment(1, 10).result for _ in range(10)}
        assert len(mids) == 10

    def test_no_unpredictable_reads_single_threaded(self, technique):
        system = build(technique)
        actions = system.actions
        actions.view_comments_on_resource(10)
        actions.post_comment(3, 10)
        actions.view_comments_on_resource(10)
        actions.delete_comment(10)
        actions.view_comments_on_resource(10)
        assert system.log.unpredictable_reads() == 0


class TestExtendedMixConcurrent:
    def test_extended_mix_iq_zero_stale(self):
        system = build(
            Technique.REFRESH, leased=True, mix=EXTENDED_MIX,
            compute_delay=0.0005, write_delay=0.0005,
        )
        result = system.runner.run(threads=6, ops_per_thread=60)
        assert result.actions == 360
        assert result.errors == 0
        assert system.log.unpredictable_reads() == 0, system.log.breakdown()

    def test_extended_mix_baseline_runs(self):
        system = build(
            Technique.INVALIDATE, leased=False, mix=EXTENDED_MIX,
            compute_delay=0.001, write_delay=0.001,
        )
        result = system.runner.run(threads=6, ops_per_thread=50)
        assert result.actions == 300
        # (Stale percentage may or may not be nonzero on a short run;
        # the IQ-zero guarantee above is the assertion that matters.)

    def test_mix_definition(self):
        assert EXTENDED_MIX.write_fraction() == pytest.approx(17.0)
