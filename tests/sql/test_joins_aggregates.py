"""Joins, aggregates, and index-assisted plans."""

import pytest

from repro.errors import SQLError


@pytest.fixture
def shop_db(db):
    connection = db.connect()
    connection.execute(
        "CREATE TABLE customers (id INTEGER PRIMARY KEY, name TEXT)"
    )
    connection.execute(
        "CREATE TABLE orders (oid INTEGER PRIMARY KEY, cid INTEGER,"
        " total INTEGER)"
    )
    connection.execute(
        "INSERT INTO customers (id, name) VALUES (1, 'ann'), (2, 'ben'),"
        " (3, 'eve')"
    )
    connection.execute(
        "INSERT INTO orders (oid, cid, total) VALUES"
        " (10, 1, 100), (11, 1, 50), (12, 2, 75), (13, 9, 5)"
    )
    connection.close()
    return db


class TestJoins:
    def test_inner_join_matches(self, shop_db):
        connection = shop_db.connect()
        rows = connection.execute(
            "SELECT c.name, o.total FROM orders o"
            " INNER JOIN customers c ON o.cid = c.id"
            " ORDER BY o.oid"
        ).rows
        assert [(r["name"], r["total"]) for r in rows] == [
            ("ann", 100), ("ann", 50), ("ben", 75),
        ]

    def test_join_drops_unmatched(self, shop_db):
        connection = shop_db.connect()
        rows = connection.execute(
            "SELECT o.oid FROM orders o"
            " JOIN customers c ON o.cid = c.id"
        ).rows
        assert 13 not in [r["oid"] for r in rows]

    def test_join_with_where(self, shop_db):
        connection = shop_db.connect()
        rows = connection.execute(
            "SELECT c.name FROM orders o"
            " JOIN customers c ON o.cid = c.id WHERE o.total > ?",
            (60,),
        ).rows
        assert sorted(r["name"] for r in rows) == ["ann", "ben"]

    def test_three_way_join(self, shop_db):
        connection = shop_db.connect()
        connection.execute(
            "CREATE TABLE regions (rid INTEGER, cname TEXT)"
        )
        connection.execute(
            "INSERT INTO regions (rid, cname) VALUES (1, 'ann')"
        )
        rows = connection.execute(
            "SELECT o.oid FROM orders o"
            " JOIN customers c ON o.cid = c.id"
            " JOIN regions r ON r.cname = c.name"
        ).rows
        assert sorted(row["oid"] for row in rows) == [10, 11]

    def test_join_star_projection(self, shop_db):
        connection = shop_db.connect()
        rows = connection.execute(
            "SELECT * FROM orders o JOIN customers c ON o.cid = c.id"
            " ORDER BY o.oid LIMIT 1"
        ).rows
        assert rows[0]["oid"] == 10
        assert rows[0]["name"] == "ann"

    def test_non_equi_join_nested_loop(self, shop_db):
        connection = shop_db.connect()
        rows = connection.execute(
            "SELECT o.oid FROM orders o"
            " JOIN customers c ON o.cid < c.id WHERE c.id = 3"
        ).rows
        assert sorted(r["oid"] for r in rows) == [10, 11, 12]


class TestAggregates:
    def test_count_star(self, shop_db):
        connection = shop_db.connect()
        assert connection.query_scalar("SELECT COUNT(*) FROM orders") == 4

    def test_count_with_where(self, shop_db):
        connection = shop_db.connect()
        assert connection.query_scalar(
            "SELECT COUNT(*) FROM orders WHERE cid = 1"
        ) == 2

    def test_sum_min_max_avg(self, shop_db):
        connection = shop_db.connect()
        row = connection.query_one(
            "SELECT SUM(total) AS s, MIN(total) AS lo, MAX(total) AS hi,"
            " AVG(total) AS mean FROM orders"
        )
        assert row["s"] == 230
        assert row["lo"] == 5
        assert row["hi"] == 100
        assert row["mean"] == pytest.approx(57.5)

    def test_aggregates_on_empty_result(self, shop_db):
        connection = shop_db.connect()
        row = connection.query_one(
            "SELECT COUNT(*) AS c, SUM(total) AS s FROM orders"
            " WHERE cid = 42"
        )
        assert row["c"] == 0
        assert row["s"] is None

    def test_count_expression_skips_nulls(self, shop_db):
        connection = shop_db.connect()
        connection.execute(
            "INSERT INTO orders (oid, cid) VALUES (99, 1)"
        )
        assert connection.query_scalar(
            "SELECT COUNT(total) FROM orders"
        ) == 4

    def test_mixing_aggregate_and_plain_rejected(self, shop_db):
        connection = shop_db.connect()
        with pytest.raises(SQLError):
            connection.execute("SELECT cid, COUNT(*) FROM orders")


class TestIndexedPlans:
    def test_index_probe_equals_scan_results(self, shop_db):
        connection = shop_db.connect()
        before = connection.execute(
            "SELECT oid FROM orders WHERE cid = 1 ORDER BY oid"
        ).rows
        connection.execute("CREATE INDEX orders_by_cid ON orders (cid)")
        after = connection.execute(
            "SELECT oid FROM orders WHERE cid = 1 ORDER BY oid"
        ).rows
        assert before == after

    def test_index_sees_new_inserts(self, shop_db):
        connection = shop_db.connect()
        connection.execute("CREATE INDEX orders_by_cid ON orders (cid)")
        connection.execute(
            "INSERT INTO orders (oid, cid, total) VALUES (20, 1, 10)"
        )
        rows = connection.execute(
            "SELECT oid FROM orders WHERE cid = 1"
        ).rows
        assert 20 in [r["oid"] for r in rows]

    def test_index_respects_visibility(self, shop_db):
        connection = shop_db.connect()
        connection.execute("CREATE INDEX orders_by_cid ON orders (cid)")
        writer = shop_db.connect()
        writer.begin()
        writer.execute("INSERT INTO orders (oid, cid, total) VALUES (30, 1, 1)")
        rows = connection.execute(
            "SELECT oid FROM orders WHERE cid = 1"
        ).rows
        assert 30 not in [r["oid"] for r in rows]
        writer.rollback()

    def test_index_after_update_returns_new_value_rows(self, shop_db):
        connection = shop_db.connect()
        connection.execute("CREATE INDEX orders_by_cid ON orders (cid)")
        connection.execute("UPDATE orders SET cid = 3 WHERE oid = 12")
        assert [
            r["oid"]
            for r in connection.execute(
                "SELECT oid FROM orders WHERE cid = 3"
            ).rows
        ] == [12]
        assert [
            r["oid"]
            for r in connection.execute(
                "SELECT oid FROM orders WHERE cid = 2"
            ).rows
        ] == []

    def test_composite_index(self, shop_db):
        connection = shop_db.connect()
        connection.execute(
            "CREATE INDEX orders_pair ON orders (cid, total)"
        )
        rows = connection.execute(
            "SELECT oid FROM orders WHERE cid = 1 AND total = 50"
        ).rows
        assert [r["oid"] for r in rows] == [11]
