"""Property-based tests of the SQL engine with hypothesis."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sql.engine import Database

ids = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=1, max_size=30,
    unique=True,
)
scores = st.integers(min_value=-1000, max_value=1000)


def fresh_db(rows):
    db = Database()
    connection = db.connect()
    connection.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, score INTEGER)"
    )
    for row_id, score in rows:
        connection.execute(
            "INSERT INTO t (id, score) VALUES (?, ?)", (row_id, score)
        )
    connection.close()
    return db


@given(row_ids=ids, score=scores)
@settings(max_examples=30, deadline=None)
def test_count_matches_inserts(row_ids, score):
    db = fresh_db([(i, score) for i in row_ids])
    connection = db.connect()
    assert connection.query_scalar("SELECT COUNT(*) FROM t") == len(row_ids)


@given(row_ids=ids)
@settings(max_examples=30, deadline=None)
def test_select_where_equality_finds_each_row(row_ids):
    db = fresh_db([(i, i * 2) for i in row_ids])
    connection = db.connect()
    for row_id in row_ids:
        row = connection.query_one("SELECT * FROM t WHERE id = ?", (row_id,))
        assert row["score"] == row_id * 2


@given(row_ids=ids, threshold=scores)
@settings(max_examples=30, deadline=None)
def test_where_partition_is_exact(row_ids, threshold):
    db = fresh_db([(i, (i * 37) % 997 - 500) for i in row_ids])
    connection = db.connect()
    above = connection.query_scalar(
        "SELECT COUNT(*) FROM t WHERE score > ?", (threshold,)
    )
    at_or_below = connection.query_scalar(
        "SELECT COUNT(*) FROM t WHERE score <= ?", (threshold,)
    )
    assert above + at_or_below == len(row_ids)


@given(row_ids=ids)
@settings(max_examples=30, deadline=None)
def test_order_by_sorts(row_ids):
    db = fresh_db([(i, (i * 31) % 101) for i in row_ids])
    connection = db.connect()
    rows = connection.execute("SELECT score FROM t ORDER BY score").rows
    observed = [r["score"] for r in rows]
    assert observed == sorted(observed)


@given(row_ids=ids, delta=st.integers(min_value=-50, max_value=50))
@settings(max_examples=30, deadline=None)
def test_update_then_sum_is_consistent(row_ids, delta):
    db = fresh_db([(i, 10) for i in row_ids])
    connection = db.connect()
    connection.execute("UPDATE t SET score = score + ?", (delta,))
    total = connection.query_scalar("SELECT SUM(score) FROM t")
    assert total == (10 + delta) * len(row_ids)


@given(row_ids=ids)
@settings(max_examples=30, deadline=None)
def test_snapshot_sum_is_stable_under_concurrent_updates(row_ids):
    """A reader's aggregate never changes mid-transaction, whatever a
    concurrent writer commits (the SI guarantee the paper relies on)."""
    db = fresh_db([(i, 1) for i in row_ids])
    reader = db.connect()
    writer = db.connect()
    reader.begin()
    first_sum = reader.query_scalar("SELECT SUM(score) FROM t")
    writer.execute("UPDATE t SET score = score + 100")
    second_sum = reader.query_scalar("SELECT SUM(score) FROM t")
    assert first_sum == second_sum == len(row_ids)
    reader.commit()
    assert reader.query_scalar("SELECT SUM(score) FROM t") == 101 * len(
        row_ids
    )


@given(row_ids=ids)
@settings(max_examples=20, deadline=None)
def test_vacuum_preserves_visible_state(row_ids):
    db = fresh_db([(i, 0) for i in row_ids])
    connection = db.connect()
    for _ in range(3):
        connection.execute("UPDATE t SET score = score + 1")
    before = connection.execute("SELECT * FROM t ORDER BY id").rows
    db.vacuum()
    after = connection.execute("SELECT * FROM t ORDER BY id").rows
    assert before == after
