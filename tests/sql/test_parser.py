import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql import expressions as ex
from repro.sql.parser import parse, tokenize


class TestTokenizer:
    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("SeLeCt * FrOm t")
        assert tokens[0].kind == "keyword" and tokens[0].value == "select"

    def test_string_escapes(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_numbers(self):
        tokens = tokenize("42 3.14 1e3")
        assert [t.value for t in tokens] == [42, 3.14, 1000.0]

    def test_junk_raises(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @ FROM t")


class TestCreateTable:
    def test_inline_primary_key(self):
        stmt = parse("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)")
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.primary_key == ("id",)
        assert [c.name for c in stmt.columns] == ["id", "name"]

    def test_table_level_composite_key(self):
        stmt = parse(
            "CREATE TABLE f (a INTEGER, b INTEGER, PRIMARY KEY (a, b))"
        )
        assert stmt.primary_key == ("a", "b")

    def test_not_null(self):
        stmt = parse("CREATE TABLE t (id INTEGER NOT NULL)")
        assert stmt.columns[0].not_null

    def test_if_not_exists(self):
        stmt = parse("CREATE TABLE IF NOT EXISTS t (id INTEGER)")
        assert stmt.if_not_exists

    def test_both_pk_styles_rejected(self):
        with pytest.raises(ParseError):
            parse(
                "CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER,"
                " PRIMARY KEY (b))"
            )


class TestSelect:
    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt.items[0], ast.Star)
        assert stmt.table_ref.table == "t"

    def test_qualified_star(self):
        stmt = parse("SELECT a.* FROM t a")
        assert stmt.items[0].qualifier == "a"

    def test_columns_and_aliases(self):
        stmt = parse("SELECT name, score AS s FROM t")
        assert stmt.items[0].alias == "name"
        assert stmt.items[1].alias == "s"

    def test_where_with_params(self):
        stmt = parse("SELECT * FROM t WHERE id = ? AND score > ?")
        assert isinstance(stmt.where, ex.And)

    def test_order_and_limit(self):
        stmt = parse("SELECT * FROM t ORDER BY a DESC, b LIMIT 5")
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True
        assert stmt.limit.value == 5

    def test_join(self):
        stmt = parse(
            "SELECT u.name FROM orders o INNER JOIN users u"
            " ON o.uid = u.id WHERE o.total > 10"
        )
        assert len(stmt.joins) == 1
        assert stmt.joins[0].table_ref.alias == "u"

    def test_aggregates(self):
        stmt = parse("SELECT COUNT(*), SUM(x), MAX(y) AS biggest FROM t")
        assert stmt.items[0].aggregate == "count"
        assert stmt.items[0].expr is None
        assert stmt.items[1].aggregate == "sum"
        assert stmt.items[2].alias == "biggest"

    def test_in_list_and_is_null(self):
        stmt = parse(
            "SELECT * FROM t WHERE a IN (1, 2, 3) AND b IS NOT NULL"
        )
        assert isinstance(stmt.where, ex.And)
        assert isinstance(stmt.where.left, ex.InList)
        right = stmt.where.right
        assert isinstance(right, ex.IsNull) and right.negate

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT 1 + 2 * 3 FROM t")
        expr = stmt.items[0].expr
        ctx = ex.EvalContext()
        assert expr.evaluate(ctx) == 7

    def test_parenthesized_expression(self):
        stmt = parse("SELECT (1 + 2) * 3 FROM t")
        assert stmt.items[0].expr.evaluate(ex.EvalContext()) == 9

    def test_unary_minus(self):
        stmt = parse("SELECT -5 FROM t")
        assert stmt.items[0].expr.evaluate(ex.EvalContext()) == -5


class TestDML:
    def test_insert_multi_row(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 2), (3, 4)")
        assert len(stmt.rows) == 2
        assert stmt.columns == ("a", "b")

    def test_insert_width_mismatch(self):
        with pytest.raises(ParseError):
            parse("INSERT INTO t (a, b) VALUES (1)")

    def test_update(self):
        stmt = parse("UPDATE t SET a = a + 1, b = ? WHERE id = 3")
        assert len(stmt.assignments) == 2
        assert stmt.assignments[0][0] == "a"

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE id = 1")
        assert isinstance(stmt, ast.Delete)

    def test_delete_without_where(self):
        stmt = parse("DELETE FROM t")
        assert stmt.where is None


class TestTransactionsAndMisc:
    def test_begin_commit_rollback(self):
        assert isinstance(parse("BEGIN"), ast.Begin)
        assert isinstance(parse("BEGIN TRANSACTION"), ast.Begin)
        assert isinstance(parse("COMMIT"), ast.Commit)
        assert isinstance(parse("ROLLBACK"), ast.Rollback)

    def test_create_index(self):
        stmt = parse("CREATE INDEX idx ON t (a, b)")
        assert stmt.columns == ("a", "b")

    def test_drop_table(self):
        stmt = parse("DROP TABLE IF EXISTS t")
        assert stmt.if_exists

    def test_trailing_semicolon_ok(self):
        parse("SELECT * FROM t;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM t garbage extra")

    def test_empty_statement_rejected(self):
        with pytest.raises(ParseError):
            parse("")

    def test_param_indices_are_positional(self):
        stmt = parse("SELECT * FROM t WHERE a = ? AND b = ? LIMIT ?")
        params = []

        def collect(expr):
            if isinstance(expr, ex.Param):
                params.append(expr.index)
            for attr in ("left", "right", "operand"):
                child = getattr(expr, attr, None)
                if child is not None:
                    collect(child)

        collect(stmt.where)
        collect(stmt.limit)
        assert sorted(params) == [0, 1, 2]
