"""Row-level triggers, including the after-commit timing."""

import pytest

from repro.errors import SchemaError
from repro.sql.triggers import TriggerEvent


@pytest.fixture
def audited_db(users_db):
    users_db.fired = []

    def record(connection, event, old_row, new_row):
        users_db.fired.append((event, old_row, new_row))

    users_db.create_trigger(
        "audit", "users",
        [TriggerEvent.INSERT, TriggerEvent.UPDATE, TriggerEvent.DELETE],
        record,
    )
    return users_db


class TestDuringTriggers:
    def test_insert_trigger_sees_new_row(self, audited_db):
        connection = audited_db.connect()
        connection.execute("INSERT INTO users (id, name) VALUES (9, 'z')")
        event, old_row, new_row = audited_db.fired[0]
        assert event is TriggerEvent.INSERT
        assert old_row is None
        assert new_row["name"] == "z"

    def test_update_trigger_sees_both_images(self, audited_db):
        connection = audited_db.connect()
        connection.execute("UPDATE users SET score = 11 WHERE id = 1")
        event, old_row, new_row = audited_db.fired[0]
        assert event is TriggerEvent.UPDATE
        assert old_row["score"] == 10
        assert new_row["score"] == 11

    def test_delete_trigger_sees_old_row(self, audited_db):
        connection = audited_db.connect()
        connection.execute("DELETE FROM users WHERE id = 2")
        event, old_row, new_row = audited_db.fired[0]
        assert event is TriggerEvent.DELETE
        assert old_row["id"] == 2
        assert new_row is None

    def test_trigger_fires_per_affected_row(self, audited_db):
        connection = audited_db.connect()
        connection.execute("UPDATE users SET score = 0")
        assert len(audited_db.fired) == 3

    def test_during_trigger_fires_inside_transaction(self, audited_db):
        connection = audited_db.connect()
        connection.begin()
        connection.execute("UPDATE users SET score = 0 WHERE id = 1")
        assert len(audited_db.fired) == 1  # before commit!
        connection.rollback()
        # The row change rolled back, but the trigger side effect already
        # happened -- exactly the Figure 3 hazard the paper describes.
        assert connection.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 10


class TestAfterCommitTriggers:
    def test_fires_only_after_commit(self, users_db):
        fired = []
        users_db.create_trigger(
            "later", "users", [TriggerEvent.UPDATE],
            lambda c, e, o, n: fired.append(n["score"]),
            after_commit=True,
        )
        connection = users_db.connect()
        connection.begin()
        connection.execute("UPDATE users SET score = 5 WHERE id = 1")
        assert fired == []
        connection.commit()
        assert fired == [5]

    def test_not_fired_on_rollback(self, users_db):
        fired = []
        users_db.create_trigger(
            "later", "users", [TriggerEvent.UPDATE],
            lambda c, e, o, n: fired.append(1),
            after_commit=True,
        )
        connection = users_db.connect()
        connection.begin()
        connection.execute("UPDATE users SET score = 5 WHERE id = 1")
        connection.rollback()
        assert fired == []


class TestTriggerRegistry:
    def test_event_filtering(self, users_db):
        fired = []
        users_db.create_trigger(
            "only_delete", "users", [TriggerEvent.DELETE],
            lambda c, e, o, n: fired.append(e),
        )
        connection = users_db.connect()
        connection.execute("UPDATE users SET score = 0 WHERE id = 1")
        assert fired == []
        connection.execute("DELETE FROM users WHERE id = 1")
        assert fired == [TriggerEvent.DELETE]

    def test_duplicate_name_rejected(self, users_db):
        users_db.create_trigger(
            "t", "users", [TriggerEvent.INSERT], lambda *a: None
        )
        with pytest.raises(SchemaError):
            users_db.create_trigger(
                "t", "users", [TriggerEvent.INSERT], lambda *a: None
            )

    def test_unknown_table_rejected(self, users_db):
        with pytest.raises(SchemaError):
            users_db.create_trigger(
                "t", "ghosts", [TriggerEvent.INSERT], lambda *a: None
            )

    def test_drop_trigger(self, users_db):
        fired = []
        users_db.create_trigger(
            "t", "users", [TriggerEvent.INSERT],
            lambda c, e, o, n: fired.append(1),
        )
        users_db.drop_trigger("users", "t")
        connection = users_db.connect()
        connection.execute("INSERT INTO users (id, name) VALUES (9, 'x')")
        assert fired == []
        with pytest.raises(SchemaError):
            users_db.drop_trigger("users", "t")

    def test_kvs_invalidation_via_trigger(self, users_db):
        """The paper's trigger-based invalidation pattern end to end."""
        from repro.kvs.store import CacheStore

        store = CacheStore()
        store.set("Profile1", b"cached")
        users_db.create_trigger(
            "invalidate", "users", [TriggerEvent.UPDATE],
            lambda c, e, o, n: store.delete("Profile{}".format(n["id"])),
        )
        connection = users_db.connect()
        connection.execute("UPDATE users SET score = 0 WHERE id = 1")
        assert store.get("Profile1") is None
