"""DISTINCT, GROUP BY / HAVING, LIKE, BETWEEN."""

import pytest

from repro.errors import ParseError


@pytest.fixture
def sales_db(db):
    connection = db.connect()
    connection.execute(
        "CREATE TABLE sales (id INTEGER PRIMARY KEY, region TEXT,"
        " product TEXT, amount INTEGER)"
    )
    connection.execute(
        "INSERT INTO sales (id, region, product, amount) VALUES"
        " (1, 'east', 'widget', 10),"
        " (2, 'east', 'gadget', 20),"
        " (3, 'west', 'widget', 30),"
        " (4, 'west', 'widget', 40),"
        " (5, 'east', 'widget', 50)"
    )
    connection.close()
    return db


class TestGroupBy:
    def test_group_counts(self, sales_db):
        connection = sales_db.connect()
        rows = connection.execute(
            "SELECT region, COUNT(*) AS n FROM sales"
            " GROUP BY region ORDER BY region"
        ).rows
        assert [(r["region"], r["n"]) for r in rows] == [
            ("east", 3), ("west", 2),
        ]

    def test_group_sum_and_avg(self, sales_db):
        connection = sales_db.connect()
        rows = connection.execute(
            "SELECT region, SUM(amount) AS total, AVG(amount) AS mean"
            " FROM sales GROUP BY region ORDER BY region"
        ).rows
        assert rows[0]["total"] == 80
        assert rows[0]["mean"] == pytest.approx(80 / 3)
        assert rows[1]["total"] == 70

    def test_group_by_multiple_keys(self, sales_db):
        connection = sales_db.connect()
        rows = connection.execute(
            "SELECT region, product, COUNT(*) AS n FROM sales"
            " GROUP BY region, product ORDER BY region, product"
        ).rows
        assert len(rows) == 3
        assert rows[0] == ("east", "gadget", 1)

    def test_having_filters_groups(self, sales_db):
        connection = sales_db.connect()
        rows = connection.execute(
            "SELECT region, COUNT(*) AS n FROM sales GROUP BY region"
            " HAVING n > 2"
        ).rows
        assert [(r["region"], r["n"]) for r in rows] == [("east", 3)]

    def test_having_with_expression(self, sales_db):
        connection = sales_db.connect()
        rows = connection.execute(
            "SELECT product, SUM(amount) AS total FROM sales"
            " GROUP BY product HAVING total >= 100"
        ).rows
        assert [(r["product"], r["total"]) for r in rows] == [("widget", 130)]

    def test_group_by_with_where(self, sales_db):
        connection = sales_db.connect()
        rows = connection.execute(
            "SELECT region, COUNT(*) AS n FROM sales WHERE amount > 15"
            " GROUP BY region ORDER BY region"
        ).rows
        assert [(r["region"], r["n"]) for r in rows] == [
            ("east", 2), ("west", 2),
        ]

    def test_group_order_by_aggregate(self, sales_db):
        connection = sales_db.connect()
        rows = connection.execute(
            "SELECT region, SUM(amount) AS total FROM sales"
            " GROUP BY region ORDER BY total DESC LIMIT 1"
        ).rows
        assert rows[0]["region"] == "east"

    def test_empty_group_result(self, sales_db):
        connection = sales_db.connect()
        rows = connection.execute(
            "SELECT region, COUNT(*) AS n FROM sales WHERE amount > 999"
            " GROUP BY region"
        ).rows
        assert rows == []


class TestDistinct:
    def test_distinct_single_column(self, sales_db):
        connection = sales_db.connect()
        rows = connection.execute(
            "SELECT DISTINCT region FROM sales ORDER BY region"
        ).rows
        assert [r["region"] for r in rows] == ["east", "west"]

    def test_distinct_pairs(self, sales_db):
        connection = sales_db.connect()
        rows = connection.execute(
            "SELECT DISTINCT region, product FROM sales"
        ).rows
        assert len(rows) == 3

    def test_distinct_with_limit(self, sales_db):
        connection = sales_db.connect()
        rows = connection.execute(
            "SELECT DISTINCT region FROM sales ORDER BY region LIMIT 1"
        ).rows
        assert [r["region"] for r in rows] == ["east"]


class TestLike:
    def test_percent_wildcard(self, sales_db):
        connection = sales_db.connect()
        rows = connection.execute(
            "SELECT id FROM sales WHERE product LIKE 'wid%' ORDER BY id"
        ).rows
        assert [r["id"] for r in rows] == [1, 3, 4, 5]

    def test_underscore_wildcard(self, sales_db):
        connection = sales_db.connect()
        rows = connection.execute(
            "SELECT DISTINCT product FROM sales WHERE product LIKE '_adget'"
        ).rows
        assert [r["product"] for r in rows] == ["gadget"]

    def test_not_like(self, sales_db):
        connection = sales_db.connect()
        rows = connection.execute(
            "SELECT DISTINCT product FROM sales WHERE product NOT LIKE 'w%'"
        ).rows
        assert [r["product"] for r in rows] == ["gadget"]

    def test_like_literal_match(self, sales_db):
        connection = sales_db.connect()
        count = connection.query_scalar(
            "SELECT COUNT(*) FROM sales WHERE region LIKE 'east'"
        )
        assert count == 3

    def test_like_escapes_regex_metachars(self, db):
        connection = db.connect()
        connection.execute("CREATE TABLE t (s TEXT)")
        connection.execute("INSERT INTO t (s) VALUES ('a.b'), ('axb')")
        rows = connection.execute(
            "SELECT s FROM t WHERE s LIKE 'a.b'"
        ).rows
        assert [r["s"] for r in rows] == ["a.b"]

    def test_like_parameter_pattern(self, sales_db):
        connection = sales_db.connect()
        count = connection.query_scalar(
            "SELECT COUNT(*) FROM sales WHERE product LIKE ?", ("ga%",)
        )
        assert count == 1


class TestBetween:
    def test_inclusive_bounds(self, sales_db):
        connection = sales_db.connect()
        rows = connection.execute(
            "SELECT id FROM sales WHERE amount BETWEEN 20 AND 40 ORDER BY id"
        ).rows
        assert [r["id"] for r in rows] == [2, 3, 4]

    def test_not_between(self, sales_db):
        connection = sales_db.connect()
        rows = connection.execute(
            "SELECT id FROM sales WHERE amount NOT BETWEEN 20 AND 40"
            " ORDER BY id"
        ).rows
        assert [r["id"] for r in rows] == [1, 5]

    def test_between_with_params(self, sales_db):
        connection = sales_db.connect()
        count = connection.query_scalar(
            "SELECT COUNT(*) FROM sales WHERE amount BETWEEN ? AND ?",
            (10, 30),
        )
        assert count == 3

    def test_between_combines_with_and(self, sales_db):
        connection = sales_db.connect()
        count = connection.query_scalar(
            "SELECT COUNT(*) FROM sales"
            " WHERE amount BETWEEN 10 AND 50 AND region = 'west'"
        )
        assert count == 2


class TestParseErrors:
    def test_not_without_predicate_rejected(self, sales_db):
        connection = sales_db.connect()
        with pytest.raises(ParseError):
            connection.execute("SELECT id FROM sales WHERE amount NOT 5")

    def test_between_requires_and(self, sales_db):
        connection = sales_db.connect()
        with pytest.raises(ParseError):
            connection.execute(
                "SELECT id FROM sales WHERE amount BETWEEN 1, 2"
            )
