"""Direct version-chain tests of TableStorage (below the SQL surface)."""

import pytest

from repro.errors import IntegrityError, TransactionAbortedError
from repro.sql.schema import Column, TableSchema
from repro.sql.storage import TableStorage
from repro.sql.transactions import TransactionManager
from repro.sql.types import INTEGER, TEXT


@pytest.fixture
def txm():
    return TransactionManager()


@pytest.fixture
def storage(txm):
    schema = TableSchema(
        "t",
        [Column("id", INTEGER, nullable=False), Column("v", TEXT)],
        primary_key=("id",),
    )
    return TableStorage(schema, txm)


def committed_insert(storage, txm, values):
    tx = txm.begin()
    rowid = storage.insert(tx, values)
    txm.commit(tx)
    return rowid


class TestVersionChains:
    def test_insert_creates_single_version(self, storage, txm):
        rowid = committed_insert(storage, txm, (1, "a"))
        assert storage.version_count() == 1
        reader = txm.begin()
        assert storage.read(reader, rowid) == (1, "a")

    def test_update_appends_version(self, storage, txm):
        rowid = committed_insert(storage, txm, (1, "a"))
        tx = txm.begin()
        old, new = storage.update(tx, rowid, (1, "b"))
        assert old == (1, "a") and new == (1, "b")
        txm.commit(tx)
        assert storage.version_count() == 2
        reader = txm.begin()
        assert storage.read(reader, rowid) == (1, "b")

    def test_old_snapshot_reads_old_version(self, storage, txm):
        rowid = committed_insert(storage, txm, (1, "a"))
        old_reader = txm.begin()
        tx = txm.begin()
        storage.update(tx, rowid, (1, "b"))
        txm.commit(tx)
        assert storage.read(old_reader, rowid) == (1, "a")
        new_reader = txm.begin()
        assert storage.read(new_reader, rowid) == (1, "b")

    def test_delete_hides_row(self, storage, txm):
        rowid = committed_insert(storage, txm, (1, "a"))
        tx = txm.begin()
        assert storage.delete(tx, rowid) == (1, "a")
        txm.commit(tx)
        reader = txm.begin()
        assert storage.read(reader, rowid) is None

    def test_update_invisible_row_returns_none(self, storage, txm):
        writer = txm.begin()
        rowid = storage.insert(writer, (1, "a"))
        # Another transaction cannot see (or update) the uncommitted row.
        other = txm.begin()
        assert storage.update(other, rowid, (1, "b")) is None
        txm.abort(writer)

    def test_scan_skips_aborted_versions(self, storage, txm):
        tx = txm.begin()
        storage.insert(tx, (1, "ghost"))
        txm.abort(tx)
        reader = txm.begin()
        assert list(storage.scan(reader)) == []
        assert storage.row_count() == 1  # physically present until vacuum
        storage.vacuum(txm.gc_horizon())
        assert storage.row_count() == 0


class TestConflicts:
    def test_concurrent_update_conflict(self, storage, txm):
        rowid = committed_insert(storage, txm, (1, "a"))
        first = txm.begin()
        second = txm.begin()
        storage.update(first, rowid, (1, "b"))
        with pytest.raises(TransactionAbortedError):
            storage.update(second, rowid, (1, "c"))

    def test_update_after_abort_is_allowed(self, storage, txm):
        rowid = committed_insert(storage, txm, (1, "a"))
        first = txm.begin()
        storage.update(first, rowid, (1, "b"))
        txm.abort(first)
        second = txm.begin()
        assert storage.update(second, rowid, (1, "c")) is not None
        txm.commit(second)

    def test_stale_snapshot_update_conflicts(self, storage, txm):
        rowid = committed_insert(storage, txm, (1, "a"))
        stale = txm.begin()
        storage.read(stale, rowid)
        fresh = txm.begin()
        storage.update(fresh, rowid, (1, "b"))
        txm.commit(fresh)
        with pytest.raises(TransactionAbortedError):
            storage.update(stale, rowid, (1, "c"))

    def test_pk_conflict_committed(self, storage, txm):
        committed_insert(storage, txm, (1, "a"))
        tx = txm.begin()
        with pytest.raises(IntegrityError):
            storage.insert(tx, (1, "dup"))

    def test_pk_conflict_with_active_insert(self, storage, txm):
        first = txm.begin()
        storage.insert(first, (1, "a"))
        second = txm.begin()
        with pytest.raises(TransactionAbortedError):
            storage.insert(second, (1, "b"))
        txm.abort(first)

    def test_pk_free_after_committed_delete(self, storage, txm):
        rowid = committed_insert(storage, txm, (1, "a"))
        tx = txm.begin()
        storage.delete(tx, rowid)
        txm.commit(tx)
        committed_insert(storage, txm, (1, "again"))

    def test_pk_change_checks_new_value(self, storage, txm):
        committed_insert(storage, txm, (1, "a"))
        rowid2 = committed_insert(storage, txm, (2, "b"))
        tx = txm.begin()
        with pytest.raises(IntegrityError):
            storage.update(tx, rowid2, (1, "clash"))


class TestVacuum:
    def test_vacuum_respects_horizon(self, storage, txm):
        rowid = committed_insert(storage, txm, (1, "v0"))
        old_reader = txm.begin()
        for i in range(3):
            tx = txm.begin()
            storage.update(tx, rowid, (1, "v{}".format(i + 1)))
            txm.commit(tx)
        reclaimed = storage.vacuum(txm.gc_horizon())
        # The old reader still pins v0: chain keeps >= 2 versions.
        assert storage.read(old_reader, rowid) == (1, "v0")
        txm.commit(old_reader)
        reclaimed += storage.vacuum(txm.gc_horizon())
        assert storage.version_count() == 1
        assert reclaimed == 3
