import pytest

from repro.errors import SchemaError, SQLError
from repro.sql import expressions as ex


def ctx(row=None, params=()):
    row = row or {}
    return ex.EvalContext({"t": row}, [row], params)


class TestLiteralAndParams:
    def test_literal(self):
        assert ex.Literal(42).evaluate(ctx()) == 42

    def test_param_binding(self):
        assert ex.Param(1).evaluate(ctx(params=("a", "b"))) == "b"

    def test_missing_param_raises(self):
        with pytest.raises(SQLError):
            ex.Param(2).evaluate(ctx(params=("only",)))


class TestColumnRef:
    def test_unqualified_lookup(self):
        assert ex.ColumnRef("x").evaluate(ctx({"x": 5})) == 5

    def test_case_insensitive(self):
        assert ex.ColumnRef("NAME").evaluate(ctx({"name": "n"})) == "n"

    def test_qualified_lookup(self):
        context = ex.EvalContext(
            {"a": {"x": 1}, "b": {"x": 2}}, [{"x": 1}], ()
        )
        assert ex.ColumnRef("x", qualifier="b").evaluate(context) == 2

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            ex.ColumnRef("nope").evaluate(ctx({"x": 1}))

    def test_unknown_alias_raises(self):
        with pytest.raises(SchemaError):
            ex.ColumnRef("x", qualifier="zz").evaluate(ctx({"x": 1}))


class TestThreeValuedLogic:
    def test_comparison_with_null_is_null(self):
        expr = ex.Comparison("=", ex.Literal(None), ex.Literal(1))
        assert expr.evaluate(ctx()) is None

    def test_null_filtered_by_where(self):
        assert not ex.is_true(None)
        assert not ex.is_true(False)
        assert ex.is_true(True)

    def test_and_short_circuit_false(self):
        expr = ex.And(ex.Literal(False), ex.Literal(None))
        assert expr.evaluate(ctx()) is False

    def test_and_with_null(self):
        expr = ex.And(ex.Literal(True), ex.Literal(None))
        assert expr.evaluate(ctx()) is None

    def test_or_short_circuit_true(self):
        expr = ex.Or(ex.Literal(True), ex.Literal(None))
        assert expr.evaluate(ctx()) is True

    def test_or_with_null(self):
        expr = ex.Or(ex.Literal(False), ex.Literal(None))
        assert expr.evaluate(ctx()) is None

    def test_not_null_is_null(self):
        assert ex.Not(ex.Literal(None)).evaluate(ctx()) is None

    def test_is_null(self):
        assert ex.IsNull(ex.Literal(None)).evaluate(ctx()) is True
        assert ex.IsNull(ex.Literal(1), negate=True).evaluate(ctx()) is True

    def test_in_list(self):
        expr = ex.InList(ex.Literal(2), [ex.Literal(1), ex.Literal(2)])
        assert expr.evaluate(ctx()) is True
        expr = ex.InList(ex.Literal(None), [ex.Literal(1)])
        assert expr.evaluate(ctx()) is None


class TestArithmetic:
    def test_operations(self):
        pairs = {
            "+": 7, "-": 3, "*": 10, "%": 1,
        }
        for op, expected in pairs.items():
            expr = ex.Arithmetic(op, ex.Literal(5), ex.Literal(2))
            assert expr.evaluate(ctx()) == expected
        assert ex.Arithmetic("/", ex.Literal(5), ex.Literal(2)).evaluate(
            ctx()
        ) == 2.5

    def test_null_propagates(self):
        expr = ex.Arithmetic("+", ex.Literal(None), ex.Literal(1))
        assert expr.evaluate(ctx()) is None

    def test_unknown_operator_rejected(self):
        with pytest.raises(SQLError):
            ex.Arithmetic("**", ex.Literal(1), ex.Literal(2))


class TestPlanningHelpers:
    def test_conjuncts_flatten(self):
        expr = ex.And(
            ex.And(ex.Literal(True), ex.Literal(True)), ex.Literal(False)
        )
        assert len(ex.conjuncts(expr)) == 3
        assert ex.conjuncts(None) == []

    def test_equality_bindings_extracts_constant_equalities(self):
        where = ex.And(
            ex.Comparison("=", ex.ColumnRef("a"), ex.Param(0)),
            ex.Comparison("=", ex.Literal(5), ex.ColumnRef("b", "t")),
        )
        bindings = ex.equality_bindings(where)
        names = sorted(((q or "", c) for q, c, _ in bindings))
        assert names == [("", "a"), ("t", "b")]

    def test_column_to_column_equality_not_extracted(self):
        where = ex.Comparison("=", ex.ColumnRef("a"), ex.ColumnRef("b"))
        assert ex.equality_bindings(where) == []

    def test_non_equality_not_extracted(self):
        where = ex.Comparison("<", ex.ColumnRef("a"), ex.Literal(5))
        assert ex.equality_bindings(where) == []
