"""Write-ahead logging and crash recovery."""

import json

import pytest

from repro.sql.engine import Database
from repro.sql.wal import WriteAheadLog, recover


@pytest.fixture
def wal_path(tmp_path):
    return str(tmp_path / "db.wal")


@pytest.fixture
def wal_db(wal_path):
    db = Database(wal_path=wal_path)
    connection = db.connect()
    connection.execute(
        "CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT,"
        " score INTEGER)"
    )
    connection.execute(
        "INSERT INTO users (id, name, score) VALUES (1, 'alice', 10),"
        " (2, 'bob', 20)"
    )
    connection.close()
    return db


def all_rows(db, sql="SELECT * FROM users ORDER BY id"):
    connection = db.connect()
    try:
        return [row.as_dict() for row in connection.execute(sql)]
    finally:
        connection.close()


class TestLogging:
    def test_ddl_and_commits_logged(self, wal_db, wal_path):
        records = list(WriteAheadLog.read_records(wal_path))
        assert records[0]["type"] == "ddl"
        assert "CREATE TABLE users" in records[0]["sql"]
        assert any(r["type"] == "commit" for r in records)

    def test_aborted_transactions_not_logged(self, wal_db, wal_path):
        before = len(list(WriteAheadLog.read_records(wal_path)))
        connection = wal_db.connect()
        connection.begin()
        connection.execute("UPDATE users SET score = 0 WHERE id = 1")
        connection.rollback()
        after = len(list(WriteAheadLog.read_records(wal_path)))
        assert after == before

    def test_read_only_transactions_not_logged(self, wal_db, wal_path):
        before = len(list(WriteAheadLog.read_records(wal_path)))
        connection = wal_db.connect()
        connection.execute("SELECT * FROM users")
        after = len(list(WriteAheadLog.read_records(wal_path)))
        assert after == before

    def test_index_ddl_logged(self, wal_db, wal_path):
        wal_db.create_index("users_by_name", "users", ["name"])
        records = list(WriteAheadLog.read_records(wal_path))
        assert any(
            r["type"] == "ddl" and "CREATE INDEX users_by_name" in r["sql"]
            for r in records
        )


class TestRecovery:
    def test_full_recovery(self, wal_db, wal_path):
        connection = wal_db.connect()
        connection.execute("UPDATE users SET score = 99 WHERE id = 1")
        connection.execute("DELETE FROM users WHERE id = 2")
        connection.execute(
            "INSERT INTO users (id, name, score) VALUES (3, 'carol', 30)"
        )
        connection.close()

        recovered = recover(wal_path)
        assert all_rows(recovered) == all_rows(wal_db)

    def test_recovery_restores_indexes(self, wal_db, wal_path):
        wal_db.create_index("users_by_name", "users", ["name"])
        recovered = recover(wal_path)
        rows = all_rows(
            recovered, "SELECT id FROM users WHERE name = 'alice'"
        )
        assert rows == [{"id": 1}]

    def test_recovery_of_multi_statement_transaction(self, wal_db, wal_path):
        connection = wal_db.connect()
        connection.begin()
        connection.execute("UPDATE users SET score = score + 1 WHERE id = 1")
        connection.execute("UPDATE users SET score = score + 1 WHERE id = 2")
        connection.commit()
        connection.close()
        recovered = recover(wal_path)
        assert [r["score"] for r in all_rows(recovered)] == [11, 21]

    def test_self_overwriting_transaction_collapses(self, wal_db, wal_path):
        connection = wal_db.connect()
        connection.begin()
        for _ in range(3):
            connection.execute(
                "UPDATE users SET score = score + 1 WHERE id = 1"
            )
        connection.commit()
        connection.close()
        records = list(WriteAheadLog.read_records(wal_path))
        last = records[-1]
        update_ops = [op for op in last["ops"] if op["op"] == "update"]
        assert len(update_ops) == 1  # intermediate versions collapsed
        recovered = recover(wal_path)
        assert all_rows(recovered)[0]["score"] == 13

    def test_torn_tail_is_skipped(self, wal_db, wal_path):
        connection = wal_db.connect()
        connection.execute("UPDATE users SET score = 99 WHERE id = 1")
        connection.close()
        with open(wal_path, "a") as handle:
            handle.write('{"type": "commit", "txid": 999, "ops": [tor')
        recovered = recover(wal_path)
        assert all_rows(recovered)[0]["score"] == 99

    def test_recovery_preserves_bytes_values(self, tmp_path):
        path = str(tmp_path / "blob.wal")
        db = Database(wal_path=path)
        connection = db.connect()
        connection.execute("CREATE TABLE blobs (id INTEGER PRIMARY KEY, data BLOB)")
        payload = bytes(range(256))
        connection.execute(
            "INSERT INTO blobs (id, data) VALUES (?, ?)", (1, payload)
        )
        connection.close()
        recovered = recover(path)
        rows = all_rows(recovered, "SELECT data FROM blobs")
        assert rows[0]["data"] == payload

    def test_drop_table_replayed(self, wal_db, wal_path):
        wal_db.connect().execute("DROP TABLE users")
        recovered = recover(wal_path)
        assert not recovered.has_table("users")

    def test_recovered_db_remains_usable(self, wal_db, wal_path):
        recovered = recover(wal_path)
        connection = recovered.connect()
        connection.execute(
            "INSERT INTO users (id, name, score) VALUES (9, 'new', 1)"
        )
        assert connection.query_scalar("SELECT COUNT(*) FROM users") == 3


class TestWALFormat:
    def test_records_are_json_lines(self, wal_db, wal_path):
        with open(wal_path) as handle:
            for line in handle:
                json.loads(line)

    def test_commit_order_preserved(self, wal_path):
        db = Database(wal_path=wal_path)
        setup = db.connect()
        setup.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        setup.execute("INSERT INTO t (id, v) VALUES (1, 0)")
        first = db.connect()
        second = db.connect()
        first.begin()
        second.begin()
        first.execute("UPDATE t SET v = 1 WHERE id = 1")
        first.commit()
        # second's snapshot is stale; retry on a fresh transaction.
        second.rollback()
        second.begin()
        second.execute("UPDATE t SET v = 2 WHERE id = 1")
        second.commit()
        recovered = recover(wal_path)
        connection = recovered.connect()
        assert connection.query_scalar("SELECT v FROM t WHERE id = 1") == 2
