"""Snapshot isolation semantics: the heart of the paper's race conditions."""

import pytest

from repro.errors import TransactionAbortedError
from repro.sql.transactions import IsolationLevel


class TestSnapshotReads:
    def test_reads_see_begin_snapshot(self, users_db):
        reader = users_db.connect()
        writer = users_db.connect()
        reader.begin()
        assert reader.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 10
        writer.execute("UPDATE users SET score = 99 WHERE id = 1")
        # The reader's snapshot predates the writer's commit.
        assert reader.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 10
        reader.commit()
        assert reader.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 99

    def test_snapshot_taken_at_begin_not_first_read(self, users_db):
        reader = users_db.connect()
        writer = users_db.connect()
        reader.begin()
        writer.execute("UPDATE users SET score = 99 WHERE id = 1")
        # Even a first read after the writer's commit sees the snapshot.
        assert reader.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 10

    def test_uncommitted_writes_invisible(self, users_db):
        writer = users_db.connect()
        reader = users_db.connect()
        writer.begin()
        writer.execute("UPDATE users SET score = 99 WHERE id = 1")
        assert reader.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 10
        writer.commit()
        assert reader.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 99

    def test_transaction_sees_own_writes(self, users_db):
        connection = users_db.connect()
        connection.begin()
        connection.execute("UPDATE users SET score = 42 WHERE id = 1")
        assert connection.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 42
        connection.rollback()

    def test_inserts_invisible_until_commit(self, users_db):
        writer = users_db.connect()
        reader = users_db.connect()
        writer.begin()
        writer.execute("INSERT INTO users (id, name) VALUES (50, 'ghost')")
        assert reader.query_one(
            "SELECT * FROM users WHERE id = 50"
        ) is None
        writer.commit()
        assert reader.query_one(
            "SELECT * FROM users WHERE id = 50"
        ) is not None

    def test_deletes_invisible_until_commit(self, users_db):
        writer = users_db.connect()
        reader = users_db.connect()
        reader.begin()
        writer.begin()
        writer.execute("DELETE FROM users WHERE id = 1")
        assert reader.query_one("SELECT * FROM users WHERE id = 1") is not None
        writer.commit()
        # Still visible to the old snapshot.
        assert reader.query_one("SELECT * FROM users WHERE id = 1") is not None
        reader.commit()
        fresh = users_db.connect()
        assert fresh.query_one("SELECT * FROM users WHERE id = 1") is None


class TestRollback:
    def test_rollback_discards_updates(self, users_db):
        connection = users_db.connect()
        connection.begin()
        connection.execute("UPDATE users SET score = 0")
        connection.rollback()
        assert connection.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 10

    def test_rollback_discards_inserts(self, users_db):
        connection = users_db.connect()
        connection.begin()
        connection.execute("INSERT INTO users (id, name) VALUES (7, 'x')")
        connection.rollback()
        assert connection.query_one(
            "SELECT * FROM users WHERE id = 7"
        ) is None

    def test_rollback_discards_deletes(self, users_db):
        connection = users_db.connect()
        connection.begin()
        connection.execute("DELETE FROM users")
        connection.rollback()
        assert connection.query_scalar("SELECT COUNT(*) FROM users") == 3


class TestWriteWriteConflicts:
    def test_concurrent_update_same_row_aborts_second(self, users_db):
        first = users_db.connect()
        second = users_db.connect()
        first.begin()
        second.begin()
        first.execute("UPDATE users SET score = 1 WHERE id = 1")
        with pytest.raises(TransactionAbortedError):
            second.execute("UPDATE users SET score = 2 WHERE id = 1")
        assert not second.in_transaction
        first.commit()
        fresh = users_db.connect()
        assert fresh.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 1

    def test_update_after_concurrent_commit_aborts(self, users_db):
        stale = users_db.connect()
        fresh = users_db.connect()
        stale.begin()
        stale.query_scalar("SELECT score FROM users WHERE id = 1")
        fresh.execute("UPDATE users SET score = 50 WHERE id = 1")
        with pytest.raises(TransactionAbortedError):
            stale.execute("UPDATE users SET score = 60 WHERE id = 1")

    def test_update_after_concurrent_abort_succeeds(self, users_db):
        first = users_db.connect()
        second = users_db.connect()
        first.begin()
        first.execute("UPDATE users SET score = 1 WHERE id = 1")
        first.rollback()
        second.execute("UPDATE users SET score = 2 WHERE id = 1")
        assert second.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 2

    def test_delete_delete_conflict(self, users_db):
        first = users_db.connect()
        second = users_db.connect()
        first.begin()
        second.begin()
        first.execute("DELETE FROM users WHERE id = 1")
        with pytest.raises(TransactionAbortedError):
            second.execute("DELETE FROM users WHERE id = 1")

    def test_disjoint_rows_do_not_conflict(self, users_db):
        first = users_db.connect()
        second = users_db.connect()
        first.begin()
        second.begin()
        first.execute("UPDATE users SET score = 1 WHERE id = 1")
        second.execute("UPDATE users SET score = 2 WHERE id = 2")
        first.commit()
        second.commit()
        fresh = users_db.connect()
        assert fresh.query_scalar("SELECT score FROM users WHERE id = 1") == 1
        assert fresh.query_scalar("SELECT score FROM users WHERE id = 2") == 2

    def test_concurrent_insert_same_pk_aborts_second(self, users_db):
        first = users_db.connect()
        second = users_db.connect()
        first.begin()
        second.begin()
        first.execute("INSERT INTO users (id, name) VALUES (77, 'a')")
        with pytest.raises(TransactionAbortedError):
            second.execute("INSERT INTO users (id, name) VALUES (77, 'b')")
        first.commit()

    def test_lost_update_prevented(self, users_db):
        """The classic SI guarantee: two increment transactions cannot
        both read 10 and both write 11."""
        first = users_db.connect()
        second = users_db.connect()
        first.begin()
        second.begin()
        first_score = first.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        )
        second_score = second.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        )
        first.execute(
            "UPDATE users SET score = ? WHERE id = 1", (first_score + 1,)
        )
        first.commit()
        with pytest.raises(TransactionAbortedError):
            second.execute(
                "UPDATE users SET score = ? WHERE id = 1",
                (second_score + 1,),
            )
        fresh = users_db.connect()
        assert fresh.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 11


class TestWriteSkewIsAllowed:
    def test_si_permits_write_skew(self, users_db):
        """Snapshot isolation famously permits write skew (disjoint write
        sets); the engine must NOT be stricter than SI or the paper's
        premises change."""
        first = users_db.connect()
        second = users_db.connect()
        first.begin()
        second.begin()
        total_first = first.query_scalar("SELECT SUM(score) FROM users")
        total_second = second.query_scalar("SELECT SUM(score) FROM users")
        assert total_first == total_second == 60
        first.execute("UPDATE users SET score = 0 WHERE id = 1")
        second.execute("UPDATE users SET score = 0 WHERE id = 2")
        first.commit()
        second.commit()  # both commit: write skew admitted


class TestReadCommittedMode:
    def test_read_committed_re_snapshots_each_statement(self, users_db):
        reader = users_db.connect(isolation=IsolationLevel.READ_COMMITTED)
        writer = users_db.connect()
        reader.begin()
        assert reader.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 10
        writer.execute("UPDATE users SET score = 99 WHERE id = 1")
        assert reader.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 99
        reader.commit()


class TestVacuum:
    def test_vacuum_reclaims_dead_versions(self, users_db):
        connection = users_db.connect()
        for i in range(10):
            connection.execute(
                "UPDATE users SET score = ? WHERE id = 1", (i,)
            )
        storage = users_db.storage("users")
        assert storage.version_count() > 3
        reclaimed = users_db.vacuum()
        assert reclaimed > 0
        assert storage.version_count() == 3
        assert connection.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 9

    def test_vacuum_respects_active_snapshots(self, users_db):
        reader = users_db.connect()
        writer = users_db.connect()
        reader.begin()
        reader.query_scalar("SELECT score FROM users WHERE id = 1")
        writer.execute("UPDATE users SET score = 99 WHERE id = 1")
        users_db.vacuum()
        # The old version must survive: the reader still needs it.
        assert reader.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 10
        reader.commit()

    def test_vacuum_removes_fully_deleted_rows(self, users_db):
        connection = users_db.connect()
        connection.execute("DELETE FROM users WHERE id = 3")
        storage = users_db.storage("users")
        assert storage.row_count() == 3
        users_db.vacuum()
        assert storage.row_count() == 2

    def test_vacuum_drops_aborted_versions(self, users_db):
        connection = users_db.connect()
        connection.begin()
        connection.execute("INSERT INTO users (id, name) VALUES (42, 'x')")
        connection.rollback()
        storage = users_db.storage("users")
        assert storage.row_count() == 4
        users_db.vacuum()
        assert storage.row_count() == 3


class TestOnCommitHooks:
    def test_on_commit_runs_after_commit(self, users_db):
        events = []
        connection = users_db.connect()
        connection.begin()
        connection.execute("UPDATE users SET score = 1 WHERE id = 1")
        connection.on_commit(lambda: events.append("committed"))
        assert events == []
        connection.commit()
        assert events == ["committed"]

    def test_on_commit_skipped_on_rollback(self, users_db):
        events = []
        connection = users_db.connect()
        connection.begin()
        connection.on_commit(lambda: events.append("committed"))
        connection.rollback()
        assert events == []

    def test_on_commit_order_matches_commit_order(self, users_db):
        events = []
        first = users_db.connect()
        second = users_db.connect()
        first.begin()
        second.begin()
        first.execute("UPDATE users SET score = 1 WHERE id = 1")
        second.execute("UPDATE users SET score = 1 WHERE id = 2")
        first.on_commit(lambda: events.append("first"))
        second.on_commit(lambda: events.append("second"))
        second.commit()
        first.commit()
        assert events == ["second", "first"]
