"""Column types and TableSchema validation."""

import pytest

from repro.errors import IntegrityError, SchemaError
from repro.sql.schema import Column, TableSchema
from repro.sql.types import (
    BLOB,
    FLOAT,
    INTEGER,
    TEXT,
    type_by_name,
)


class TestTypes:
    def test_integer_coercions(self):
        assert INTEGER.coerce(5) == 5
        assert INTEGER.coerce("7") == 7
        assert INTEGER.coerce(3.0) == 3
        assert INTEGER.coerce(True) == 1
        assert INTEGER.coerce(None) is None
        with pytest.raises(TypeError):
            INTEGER.coerce(3.5)
        with pytest.raises(ValueError):
            INTEGER.coerce("abc")

    def test_float_coercions(self):
        assert FLOAT.coerce(3) == 3.0
        assert FLOAT.coerce("2.5") == 2.5
        with pytest.raises(TypeError):
            FLOAT.coerce(b"bytes")

    def test_text_coercions(self):
        assert TEXT.coerce("x") == "x"
        assert TEXT.coerce(None) is None
        with pytest.raises(TypeError):
            TEXT.coerce(5)

    def test_blob_coercions(self):
        assert BLOB.coerce(b"x") == b"x"
        assert BLOB.coerce(bytearray(b"y")) == b"y"
        with pytest.raises(TypeError):
            BLOB.coerce("str")

    def test_type_by_name_aliases(self):
        assert type_by_name("int") is INTEGER
        assert type_by_name("BIGINT") is INTEGER
        assert type_by_name("varchar") is TEXT
        assert type_by_name("REAL") is FLOAT
        with pytest.raises(SchemaError):
            type_by_name("JSONB")

    def test_type_equality_by_class(self):
        assert INTEGER == type_by_name("integer")
        assert INTEGER != TEXT


class TestTableSchema:
    def make(self):
        return TableSchema(
            "t",
            [
                Column("id", INTEGER, nullable=False),
                Column("name", TEXT),
                Column("score", FLOAT),
            ],
            primary_key=("id",),
        )

    def test_column_lookup_case_insensitive(self):
        schema = self.make()
        assert schema.column_index("NAME") == 1
        assert schema.has_column("Score")
        assert not schema.has_column("ghost")
        with pytest.raises(SchemaError):
            schema.column_index("ghost")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t", [Column("a", INTEGER), Column("A", TEXT)]
            )

    def test_empty_table_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_unknown_pk_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", INTEGER)], primary_key=("b",))

    def test_pk_columns_become_not_null(self):
        schema = self.make()
        assert not schema.column("id").nullable

    def test_coerce_row_defaults_and_checks(self):
        schema = self.make()
        row = schema.coerce_row({"id": "5", "score": 1})
        assert row == (5, None, 1.0)
        with pytest.raises(IntegrityError):
            schema.coerce_row({"name": "no-id"})
        with pytest.raises(SchemaError):
            schema.coerce_row({"id": 1, "ghost": 2})
        with pytest.raises(IntegrityError):
            schema.coerce_row({"id": "not-a-number"})

    def test_pk_value_and_row_dict(self):
        schema = self.make()
        row = schema.coerce_row({"id": 9, "name": "n"})
        assert schema.pk_value(row) == (9,)
        assert schema.row_dict(row) == {"id": 9, "name": "n", "score": None}

    def test_composite_pk(self):
        schema = TableSchema(
            "f",
            [Column("a", INTEGER), Column("b", INTEGER)],
            primary_key=("a", "b"),
        )
        row = schema.coerce_row({"a": 1, "b": 2})
        assert schema.pk_value(row) == (1, 2)

    def test_no_pk_returns_none(self):
        schema = TableSchema("t", [Column("a", INTEGER)])
        assert schema.pk_value((1,)) is None
