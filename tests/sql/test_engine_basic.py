"""CRUD, schema handling, and result plumbing of the Database facade."""

import pytest

from repro.errors import (
    IntegrityError,
    SchemaError,
    TransactionStateError,
)
from repro.sql.engine import Database


class TestDDL:
    def test_create_and_query_empty(self, db):
        connection = db.connect()
        connection.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        result = connection.execute("SELECT * FROM t")
        assert list(result) == []
        assert db.has_table("t")

    def test_duplicate_table_rejected(self, db):
        connection = db.connect()
        connection.execute("CREATE TABLE t (id INTEGER)")
        with pytest.raises(SchemaError):
            connection.execute("CREATE TABLE t (id INTEGER)")

    def test_if_not_exists(self, db):
        connection = db.connect()
        connection.execute("CREATE TABLE t (id INTEGER)")
        connection.execute("CREATE TABLE IF NOT EXISTS t (id INTEGER)")

    def test_drop_table(self, db):
        connection = db.connect()
        connection.execute("CREATE TABLE t (id INTEGER)")
        connection.execute("DROP TABLE t")
        assert not db.has_table("t")
        with pytest.raises(SchemaError):
            connection.execute("DROP TABLE t")
        connection.execute("DROP TABLE IF EXISTS t")

    def test_unknown_table_raises(self, db):
        connection = db.connect()
        with pytest.raises(SchemaError):
            connection.execute("SELECT * FROM nope")


class TestInsertSelect:
    def test_round_trip(self, users_db):
        connection = users_db.connect()
        rows = connection.execute("SELECT * FROM users ORDER BY id").rows
        assert [r["name"] for r in rows] == ["alice", "bob", "carol"]

    def test_where_filters(self, users_db):
        connection = users_db.connect()
        rows = connection.execute(
            "SELECT name FROM users WHERE score >= ?", (20,)
        ).rows
        assert sorted(r["name"] for r in rows) == ["bob", "carol"]

    def test_parameter_binding(self, users_db):
        connection = users_db.connect()
        row = connection.query_one(
            "SELECT * FROM users WHERE name = ?", ("bob",)
        )
        assert row["id"] == 2

    def test_query_scalar(self, users_db):
        connection = users_db.connect()
        assert connection.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 10

    def test_rowcount_on_insert(self, users_db):
        connection = users_db.connect()
        result = connection.execute(
            "INSERT INTO users (id, name, score) VALUES (4, 'd', 1),"
            " (5, 'e', 2)"
        )
        assert result.rowcount == 2

    def test_null_handling(self, users_db):
        connection = users_db.connect()
        connection.execute(
            "INSERT INTO users (id, name) VALUES (9, 'noscore')"
        )
        row = connection.query_one("SELECT * FROM users WHERE id = 9")
        assert row["score"] is None
        rows = connection.execute(
            "SELECT name FROM users WHERE score IS NULL"
        ).rows
        assert [r["name"] for r in rows] == ["noscore"]

    def test_order_by_direction(self, users_db):
        connection = users_db.connect()
        rows = connection.execute(
            "SELECT id FROM users ORDER BY score DESC"
        ).rows
        assert [r["id"] for r in rows] == [3, 2, 1]

    def test_limit(self, users_db):
        connection = users_db.connect()
        rows = connection.execute(
            "SELECT id FROM users ORDER BY id LIMIT 2"
        ).rows
        assert [r["id"] for r in rows] == [1, 2]

    def test_limit_param(self, users_db):
        connection = users_db.connect()
        rows = connection.execute(
            "SELECT id FROM users ORDER BY id LIMIT ?", (1,)
        ).rows
        assert len(rows) == 1

    def test_expression_select(self, users_db):
        connection = users_db.connect()
        row = connection.query_one(
            "SELECT score * 2 AS double FROM users WHERE id = 1"
        )
        assert row["double"] == 20


class TestUpdateDelete:
    def test_update(self, users_db):
        connection = users_db.connect()
        result = connection.execute(
            "UPDATE users SET score = score + 5 WHERE id = 1"
        )
        assert result.rowcount == 1
        assert connection.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 15

    def test_update_multiple_rows(self, users_db):
        connection = users_db.connect()
        result = connection.execute("UPDATE users SET score = 0")
        assert result.rowcount == 3

    def test_update_no_match(self, users_db):
        connection = users_db.connect()
        assert connection.execute(
            "UPDATE users SET score = 1 WHERE id = 99"
        ).rowcount == 0

    def test_delete(self, users_db):
        connection = users_db.connect()
        assert connection.execute(
            "DELETE FROM users WHERE id = 2"
        ).rowcount == 1
        assert connection.query_scalar("SELECT COUNT(*) FROM users") == 2

    def test_delete_all(self, users_db):
        connection = users_db.connect()
        connection.execute("DELETE FROM users")
        assert connection.query_scalar("SELECT COUNT(*) FROM users") == 0


class TestConstraints:
    def test_primary_key_uniqueness(self, users_db):
        connection = users_db.connect()
        with pytest.raises(IntegrityError):
            connection.execute(
                "INSERT INTO users (id, name) VALUES (1, 'dup')"
            )

    def test_not_null_enforced(self, users_db):
        connection = users_db.connect()
        with pytest.raises(IntegrityError):
            connection.execute("INSERT INTO users (id) VALUES (10)")

    def test_pk_update_collision(self, users_db):
        connection = users_db.connect()
        with pytest.raises(IntegrityError):
            connection.execute("UPDATE users SET id = 2 WHERE id = 1")

    def test_pk_can_be_reused_after_delete(self, users_db):
        connection = users_db.connect()
        connection.execute("DELETE FROM users WHERE id = 1")
        connection.execute(
            "INSERT INTO users (id, name, score) VALUES (1, 'new', 0)"
        )
        assert connection.query_scalar(
            "SELECT name FROM users WHERE id = 1"
        ) == "new"

    def test_type_coercion_failure(self, users_db):
        connection = users_db.connect()
        with pytest.raises(IntegrityError):
            connection.execute(
                "INSERT INTO users (id, name, score)"
                " VALUES (7, 'x', 'not-a-number')"
            )


class TestConnectionLifecycle:
    def test_closed_connection_rejects_statements(self, users_db):
        connection = users_db.connect()
        connection.close()
        with pytest.raises(TransactionStateError):
            connection.execute("SELECT * FROM users")

    def test_close_aborts_open_transaction(self, users_db):
        connection = users_db.connect()
        connection.begin()
        connection.execute("UPDATE users SET score = 0 WHERE id = 1")
        connection.close()
        fresh = users_db.connect()
        assert fresh.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 10

    def test_context_manager_commits_on_success(self, users_db):
        with users_db.connect() as connection:
            connection.begin()
            connection.execute("UPDATE users SET score = 0 WHERE id = 1")
        fresh = users_db.connect()
        assert fresh.query_scalar("SELECT score FROM users WHERE id = 1") == 0

    def test_context_manager_rolls_back_on_error(self, users_db):
        with pytest.raises(RuntimeError):
            with users_db.connect() as connection:
                connection.begin()
                connection.execute("UPDATE users SET score = 0 WHERE id = 1")
                raise RuntimeError("boom")
        fresh = users_db.connect()
        assert fresh.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 10

    def test_double_begin_rejected(self, users_db):
        connection = users_db.connect()
        connection.begin()
        with pytest.raises(TransactionStateError):
            connection.begin()

    def test_commit_without_begin_rejected(self, users_db):
        connection = users_db.connect()
        with pytest.raises(TransactionStateError):
            connection.commit()


class TestRowAPI:
    def test_attribute_and_index_access(self, users_db):
        connection = users_db.connect()
        row = connection.query_one("SELECT * FROM users WHERE id = 1")
        assert row.name == "alice"
        assert row["NAME"] == "alice"
        assert row[1] == "alice"
        assert row.get("missing", "dflt") == "dflt"

    def test_row_equality_with_dict(self, users_db):
        connection = users_db.connect()
        row = connection.query_one("SELECT id, name FROM users WHERE id = 1")
        assert row == {"id": 1, "name": "alice"}
        assert row == (1, "alice")

    def test_result_set_helpers(self, users_db):
        connection = users_db.connect()
        result = connection.execute("SELECT id FROM users ORDER BY id")
        assert result.first()["id"] == 1
        assert len(result) == 3
        assert result[2]["id"] == 3
        empty = connection.execute("SELECT id FROM users WHERE id = 99")
        assert empty.first() is None
        assert empty.scalar() is None
