"""Unit tests for the tracer: no-op mode, recorders, context propagation."""

import json
import threading

from repro.obs.trace import (
    JSONLRecorder,
    RingBufferRecorder,
    Tracer,
    current_trace_id,
    get_tracer,
    recording,
    trace_context,
)


class TestNoOpMode:
    def test_inactive_by_default(self):
        tracer = Tracer()
        assert tracer.active is False
        assert tracer.emit("anything", key="k") is None

    def test_recorder_activates(self):
        tracer = Tracer()
        recorder = RingBufferRecorder()
        assert tracer.set_recorder(recorder) is None
        assert tracer.active is True
        assert tracer.set_recorder(None) is recorder
        assert tracer.active is False

    def test_listener_activates(self):
        tracer = Tracer()
        seen = []
        tracer.add_listener(seen.append)
        assert tracer.active is True
        tracer.emit("ping")
        tracer.remove_listener(seen.append)
        assert tracer.active is False
        assert [event.name for event in seen] == ["ping"]

    def test_disabled_emit_records_nothing(self):
        tracer = Tracer()
        recorder = RingBufferRecorder()
        tracer.set_recorder(recorder)
        tracer.set_recorder(None)
        tracer.emit("dropped")
        assert recorder.seen == 0


class TestEmission:
    def test_event_shape(self):
        tracer = Tracer()
        recorder = RingBufferRecorder()
        tracer.set_recorder(recorder)
        tracer.emit("lease.i.grant", key="k", tid=7, token=3, srv="iq1")
        (event,) = recorder.events()
        assert event.name == "lease.i.grant"
        assert event.key == "k"
        assert event.tid == 7
        assert event.get("token") == 3
        assert event.get("srv") == "iq1"
        assert event.get("missing", "d") == "d"
        assert event.ts >= 0

    def test_timestamps_monotonic(self):
        tracer = Tracer()
        recorder = RingBufferRecorder()
        tracer.set_recorder(recorder)
        for _ in range(5):
            tracer.emit("tick")
        stamps = [event.ts for event in recorder.events()]
        assert stamps == sorted(stamps)

    def test_new_trace_ids_unique(self):
        tracer = Tracer()
        ids = [tracer.new_trace() for _ in range(10)]
        assert len(set(ids)) == 10
        assert ids == sorted(ids)

    def test_trace_id_from_ambient_context(self):
        tracer = Tracer()
        recorder = RingBufferRecorder()
        tracer.set_recorder(recorder)
        with trace_context(42):
            tracer.emit("inner")
        tracer.emit("outer")
        inner, outer = recorder.events()
        assert inner.trace_id == 42
        assert outer.trace_id is None

    def test_explicit_trace_id_wins(self):
        tracer = Tracer()
        recorder = RingBufferRecorder()
        tracer.set_recorder(recorder)
        with trace_context(1):
            tracer.emit("event", trace_id=99)
        (event,) = recorder.events()
        assert event.trace_id == 99

    def test_span_emits_begin_end_with_duration(self):
        tracer = Tracer()
        recorder = RingBufferRecorder()
        tracer.set_recorder(recorder)
        with tracer.span("op", key="k"):
            pass
        begin, end = recorder.events()
        assert begin.name == "op.begin"
        assert end.name == "op.end"
        assert end.get("duration") >= 0

    def test_to_dict_omits_empty_fields(self):
        tracer = Tracer()
        recorder = RingBufferRecorder()
        tracer.set_recorder(recorder)
        tracer.emit("bare")
        (event,) = recorder.events()
        record = event.to_dict()
        assert set(record) == {"ts", "name"}


class TestContextPropagation:
    def test_nested_contexts_restore(self):
        with trace_context(1):
            assert current_trace_id() == 1
            with trace_context(2):
                assert current_trace_id() == 2
            assert current_trace_id() == 1
        assert current_trace_id() is None

    def test_none_context_is_transparent(self):
        with trace_context(5):
            with trace_context(None):
                assert current_trace_id() == 5
            assert current_trace_id() == 5

    def test_context_is_per_thread(self):
        observed = {}

        def worker():
            observed["child"] = current_trace_id()

        with trace_context(7):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert observed["child"] is None


class TestRingBufferRecorder:
    def test_bounded_with_drop_accounting(self):
        recorder = RingBufferRecorder(capacity=4)
        tracer = Tracer()
        tracer.set_recorder(recorder)
        for index in range(10):
            tracer.emit("e{}".format(index))
        assert len(recorder) == 4
        assert recorder.seen == 10
        assert recorder.dropped == 6
        assert [event.name for event in recorder.events()] == [
            "e6", "e7", "e8", "e9",
        ]

    def test_clear(self):
        recorder = RingBufferRecorder()
        tracer = Tracer()
        tracer.set_recorder(recorder)
        tracer.emit("x")
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.seen == 0


class TestJSONLRecorder:
    def test_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        recorder = JSONLRecorder(path)
        tracer = Tracer()
        tracer.set_recorder(recorder)
        with trace_context(3):
            tracer.emit("lease.q.grant", key="k", tid=9, mode="exclusive")
        tracer.emit("store.set", key="k")
        recorder.close()
        with open(path) as handle:
            lines = [json.loads(line) for line in handle]
        assert len(lines) == 2
        assert lines[0]["name"] == "lease.q.grant"
        assert lines[0]["trace"] == 3
        assert lines[0]["tid"] == 9
        assert lines[0]["mode"] == "exclusive"
        assert lines[1]["name"] == "store.set"
        assert recorder.seen == 2


class TestRecordingContextManager:
    def test_installs_and_restores_on_global_tracer(self):
        tracer = get_tracer()
        before = tracer.recorder
        with recording() as recorder:
            assert tracer.recorder is recorder
            tracer.emit("during")
        assert tracer.recorder is before
        assert [event.name for event in recorder.events()] == ["during"]
