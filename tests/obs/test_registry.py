"""Unit tests for the metrics registry and its Prometheus exporter."""

import threading

import pytest

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0

    def test_thread_safety(self):
        counter = Counter("c")

        def spin():
            for _ in range(10000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 40000


class TestGauge:
    def test_up_and_down(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7
        gauge.reset()
        assert gauge.value == 0


class TestHistogram:
    def test_nearest_rank_percentiles(self):
        histogram = Histogram("h")
        histogram.observe_many(range(1, 101))
        assert histogram.percentile(0.5) == 50
        assert histogram.percentile(0.95) == 95
        assert histogram.percentile(1.0) == 100
        assert histogram.mean() == 50.5
        assert histogram.max() == 100
        assert histogram.count == 100
        assert histogram.total == 5050

    def test_empty(self):
        histogram = Histogram("h")
        assert histogram.percentile(0.5) is None
        assert histogram.mean() is None
        assert histogram.max() is None
        assert len(histogram) == 0

    def test_bad_fraction(self):
        histogram = Histogram("h")
        with pytest.raises(ValueError):
            histogram.percentile(0.0)
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_collect_shape(self):
        histogram = Histogram("h")
        histogram.observe(3)
        collected = histogram.collect()
        assert collected["count"] == 1
        assert collected["sum"] == 3
        assert collected["quantiles"]["0.5"] == 3


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("hits", help="cache hits")
        second = registry.counter("hits")
        assert first is second
        assert len(registry) == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_names_and_get(self):
        registry = MetricsRegistry()
        registry.gauge("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]
        assert registry.get("a").kind == "counter"
        assert registry.get("nope") is None

    def test_reset_all(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.histogram("h").observe(1)
        registry.reset()
        assert registry.counter("c").value == 0
        assert registry.histogram("h").count == 0

    def test_collect(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(3)
        collected = {item["name"]: item for item in registry.collect()}
        assert collected["c"]["value"] == 2
        assert collected["g"]["value"] == 3


class TestPrometheusRender:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", help="total requests").inc(7)
        registry.gauge("depth").set(2)
        text = registry.render_prometheus()
        assert "# HELP requests_total total requests" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 7" in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text
        assert text.endswith("\n")

    def test_histogram_renders_as_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds")
        histogram.observe_many([1, 2, 3, 4])
        text = registry.render_prometheus()
        assert "# TYPE latency_seconds summary" in text
        assert 'latency_seconds{quantile="0.5"} 2' in text
        assert "latency_seconds_count 4" in text
        assert "latency_seconds_sum 10" in text

    def test_empty_histogram_renders_count_only(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        text = registry.render_prometheus()
        assert "quantile" not in text
        assert "h_count 0" in text
