"""Trace-ID propagation: over the wire protocol and across shard fan-out.

The client mints one trace id for a session; the test asserts that
events emitted by *other* layers -- a TCP server's lease table, each
shard of a router -- carry the same id, i.e. the ``@t`` wire token and
the contextvar propagation stitch one end-to-end trace together.
"""

import pytest

from repro.core.iq_server import IQServer
from repro.net import RemoteIQServer, serve_background
from repro.net.protocol import split_trace_token
from repro.obs.trace import get_tracer, recording, trace_context
from repro.sharding import ShardedIQServer


def named(events, name):
    return [event for event in events if event.name == name]


class TestSplitTraceToken:
    def test_strips_well_formed_token(self):
        assert split_trace_token(["7", "k", "@t42"]) == (["7", "k"], 42)

    def test_no_token(self):
        assert split_trace_token(["7", "k"]) == (["7", "k"], None)
        assert split_trace_token([]) == ([], None)

    def test_malformed_token_left_in_place(self):
        args = ["7", "k", "@txyz"]
        assert split_trace_token(args) == (args, None)


@pytest.fixture
def remote():
    server, _thread = serve_background()
    client = RemoteIQServer(port=server.port)
    yield client
    client.close()
    server.shutdown()


class TestWirePropagation:
    def test_server_side_events_carry_client_trace_id(self, remote):
        tracer = get_tracer()
        with recording() as recorder:
            trace_id = tracer.new_trace()
            with trace_context(trace_id):
                tid = remote.gen_id()
                remote.qar(tid, "wirekey")
                remote.commit(tid)
        events = recorder.events()
        # The lease events are emitted inside the server's handler
        # thread; only the @t token can have carried the id across.
        grants = [event for event in named(events, "lease.q.grant")
                  if event.key == "wirekey"]
        releases = [event for event in named(events, "lease.q.release")
                    if event.key == "wirekey"]
        assert grants and releases
        assert all(event.trace_id == trace_id for event in grants + releases)

    def test_untraced_commands_have_no_trace_id(self, remote):
        with recording() as recorder:
            tid = remote.gen_id()
            remote.qar(tid, "plainkey")
            remote.commit(tid)
        grants = [event for event in named(recorder.events(), "lease.q.grant")
                  if event.key == "plainkey"]
        assert grants
        assert all(event.trace_id is None for event in grants)

    def test_data_block_commands_unaffected_by_token(self, remote):
        tracer = get_tracer()
        with recording():
            with trace_context(tracer.new_trace()):
                tid = remote.gen_id()
                assert remote.qaread("dkey", tid) is not None or True
                assert remote.sar("dkey", b"payload", tid)
                remote.commit(tid)
        assert remote.get("dkey") == (b"payload", 0)

    def test_wire_still_works_with_tracing_disabled(self, remote):
        tid = remote.gen_id()
        remote.qar(tid, "offkey")
        assert remote.commit(tid)


class TestShardFanOutPropagation:
    def _spanning_keys(self, router, count=24):
        keys = ["user:{}".format(index) for index in range(count)]
        names = {router.shard_name_for(key) for key in keys}
        assert len(names) >= 2, "keys did not span shards"
        return keys

    def test_per_shard_legs_carry_router_session_trace(self):
        shards = [IQServer(), IQServer(), IQServer()]
        router = ShardedIQServer(shards)
        tracer = get_tracer()
        with recording() as recorder:
            trace_id = tracer.new_trace()
            with trace_context(trace_id):
                tid = router.gen_id()
                for key in self._spanning_keys(router):
                    router.qar(tid, key)
                assert router.commit(tid)
        events = recorder.events()
        grants = named(events, "lease.q.grant")
        servers = {event.get("srv") for event in grants}
        assert len(servers) >= 2
        assert all(event.trace_id == trace_id for event in grants)
        routes = named(events, "shard.route")
        assert len({event.get("shard") for event in routes}) >= 2
        assert all(event.trace_id == trace_id for event in routes)
        legs = named(events, "shard.commit.leg")
        assert legs
        assert all(event.get("outcome") == "applied" for event in legs)
        assert all(event.trace_id == trace_id for event in legs)

    def test_networked_shards_carry_trace_end_to_end(self):
        backends = []
        servers = []
        for _ in range(2):
            server, _thread = serve_background()
            servers.append(server)
            backends.append(RemoteIQServer(port=server.port))
        router = ShardedIQServer(backends)
        tracer = get_tracer()
        try:
            with recording() as recorder:
                trace_id = tracer.new_trace()
                with trace_context(trace_id):
                    tid = router.gen_id()
                    for key in self._spanning_keys(router):
                        router.qar(tid, key)
                    assert router.commit(tid)
            grants = named(recorder.events(), "lease.q.grant")
            srv_names = {event.get("srv") for event in grants}
            # Both TCP servers' in-process lease tables saw the trace.
            assert len(srv_names) >= 2
            assert all(event.trace_id == trace_id for event in grants)
        finally:
            for backend in backends:
                backend.close()
            for server in servers:
                server.shutdown()
