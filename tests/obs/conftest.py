"""Guard the process-global tracer: every test leaves it as it found it."""

import pytest

from repro.obs.trace import get_tracer


@pytest.fixture(autouse=True)
def clean_global_tracer():
    tracer = get_tracer()
    recorder_before = tracer.recorder
    listeners_before = list(tracer._listeners)
    yield
    tracer.set_recorder(recorder_before)
    with tracer._lock:
        tracer._listeners[:] = listeners_before
        tracer._refresh_active()
