"""Observability over live systems: audited BG runs and seeded violations.

The auditor is only trustworthy if it is quiet on a correct system *and*
loud on a broken one.  Both directions are asserted here: a normal BG
run under the IQ framework audits clean, and a fault-injected server
that skips the I-lease void on Q grant -- the exact protocol hole the
paper's Figure 5a row I closes -- is flagged with the expected category.
"""

from repro.bg.actions import Technique
from repro.bg.harness import build_bg_system
from repro.bg.workload import HIGH_WRITE_MIX
from repro.core.iq_client import IQClient
from repro.core.iq_server import IQServer
from repro.faults import FaultInjector, FaultPlan
from repro.obs.audit import CATEGORY_UNVOIDED_I, audited
from repro.obs.trace import get_tracer


class TestBGSystemObservability:
    def test_traced_audited_run_is_clean(self):
        system = build_bg_system(
            members=60, friends_per_member=6, resources_per_member=2,
            technique=Technique.INVALIDATE, mix=HIGH_WRITE_MIX,
            trace=True, audit=True,
        )
        try:
            system.runner.run(threads=4, ops_per_thread=25)
            report = system.audit_report()
            assert report is not None
            assert report.events_seen > 0
            assert report.clean, report.summary()
            assert system.recorder.seen > 0
            assert system.trace_events()
        finally:
            system.stop_observability()
        assert not get_tracer().active

    def test_refresh_technique_audits_clean(self):
        # Refresh takes the exclusive-Q / SaR path -- the other half of
        # the auditor's grant and release rules.
        system = build_bg_system(
            members=60, friends_per_member=6, resources_per_member=2,
            technique=Technique.REFRESH, mix=HIGH_WRITE_MIX,
            trace=True, audit=True,
        )
        try:
            system.runner.run(threads=4, ops_per_thread=25)
            report = system.audit_report()
            assert report.clean, report.summary()
        finally:
            system.stop_observability()

    def test_sharded_run_audits_clean(self):
        system = build_bg_system(
            members=60, friends_per_member=6, resources_per_member=2,
            technique=Technique.INVALIDATE, mix=HIGH_WRITE_MIX,
            shards=3, trace=True, audit=True,
        )
        try:
            system.runner.run(threads=4, ops_per_thread=25)
            report = system.audit_report()
            assert report.clean, report.summary()
        finally:
            system.stop_observability()

    def test_untraced_system_has_no_observability(self):
        system = build_bg_system(members=40, friends_per_member=4)
        assert system.recorder is None
        assert system.auditor is None
        assert system.audit_report() is None
        assert system.trace_events() == []


class TestSeededViolation:
    def test_suppressed_i_void_is_flagged(self):
        server = IQServer()
        server.leases.fault_injector = FaultInjector(
            FaultPlan.suppress_i_void(nth=1)
        )
        client = IQClient(server)
        with audited() as auditor:
            # Reader takes an I lease on a miss and holds it (no IQset
            # yet) ...
            result = server.iq_get("hot")
            assert result.has_lease
            # ... while a writer's Q grant arrives.  The injected fault
            # suppresses the I-void, recreating the stale-IQset hole.
            tid = client.gen_id()
            client.qar(tid, "hot")
            client.commit(tid)
        report = auditor.report()
        assert CATEGORY_UNVOIDED_I in report.by_category()
        assert report.by_category()[CATEGORY_UNVOIDED_I] == 1

    def test_same_sequence_without_fault_is_clean(self):
        server = IQServer()
        client = IQClient(server)
        with audited() as auditor:
            result = server.iq_get("hot")
            assert result.has_lease
            tid = client.gen_id()
            client.qar(tid, "hot")
            client.commit(tid)
        assert auditor.report().clean, auditor.report().summary()

    def test_fault_fires_only_nth_grant(self):
        server = IQServer()
        server.leases.fault_injector = FaultInjector(
            FaultPlan.suppress_i_void(nth=2)
        )
        client = IQClient(server)
        with audited() as auditor:
            for _ in range(3):
                result = server.iq_get("hot")
                tid = client.gen_id()
                client.qar(tid, "hot")
                client.commit(tid)
        counts = auditor.report().by_category()
        assert counts.get(CATEGORY_UNVOIDED_I, 0) == 1
