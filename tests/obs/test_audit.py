"""Auditor unit tests: synthetic event streams for every violation category.

Each test feeds a hand-built stream of :class:`TraceEvent` objects into a
fresh :class:`IQAuditor` -- no server involved -- so every invariant is
exercised both ways: the well-formed protocol sequence stays clean, the
minimally-broken variant is flagged with exactly the expected category.
"""

import itertools

from repro.obs.audit import (
    ALL_CATEGORIES,
    CATEGORY_DOUBLE_I,
    CATEGORY_EARLY_APPLY,
    CATEGORY_EXCLUSIVE_COGRANT,
    CATEGORY_ORPHAN_RELEASE,
    CATEGORY_UNVOIDED_I,
    IQAuditor,
    audited,
)
from repro.obs.trace import TraceEvent, get_tracer

_TS = itertools.count(1)


def ev(name, key=None, tid=None, trace=None, **fields):
    return TraceEvent(next(_TS), name, trace_id=trace, key=key, tid=tid,
                      fields=fields or None)


def run(events):
    auditor = IQAuditor()
    for event in events:
        auditor.observe(event)
    return auditor.report()


class TestDoubleIGrant:
    def test_flags_second_grant_while_live(self):
        report = run([
            ev("lease.i.grant", key="k", token=1, srv="iq1"),
            ev("lease.i.grant", key="k", token=2, srv="iq1"),
        ])
        assert report.by_category() == {CATEGORY_DOUBLE_I: 1}

    def test_clean_after_redeem_void_or_expire(self):
        for retire in ("lease.i.redeem", "lease.i.void", "lease.i.expire"):
            report = run([
                ev("lease.i.grant", key="k", token=1, srv="iq1"),
                ev(retire, key="k", token=1, srv="iq1"),
                ev("lease.i.grant", key="k", token=2, srv="iq1"),
            ])
            assert report.clean, retire

    def test_same_key_on_different_servers_is_clean(self):
        report = run([
            ev("lease.i.grant", key="k", token=1, srv="iq1"),
            ev("lease.i.grant", key="k", token=1, srv="iq2"),
        ])
        assert report.clean

    def test_different_keys_are_independent(self):
        report = run([
            ev("lease.i.grant", key="a", token=1, srv="iq1"),
            ev("lease.i.grant", key="b", token=2, srv="iq1"),
        ])
        assert report.clean


class TestQGrantLeftIAlive:
    def test_flags_grant_over_live_i(self):
        report = run([
            ev("lease.i.grant", key="k", token=1, srv="iq1"),
            ev("lease.q.grant", key="k", tid=7, mode="shared-invalidate",
               srv="iq1"),
        ])
        assert report.by_category() == {CATEGORY_UNVOIDED_I: 1}

    def test_clean_when_void_precedes_grant(self):
        report = run([
            ev("lease.i.grant", key="k", token=1, srv="iq1"),
            ev("lease.i.void", key="k", srv="iq1"),
            ev("lease.q.grant", key="k", tid=7, mode="shared-invalidate",
               srv="iq1"),
        ])
        assert report.clean

    def test_flagged_once_not_repeatedly(self):
        report = run([
            ev("lease.i.grant", key="k", token=1, srv="iq1"),
            ev("lease.q.grant", key="k", tid=7, mode="shared-invalidate",
               srv="iq1"),
            ev("lease.q.grant", key="k", tid=8, mode="shared-invalidate",
               srv="iq1"),
        ])
        assert report.by_category() == {CATEGORY_UNVOIDED_I: 1}


class TestExclusiveCoGrant:
    def test_two_exclusive_holders_flagged(self):
        report = run([
            ev("lease.q.grant", key="k", tid=1, mode="exclusive", srv="iq1"),
            ev("lease.q.grant", key="k", tid=2, mode="exclusive", srv="iq1"),
        ])
        assert report.by_category() == {CATEGORY_EXCLUSIVE_COGRANT: 1}

    def test_mixed_mode_flagged_either_order(self):
        for first, second in (("exclusive", "shared-invalidate"),
                              ("shared-invalidate", "exclusive")):
            report = run([
                ev("lease.q.grant", key="k", tid=1, mode=first, srv="iq1"),
                ev("lease.q.grant", key="k", tid=2, mode=second, srv="iq1"),
            ])
            assert report.categories() == {CATEGORY_EXCLUSIVE_COGRANT}

    def test_shared_invalidate_cogrant_is_legal(self):
        report = run([
            ev("lease.q.grant", key="k", tid=1, mode="shared-invalidate",
               srv="iq1"),
            ev("lease.q.grant", key="k", tid=2, mode="shared-invalidate",
               srv="iq1"),
        ])
        assert report.clean

    def test_renewal_by_same_session_is_legal(self):
        report = run([
            ev("lease.q.grant", key="k", tid=1, mode="exclusive", srv="iq1"),
            ev("lease.q.grant", key="k", tid=1, mode="exclusive",
               renewed=True, srv="iq1"),
        ])
        assert report.clean

    def test_sequential_exclusive_holders_are_legal(self):
        report = run([
            ev("lease.q.grant", key="k", tid=1, mode="exclusive", srv="iq1"),
            ev("iq.commit.begin", tid=1, srv="iq1"),
            ev("lease.q.release", key="k", tid=1, srv="iq1"),
            ev("iq.commit.end", tid=1, srv="iq1"),
            ev("lease.q.grant", key="k", tid=2, mode="exclusive", srv="iq1"),
        ])
        assert report.clean


class TestOrphanRelease:
    def test_release_outside_any_window_flagged(self):
        report = run([
            ev("lease.q.grant", key="k", tid=1, mode="shared-invalidate",
               srv="iq1"),
            ev("lease.q.release", key="k", tid=1, srv="iq1"),
        ])
        assert report.by_category() == {CATEGORY_ORPHAN_RELEASE: 1}

    def test_release_inside_commit_window_is_legal(self):
        report = run([
            ev("lease.q.grant", key="k", tid=1, mode="shared-invalidate",
               srv="iq1"),
            ev("iq.commit.begin", tid=1, srv="iq1"),
            ev("lease.q.release", key="k", tid=1, srv="iq1"),
            ev("iq.commit.end", tid=1, srv="iq1"),
        ])
        assert report.clean

    def test_release_inside_abort_window_is_legal(self):
        report = run([
            ev("lease.q.grant", key="k", tid=1, mode="exclusive", srv="iq1"),
            ev("iq.abort.begin", tid=1, srv="iq1"),
            ev("lease.q.release", key="k", tid=1, srv="iq1"),
            ev("iq.abort.end", tid=1, srv="iq1"),
        ])
        assert report.clean

    def test_release_after_sar_is_legal(self):
        report = run([
            ev("lease.q.grant", key="k", tid=1, mode="exclusive", srv="iq1"),
            ev("iq.sar", key="k", tid=1, stored=True, srv="iq1"),
            ev("lease.q.release", key="k", tid=1, srv="iq1"),
        ])
        assert report.clean

    def test_sar_window_is_per_key(self):
        report = run([
            ev("lease.q.grant", key="a", tid=1, mode="exclusive", srv="iq1"),
            ev("lease.q.grant", key="b", tid=1, mode="exclusive", srv="iq1"),
            ev("iq.sar", key="a", tid=1, stored=True, srv="iq1"),
            ev("lease.q.release", key="b", tid=1, srv="iq1"),
        ])
        assert report.by_category() == {CATEGORY_ORPHAN_RELEASE: 1}

    def test_window_closes_with_terminator(self):
        report = run([
            ev("lease.q.grant", key="k", tid=1, mode="shared-invalidate",
               srv="iq1"),
            ev("iq.commit.begin", tid=1, srv="iq1"),
            ev("iq.commit.end", tid=1, srv="iq1"),
            ev("lease.q.release", key="k", tid=1, srv="iq1"),
        ])
        assert report.by_category() == {CATEGORY_ORPHAN_RELEASE: 1}

    def test_expiry_is_not_a_release(self):
        report = run([
            ev("lease.q.grant", key="k", tid=1, mode="shared-invalidate",
               srv="iq1"),
            ev("lease.q.expire", key="k", tid=1, srv="iq1"),
        ])
        assert report.clean


class TestEarlyApply:
    def test_apply_before_sql_commit_flagged(self):
        report = run([
            ev("session.begin", tid=1, trace=10),
            ev("kvs.apply", key="k", tid=1, trace=10, op="delete",
               srv="iq1"),
        ])
        assert report.by_category() == {CATEGORY_EARLY_APPLY: 1}

    def test_apply_after_sql_commit_is_legal(self):
        report = run([
            ev("session.begin", tid=1, trace=10),
            ev("session.sql_commit", tid=1, trace=10),
            ev("kvs.apply", key="k", tid=1, trace=10, op="delete",
               srv="iq1"),
            ev("session.end", tid=1, trace=10, how="commit"),
        ])
        assert report.clean

    def test_stored_sar_before_sql_commit_flagged(self):
        report = run([
            ev("session.begin", tid=1, trace=10),
            ev("iq.sar", key="k", tid=1, trace=10, stored=True, srv="iq1"),
        ])
        assert report.by_category() == {CATEGORY_EARLY_APPLY: 1}

    def test_untraced_apply_not_checked(self):
        report = run([
            ev("kvs.apply", key="k", tid=1, op="delete", srv="iq1"),
        ])
        assert report.clean

    def test_foreign_trace_apply_not_checked(self):
        # A trace the auditor never saw begin (attached mid-run) carries
        # no session context; skipping avoids false positives.
        report = run([
            ev("kvs.apply", key="k", tid=1, trace=99, op="delta",
               srv="iq1"),
        ])
        assert report.clean

    def test_state_dropped_on_session_end(self):
        auditor = IQAuditor()
        for event in [
            ev("session.begin", tid=1, trace=10),
            ev("session.sql_commit", tid=1, trace=10),
            ev("session.end", tid=1, trace=10, how="commit"),
        ]:
            auditor.observe(event)
        assert auditor._traces_begun == set()
        assert auditor._traces_committed == set()


class TestReporting:
    def test_summary_and_categories(self):
        report = run([
            ev("lease.i.grant", key="k", token=1, srv="iq1"),
            ev("lease.i.grant", key="k", token=2, srv="iq1"),
        ])
        assert not report.clean
        assert CATEGORY_DOUBLE_I in report.summary()
        assert "FAILED" in report.summary()
        assert set(report.by_category()) <= set(ALL_CATEGORIES)

    def test_clean_summary(self):
        report = run([ev("lease.i.grant", key="k", token=1, srv="iq1")])
        assert report.clean
        assert "0 violations" in report.summary()

    def test_events_seen_counts_handled_events_only(self):
        report = run([
            ev("lease.i.grant", key="k", token=1, srv="iq1"),
            ev("store.set", key="k"),  # unhandled: not counted
        ])
        assert report.events_seen == 1


class TestAuditedContextManager:
    def test_attach_detach_global_tracer(self):
        tracer = get_tracer()
        with audited() as auditor:
            assert tracer.active
            tracer.emit("lease.i.grant", key="k", token=1, srv="x")
            tracer.emit("lease.i.grant", key="k", token=2, srv="x")
        assert not tracer.active
        report = auditor.report()
        assert report.by_category() == {CATEGORY_DOUBLE_I: 1}
        # Detached: further events are not observed.
        tracer.emit("lease.i.grant", key="k", token=3, srv="x")
        assert auditor.report().events_seen == report.events_seen
