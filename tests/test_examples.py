"""Examples must keep working: each runs end to end in-process."""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)


def run_example(name, monkeypatch, capsys):
    """Execute an example script with __main__ semantics."""
    path = os.path.join(EXAMPLES_DIR, name)
    assert os.path.exists(path), path
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        output = run_example("quickstart.py", monkeypatch, capsys)
        assert "KVS/RDBMS agree" in output
        assert "stock': 99" in output or "'stock': 99" in output

    def test_race_conditions(self, monkeypatch, capsys):
        output = run_example("race_conditions.py", monkeypatch, capsys)
        assert output.count("STALE") >= 5
        assert "Every baseline run diverges" in output

    def test_techniques_tour(self, monkeypatch, capsys):
        output = run_example("techniques_tour.py", monkeypatch, capsys)
        assert "invalidate (QaR / DaR)" in output
        assert "refresh (QaRead / SaR)" in output
        assert "incremental update (IQ-delta / Commit)" in output

    def test_networked_cache(self, monkeypatch, capsys):
        output = run_example("networked_cache.py", monkeypatch, capsys)
        assert "KVS agrees with RDBMS: 16" in output

    def test_chaos_demo(self, monkeypatch, capsys):
        output = run_example("chaos_demo.py", monkeypatch, capsys)
        assert "killing the cache server" in output
        assert "unpredictable (stale) reads: 0" in output

    @pytest.mark.slow
    def test_social_network(self, monkeypatch, capsys):
        output = run_example("social_network.py", monkeypatch, capsys)
        assert "the IQ framework produced exactly 0%" in output

    @pytest.mark.slow
    def test_linkbench_app(self, monkeypatch, capsys):
        output = run_example("linkbench_app.py", monkeypatch, capsys)
        assert "unpredictable reads: 0.000%" in output
