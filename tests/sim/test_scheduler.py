import pytest

from repro.sim.scheduler import (
    Interleaver,
    Program,
    ProgramCrash,
    ScheduleError,
    all_interleavings,
)


def make_program(name, log, steps=3):
    def generator():
        for i in range(steps):
            log.append("{}{}".format(name, i))
            yield i
        return "{}-done".format(name)

    return Program(name, generator)


class TestInterleaver:
    def test_schedule_order_is_honored(self):
        log = []
        interleaver = Interleaver(
            [make_program("A", log, 2), make_program("B", log, 2)]
        )
        interleaver.run(["A", "B", "A", "B"], finish_remaining=False)
        assert log == ["A0", "B0", "A1", "B1"]

    def test_results_returned(self):
        log = []
        interleaver = Interleaver([make_program("A", log, 1)])
        results = interleaver.run(["A"])
        assert results["A"] == "A-done"

    def test_finish_remaining(self):
        log = []
        interleaver = Interleaver(
            [make_program("A", log, 3), make_program("B", log, 1)]
        )
        interleaver.run(["A"], finish_remaining=True)
        assert set(log) == {"A0", "A1", "A2", "B0"}
        assert interleaver.is_finished("A")
        assert interleaver.is_finished("B")

    def test_unknown_program_rejected(self):
        interleaver = Interleaver([])
        with pytest.raises(ScheduleError):
            interleaver.run(["ghost"])

    def test_advancing_finished_program_rejected(self):
        log = []
        interleaver = Interleaver([make_program("A", log, 1)])
        with pytest.raises(ScheduleError):
            interleaver.run(["A", "A", "A"], finish_remaining=False)

    def test_duplicate_names_rejected(self):
        log = []
        with pytest.raises(ScheduleError):
            Interleaver([make_program("A", log), make_program("A", log)])

    def test_steps_recorded(self):
        log = []
        interleaver = Interleaver([make_program("A", log, 2)])
        interleaver.run(["A", "A"], finish_remaining=False)
        assert interleaver.steps_of("A") == [0, 1]


def make_crashing_program(name, log, crash_after):
    def generator():
        for i in range(crash_after):
            log.append("{}{}".format(name, i))
            yield "{}-step{}".format(name, i)
        raise RuntimeError("boom in {}".format(name))

    return Program(name, generator)


class TestProgramCrash:
    def test_crash_carries_schedule_context(self):
        log = []
        interleaver = Interleaver([
            make_program("A", log, 3),
            make_crashing_program("B", log, 1),
        ])
        with pytest.raises(ProgramCrash) as exc_info:
            interleaver.run(["A", "B", "A", "B"], finish_remaining=False)
        crash = exc_info.value
        assert crash.program == "B"
        assert crash.step_label == "B-step0"
        assert crash.schedule_prefix == ("A", "B", "A")
        assert isinstance(crash.original, RuntimeError)
        assert crash.__cause__ is crash.original

    def test_crash_message_is_replayable_context(self):
        interleaver = Interleaver([make_crashing_program("X", [], 0)])
        with pytest.raises(ProgramCrash) as exc_info:
            interleaver.run(["X"], finish_remaining=False)
        message = str(exc_info.value)
        assert "'X'" in message
        assert "RuntimeError" in message
        assert "boom in X" in message

    def test_crash_during_drain_includes_scheduled_prefix(self):
        log = []
        interleaver = Interleaver([make_crashing_program("B", log, 2)])
        with pytest.raises(ProgramCrash) as exc_info:
            interleaver.run(["B"], finish_remaining=True)
        assert exc_info.value.schedule_prefix == ("B", "B")

    def test_crash_is_a_schedule_error(self):
        # Callers that already catch ScheduleError keep working.
        assert issubclass(ProgramCrash, ScheduleError)

    def test_schedule_errors_not_double_wrapped(self):
        log = []
        interleaver = Interleaver([make_program("A", log, 1)])
        with pytest.raises(ScheduleError) as exc_info:
            interleaver.run(["A", "A", "A"], finish_remaining=False)
        assert not isinstance(exc_info.value, ProgramCrash)

    def test_crashed_program_is_finished(self):
        log = []
        interleaver = Interleaver([make_crashing_program("B", log, 1)])
        with pytest.raises(ProgramCrash):
            interleaver.run(["B", "B"], finish_remaining=False)
        assert interleaver.is_finished("B")


class TestAllInterleavings:
    def test_count_is_multinomial(self):
        schedules = list(all_interleavings({"A": 2, "B": 2}))
        assert len(schedules) == 6  # C(4,2)

    def test_each_schedule_has_right_multiplicity(self):
        for schedule in all_interleavings({"A": 1, "B": 3}):
            assert schedule.count("A") == 1
            assert schedule.count("B") == 3

    def test_unique(self):
        schedules = list(all_interleavings({"A": 2, "B": 1, "C": 1}))
        assert len(schedules) == len(set(schedules)) == 12
