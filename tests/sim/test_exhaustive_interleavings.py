"""Exhaustive interleaving check: IQ admits *no* stale outcome.

For a read session racing one write session, we enumerate every
interleaving of their steps (the schedule prefix; stragglers drain in
supply order) and assert:

* with the IQ framework, the post-quiescence KVS state agrees with the
  RDBMS in every single interleaving;
* with the unleased baseline, at least one interleaving produces a stale
  KVS value -- i.e. the race is real and our harness can see it.

This is the strongest qualitative statement of the paper ("reduces the
amount of stale data to zero") made mechanically checkable at small scale.
"""

from repro.config import LeaseConfig
from repro.core.iq_server import IQServer
from repro.kvs.read_lease import ReadLeaseStore
from repro.sim.scheduler import Interleaver, Program, all_interleavings
from repro.sql.engine import Database
from repro.util.clock import LogicalClock

KEY = "item1"
WRITER_STEPS = 5
READER_STEPS = 6


def fresh_db():
    db = Database()
    connection = db.connect()
    connection.execute("CREATE TABLE items (id INTEGER PRIMARY KEY, val INTEGER)")
    connection.execute("INSERT INTO items (id, val) VALUES (1, 0)")
    connection.close()
    return db


def db_value(db):
    connection = db.connect()
    try:
        return connection.query_scalar("SELECT val FROM items WHERE id = 1")
    finally:
        connection.close()


def run_iq_once(schedule, serve_pending):
    db = fresh_db()
    server = IQServer(
        lease_config=LeaseConfig(serve_pending_versions=serve_pending),
        clock=LogicalClock(),
    )
    server.store.set(KEY, b"0")

    def writer():
        tid = server.gen_id()
        connection = db.connect()
        connection.begin()
        yield "w:begin"
        connection.execute("UPDATE items SET val = 1 WHERE id = 1")
        yield "w:update"
        server.qar(tid, KEY)
        yield "w:qar"
        connection.commit()
        connection.close()
        yield "w:commit"
        server.dar(tid)
        yield "w:dar"

    def reader():
        for _ in range(30):
            result = server.iq_get(KEY)
            if result.is_hit:
                return int(result.value)
            if result.backoff:
                yield "r:backoff"
                continue
            yield "r:lease"
            connection = db.connect()
            value = connection.query_scalar(
                "SELECT val FROM items WHERE id = 1"
            )
            connection.close()
            yield "r:query"
            server.iq_set(KEY, str(value).encode(), result.token)
            yield "r:set"
            return value
        raise AssertionError("reader failed to converge")

    interleaver = Interleaver([Program("W", writer), Program("R", reader)])
    interleaver.run(schedule, finish_remaining=True, strict=False)

    final_db = db_value(db)
    cached = server.store.get(KEY)
    return final_db, None if cached is None else int(cached[0])


def run_baseline_once(schedule):
    db = fresh_db()
    store = ReadLeaseStore(clock=LogicalClock())
    store.set(KEY, b"0")

    def writer():
        connection = db.connect()
        connection.begin()
        yield "w:begin"
        connection.execute("UPDATE items SET val = 1 WHERE id = 1")
        yield "w:update"
        store.delete(KEY)  # trigger invalidation inside the transaction
        yield "w:delete"
        connection.commit()
        connection.close()
        yield "w:commit"
        yield "w:idle"

    def reader():
        for _ in range(30):
            result = store.lease_get(KEY)
            if result.is_hit:
                return int(result.value)
            if not result.has_lease:
                yield "r:backoff"
                continue
            yield "r:lease"
            connection = db.connect()
            value = connection.query_scalar(
                "SELECT val FROM items WHERE id = 1"
            )
            connection.close()
            yield "r:query"
            store.lease_set(KEY, str(value).encode(), result.token)
            yield "r:set"
            return value
        return None

    interleaver = Interleaver([Program("W", writer), Program("R", reader)])
    interleaver.run(schedule, finish_remaining=True, strict=False)
    cached = store.get(KEY)
    return db_value(db), None if cached is None else int(cached[0])


def schedules():
    return all_interleavings({"W": WRITER_STEPS, "R": READER_STEPS})


class TestExhaustive:
    def test_iq_no_interleaving_leaves_stale_data(self):
        checked = 0
        for schedule in schedules():
            final_db, cached = run_iq_once(schedule, serve_pending=True)
            assert final_db == 1
            assert cached in (None, 1), (
                "stale value {} under schedule {}".format(cached, schedule)
            )
            checked += 1
        assert checked > 100

    def test_iq_no_stale_data_with_eager_delete(self):
        for schedule in schedules():
            final_db, cached = run_iq_once(schedule, serve_pending=False)
            assert final_db == 1
            assert cached in (None, 1), (
                "stale value {} under schedule {}".format(cached, schedule)
            )

    def test_baseline_has_at_least_one_stale_interleaving(self):
        stale = 0
        total = 0
        for schedule in schedules():
            final_db, cached = run_baseline_once(schedule)
            total += 1
            if cached is not None and cached != final_db:
                stale += 1
        assert stale > 0, "the baseline race never materialized"
        assert stale < total, "some interleavings must be benign"
