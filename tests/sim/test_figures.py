"""The paper's figures, replayed deterministically.

Each baseline run must exhibit the race (stale/divergent KVS); each IQ run
must end consistent.  These are the qualitative claims of Sections 2-4.
"""

import pytest

from repro.sim import (
    figure2_cas_insufficient,
    figure3_snapshot_invalidate,
    figure4_rearrangement_window,
    figure6_dirty_read_refresh,
    figure7_stale_overwrite_delta,
    figure8_double_delta,
    run_all_figures,
)


class TestFigure2:
    def test_baseline_cas_diverges_exactly_as_paper(self):
        outcome = figure2_cas_insufficient(iq=False)
        assert outcome.rdbms_value == 1500  # (100 + 50) * 10
        assert outcome.kvs_value == 1050    # (100 * 10) + 50
        assert not outcome.consistent

    def test_iq_refresh_converges(self):
        outcome = figure2_cas_insufficient(iq=True)
        assert outcome.rdbms_value == 1500
        assert outcome.kvs_value == 1500
        assert outcome.consistent


class TestFigure3:
    def test_baseline_inserts_stale_value(self):
        outcome = figure3_snapshot_invalidate(iq=False)
        assert outcome.rdbms_value == 1
        assert outcome.kvs_value == 0  # the stale snapshot value
        assert not outcome.consistent

    def test_iq_backoff_prevents_stale_insert(self):
        outcome = figure3_snapshot_invalidate(iq=True)
        assert outcome.rdbms_value == 1
        assert outcome.kvs_value == 1
        assert outcome.consistent
        assert "backed off" in outcome.notes


class TestFigure4:
    def test_rearrangement_window_serves_old_version(self):
        outcome = figure4_rearrangement_window()
        assert outcome.consistent
        assert "window reads=[0, 0, 0]" in outcome.notes
        assert "writer-own-read miss=True" in outcome.notes


class TestFigure6:
    def test_baseline_dirty_read(self):
        outcome = figure6_dirty_read_refresh(iq=False)
        assert outcome.rdbms_value == 0  # writer aborted
        assert outcome.kvs_value == 1    # dirty value stuck in the KVS
        assert not outcome.consistent
        assert "dirty value [1]" in outcome.notes

    def test_iq_abort_leaves_old_value(self):
        outcome = figure6_dirty_read_refresh(iq=True)
        assert outcome.rdbms_value == 0
        assert outcome.kvs_value == 0
        assert outcome.consistent


class TestFigure7:
    def test_baseline_stale_overwrite(self):
        outcome = figure7_stale_overwrite_delta(iq=False)
        assert outcome.rdbms_value == "xd"
        assert outcome.kvs_value == "x"  # missing the delta
        assert not outcome.consistent

    def test_iq_voids_readers_lease(self):
        outcome = figure7_stale_overwrite_delta(iq=True)
        assert outcome.rdbms_value == "xd"
        assert outcome.kvs_value is None  # next reader recomputes
        assert outcome.consistent


class TestFigure8:
    def test_baseline_double_append(self):
        outcome = figure8_double_delta(iq=False)
        assert outcome.rdbms_value == "xd"
        assert outcome.kvs_value == "xdd"  # the delta applied twice
        assert not outcome.consistent

    def test_iq_backoff_until_commit(self):
        outcome = figure8_double_delta(iq=True)
        assert outcome.rdbms_value == "xd"
        assert outcome.kvs_value == "xd"
        assert outcome.consistent


class TestRunAll:
    def test_every_baseline_races_every_iq_holds(self):
        outcomes = run_all_figures()
        assert len(outcomes) == 11
        for outcome in outcomes:
            if outcome.variant.startswith("baseline"):
                assert not outcome.consistent, outcome
            else:
                assert outcome.consistent, outcome

    def test_outcomes_are_reproducible(self):
        first = [
            (o.figure, o.variant, o.rdbms_value, o.kvs_value)
            for o in run_all_figures()
        ]
        second = [
            (o.figure, o.variant, o.rdbms_value, o.kvs_value)
            for o in run_all_figures()
        ]
        assert first == second
