"""Hypothesis-driven schedule exploration.

The exhaustive test covers every interleaving of one reader and one
writer; here hypothesis samples random schedules of *three* sessions --
two writers (one invalidate, one refresh, contending for overlapping
keys) and one reader -- and asserts the IQ framework never leaves stale
data.  The writer pair also exercises the Q-Q reject path (Figure 5b)
inside arbitrary schedules.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.iq_client import IQClient
from repro.core.iq_server import IQServer
from repro.errors import QuarantinedError
from repro.sim.scheduler import Interleaver, Program
from repro.sql.engine import Database
from repro.util.backoff import NoBackoff

KEY = "hot"


def build_env():
    db = Database()
    setup = db.connect()
    setup.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    setup.execute("INSERT INTO t (id, v) VALUES (1, 100)")
    setup.close()
    server = IQServer()
    server.store.set(KEY, b"100")
    return db, server


def invalidating_writer(db, server):
    def program():
        for _ in range(60):
            tid = server.gen_id()
            try:
                server.qar(tid, KEY)
            except QuarantinedError:
                server.abort(tid)
                yield "w1:abort"
                continue
            yield "w1:qar"
            connection = db.connect()
            connection.begin()
            connection.execute("UPDATE t SET v = v + 1 WHERE id = 1")
            yield "w1:update"
            connection.commit()
            connection.close()
            yield "w1:commit"
            server.dar(tid)
            return
        raise AssertionError("writer1 starved")

    return program


def refreshing_writer(db, server):
    def program():
        for _ in range(60):
            tid = server.gen_id()
            try:
                old = server.qaread(KEY, tid).value
            except QuarantinedError:
                server.abort(tid)
                yield "w2:abort"
                continue
            yield "w2:qaread"
            connection = db.connect()
            connection.begin()
            connection.execute("UPDATE t SET v = v * 2 WHERE id = 1")
            yield "w2:update"
            try:
                connection.commit()
            except Exception:
                server.abort(tid)
                connection.close()
                yield "w2:rdbms-abort"
                continue
            connection.close()
            yield "w2:commit"
            if old is not None:
                server.sar(KEY, str(int(old) * 2).encode(), tid)
            else:
                server.sar(KEY, None, tid)
            return
        raise AssertionError("writer2 starved")

    return program


def reader(db, server):
    def program():
        for _ in range(80):
            result = server.iq_get(KEY)
            if result.is_hit:
                return
            if result.backoff:
                yield "r:backoff"
                continue
            yield "r:lease"
            connection = db.connect()
            value = connection.query_scalar("SELECT v FROM t WHERE id = 1")
            connection.close()
            yield "r:query"
            server.iq_set(KEY, str(value).encode(), result.token)
            return
        raise AssertionError("reader starved")

    return program


@given(
    choices=st.lists(
        st.sampled_from(["W1", "W2", "R"]), min_size=6, max_size=40
    )
)
@settings(max_examples=80, deadline=None)
def test_random_three_session_schedules_never_leave_stale_data(choices):
    db, server = build_env()
    interleaver = Interleaver([
        Program("W1", invalidating_writer(db, server)),
        Program("W2", refreshing_writer(db, server)),
        Program("R", reader(db, server)),
    ])
    interleaver.run(choices, finish_remaining=True, strict=False)

    connection = db.connect()
    final = connection.query_scalar("SELECT v FROM t WHERE id = 1")
    connection.close()
    cached = server.store.get(KEY)
    assert cached is None or int(cached[0]) == final, (
        "stale cache {!r} vs RDBMS {} under schedule {}".format(
            cached, final, choices
        )
    )
    # Both writers completed: v went through +1 and *2 in some order.
    assert final in (201, 202)


@given(
    choices=st.lists(
        st.sampled_from(["W2", "R"]), min_size=4, max_size=30
    ),
    use_read_through=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_reader_through_client_api_matches_low_level(choices,
                                                     use_read_through):
    """The same property holds when the reader uses IQClient.read_through
    (token management hidden) instead of raw commands."""
    db, server = build_env()

    def client_reader():
        def program():
            client = IQClient(server, backoff=NoBackoff(max_attempts=200))
            state = {"done": False}

            def compute():
                connection = db.connect()
                try:
                    value = connection.query_scalar(
                        "SELECT v FROM t WHERE id = 1"
                    )
                    return str(value).encode()
                finally:
                    connection.close()

            # read_through loops internally; a single call is one step.
            client.read_through(KEY, compute)
            state["done"] = True
            return
            yield  # pragma: no cover

        return program

    reader_program = (
        client_reader() if use_read_through else reader(db, server)
    )
    interleaver = Interleaver([
        Program("W2", refreshing_writer(db, server)),
        Program("R", reader_program),
    ])
    interleaver.run(choices, finish_remaining=True, strict=False)

    connection = db.connect()
    final = connection.query_scalar("SELECT v FROM t WHERE id = 1")
    connection.close()
    cached = server.store.get(KEY)
    assert cached is None or int(cached[0]) == final
