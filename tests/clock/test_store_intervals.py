"""Interval-stamped entries in the cache store: cget/cset semantics."""

from repro.kvs.store import StoreResult


def cset(store, key, value, start, until):
    return store.cset(key, value, start, until)


class TestCget:
    def test_unstamped_entries_never_serve(self, store):
        store.set("k", b"plain")
        result = store.cget("k", 0)
        assert not result.is_hit
        assert not result.expired

    def test_hit_inside_interval(self, store):
        assert cset(store, "k", b"v", 2, 9) is StoreResult.STORED
        result = store.cget("k", 5)
        assert result.is_hit
        assert result.value == b"v"
        assert (result.valid_from, result.valid_until) == (2, 9)

    def test_lazy_expiry_drops_the_entry(self, store):
        cset(store, "k", b"v", 0, 4)
        result = store.cget("k", 4)
        assert result.expired and not result.is_hit
        # The expiry removed it: the next read is a plain miss.
        follow_up = store.cget("k", 4)
        assert not follow_up.expired and not follow_up.is_hit
        assert store.get("k") is None

    def test_dynamic_extension_grows_the_bound(self, store):
        cset(store, "k", b"v", 0, 4)
        result = store.cget("k", 2, extend=10)
        assert result.extended
        assert result.valid_until == 10
        assert store.cget("k", 8).is_hit

    def test_extension_never_shrinks(self, store):
        cset(store, "k", b"v", 0, 10)
        result = store.cget("k", 2, extend=5)
        assert not result.extended
        assert result.valid_until == 10

    def test_stats_split(self, store):
        cset(store, "k", b"v", 0, 4)
        store.cget("k", 1)
        store.cget("k", 1, extend=6)
        store.cget("k", 6)
        assert store.stats.get("cmd_cget") == 3
        assert store.stats.get("interval_hits") == 2
        assert store.stats.get("interval_expiries") == 1
        assert store.stats.get("interval_extensions") == 1


class TestCsetArbitration:
    def test_longer_lived_interval_wins(self, store):
        cset(store, "k", b"long", 0, 10)
        assert cset(store, "k", b"short", 0, 5) is StoreResult.NOT_STORED
        assert store.cget("k", 1).value == b"long"
        assert store.stats.get("interval_ignored_sets") == 1

    def test_equal_bound_is_ignored(self, store):
        cset(store, "k", b"first", 0, 10)
        assert cset(store, "k", b"again", 2, 10) is StoreResult.NOT_STORED

    def test_later_bound_replaces(self, store):
        cset(store, "k", b"old", 0, 5)
        assert cset(store, "k", b"new", 3, 12) is StoreResult.STORED
        result = store.cget("k", 4)
        assert result.value == b"new"
        assert result.valid_until == 12

    def test_empty_interval_refused(self, store):
        assert cset(store, "k", b"v", 5, 5) is StoreResult.NOT_STORED
        assert cset(store, "k", b"v", 6, 5) is StoreResult.NOT_STORED
        assert store.get("k") is None

    def test_unstamped_entry_is_overwritten(self, store):
        store.set("k", b"plain")
        assert cset(store, "k", b"stamped", 0, 8) is StoreResult.STORED
        assert store.cget("k", 1).value == b"stamped"


class TestMutationsVoidIntervals:
    def test_plain_set_voids_the_stamp(self, store):
        cset(store, "k", b"v", 0, 10)
        store.set("k", b"other")
        assert not store.cget("k", 1).is_hit
        assert store.interval_of("k") is None

    def test_arithmetic_voids_the_stamp(self, store):
        cset(store, "n", b"7", 0, 10)
        store.incr("n", 1)
        assert not store.cget("n", 1).is_hit

    def test_interval_of_reports_live_stamp(self, store):
        assert store.interval_of("missing") is None
        cset(store, "k", b"v", 3, 9)
        assert store.interval_of("k") == (3, 9)
