"""The commit clock: per-key clocks, horizons, the jump, interval sizing."""

import pytest

from repro.config import ClockConfig
from repro.sql.clock import CommitClock
from repro.sql.engine import Database


@pytest.fixture
def db():
    database = Database()
    connection = database.connect()
    connection.execute("CREATE TABLE items (id INTEGER PRIMARY KEY, val INTEGER)")
    connection.execute("INSERT INTO items (id, val) VALUES (1, 10)")
    connection.close()
    return database


def write(db, value, clock_keys=None):
    connection = db.connect()
    connection.begin()
    connection.execute("UPDATE items SET val = ? WHERE id = 1", (value,))
    connection.commit(clock_keys=clock_keys)
    connection.close()


class TestPromises:
    def test_promise_returns_key_clock_and_horizon(self, db):
        clock = CommitClock(db, ClockConfig(default_interval_ticks=8))
        now, expiry = clock.promise("k")
        assert now == clock.now_of("k") == 0
        assert expiry == now + 8
        assert clock.horizon_of("k") == expiry

    def test_horizons_only_grow(self, db):
        clock = CommitClock(db)
        _, first = clock.promise("k", ticks=10)
        _, second = clock.promise("k", ticks=3)
        assert second == first  # the shorter promise reuses the horizon
        _, third = clock.promise("k", ticks=50)
        assert third > first

    def test_commit_jumps_key_clock_past_promised_horizon(self, db):
        clock = CommitClock(db)
        _, expiry = clock.promise("k", ticks=20)
        global_before = clock.now()
        write(db, 11, clock_keys=["k"])
        assert clock.now_of("k") >= expiry
        # The jump is per-key: the global seq advanced by exactly one.
        assert clock.now() == global_before + 1
        # The horizon was consumed: a fresh promise starts from now.
        assert clock.horizon_of("k") == 0

    def test_commit_without_clock_keys_does_not_touch_key_clocks(self, db):
        clock = CommitClock(db)
        clock.promise("k", ticks=20)
        write(db, 11)  # plain commit: global +1, key clocks untouched
        assert clock.now_of("k") == 0
        assert clock.horizon_of("k") == 20

    def test_unrelated_key_is_never_aged(self, db):
        clock = CommitClock(db)
        _, expiry = clock.promise("k", ticks=20)
        for value in range(5):
            write(db, value, clock_keys=["other"])
        assert clock.horizon_of("k") == expiry
        assert clock.now_of("k") == 0  # "k"'s intervals outlive it all

    def test_unpromised_write_advances_one_tick(self, db):
        clock = CommitClock(db)
        write(db, 11, clock_keys=["k"])
        write(db, 12, clock_keys=["k"])
        assert clock.now_of("k") == 2


class TestReadOnlyCommits:
    def test_read_only_commit_does_not_advance_the_clock(self, db):
        before = db.txmanager.current_commit_seq()
        connection = db.connect()
        assert connection.query_scalar(
            "SELECT val FROM items WHERE id = 1") == 10
        connection.close()
        assert db.txmanager.current_commit_seq() == before

    def test_writing_commit_advances_the_clock(self, db):
        before = db.txmanager.current_commit_seq()
        write(db, 11)
        assert db.txmanager.current_commit_seq() == before + 1


class TestIntervalSizing:
    def test_default_until_a_gap_is_observed(self, db):
        clock = CommitClock(db, ClockConfig(default_interval_ticks=8))
        assert clock.interval_for("k") == 8

    def test_sized_from_smallest_observed_write_gap(self, db):
        config = ClockConfig(default_interval_ticks=8,
                             min_interval_ticks=1, max_interval_ticks=64)
        clock = CommitClock(db, config)
        write(db, 1, clock_keys=["k"])
        for value in (2, 3, 4):
            write(db, value, clock_keys=["k"])
        gap = db.txmanager.clock_write_gap(key="k")
        assert gap is not None
        assert clock.interval_for("k") == max(1, min(64, gap))

    def test_clamped_to_config_window(self, db):
        config = ClockConfig(default_interval_ticks=8,
                             min_interval_ticks=4, max_interval_ticks=6)
        clock = CommitClock(db, config)
        write(db, 1, clock_keys=["k"])
        write(db, 2, clock_keys=["k"])  # gap of 1 < min: floor applies
        assert clock.interval_for("k") == 4
        # A key written rarely relative to global traffic observes a
        # gap above the cap.
        write(db, 3, clock_keys=["slow"])
        for value in range(10):
            write(db, value)  # unrelated commits advance the global seq
        write(db, 4, clock_keys=["slow"])
        assert db.txmanager.clock_write_gap("slow") > 6
        assert clock.interval_for("slow") == 6

    def test_promise_uses_sizing_when_ticks_omitted(self, db):
        clock = CommitClock(db, ClockConfig(default_interval_ticks=5))
        now, expiry = clock.promise("fresh-key")
        assert expiry - now == 5


class TestFingerprintHelpers:
    def test_horizon_snapshot_sorted(self, db):
        clock = CommitClock(db)
        clock.promise("b", ticks=3)
        clock.promise("a", ticks=4)
        snapshot = db.txmanager.horizon_snapshot()
        assert [key for key, _ in snapshot] == ["a", "b"]

    def test_key_clock_snapshot_sorted(self, db):
        write(db, 1, clock_keys=["b"])
        write(db, 2, clock_keys=["a"])
        assert db.txmanager.key_clock_snapshot() == (("a", 1), ("b", 1))
