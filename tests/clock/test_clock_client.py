"""ClockClient: the lease-free read/write paths end to end."""

import pytest

from repro.config import ClockConfig
from repro.core.policies import ClockClient, KeyChange
from repro.errors import (
    CacheUnavailableError,
    DegradedModeActive,
    TransactionAbortedError,
)


@pytest.fixture
def items_db(db):
    connection = db.connect()
    connection.execute(
        "CREATE TABLE items (id INTEGER PRIMARY KEY, val INTEGER)")
    connection.execute("INSERT INTO items (id, val) VALUES (1, 10)")
    connection.close()
    return db


@pytest.fixture
def client(iq, items_db):
    return ClockClient(iq, items_db.connect)


def read_val(client, db, key="items:1"):
    calls = []

    def compute():
        connection = db.connect()
        try:
            value = connection.query_scalar(
                "SELECT val FROM items WHERE id = 1")
        finally:
            connection.close()
        calls.append(value)
        return str(value).encode()

    return client.read(key, compute), calls


def write_val(client, value, key="items:1"):
    def body(session):
        session.execute("UPDATE items SET val = ? WHERE id = 1", (value,))

    return client.write(body, [KeyChange(key)])


class TestReadPath:
    def test_miss_computes_and_fills(self, client, items_db):
        value, calls = read_val(client, items_db)
        assert value == b"10" and calls == [10]
        assert client.metrics.get("clock_interval_misses").value == 1

    def test_hit_serves_without_sql(self, client, items_db):
        read_val(client, items_db)
        value, calls = read_val(client, items_db)
        assert value == b"10"
        assert calls == []  # served from the interval, compute never ran
        assert client.metrics.get("clock_interval_reads").value == 1

    def test_write_self_invalidates_the_interval(self, client, items_db):
        read_val(client, items_db)
        outcome = write_val(client, 99)
        assert outcome.result is None and outcome.restarts == 0
        value, calls = read_val(client, items_db)
        assert value == b"99"
        assert calls == [99]  # the old interval expired by arithmetic
        assert client.metrics.get("clock_commits").value == 1

    def test_none_values_are_not_cached(self, client, items_db):
        assert client.read("items:1", lambda: None) is None
        value, calls = read_val(client, items_db)
        assert value == b"10" and calls == [10]


class TestWritePath:
    def test_write_performs_no_cache_io(self, client, iq, items_db):
        cmds_before = iq.store.stats.get("cmd_set")
        write_val(client, 50)
        assert iq.store.stats.get("cmd_set") == cmds_before
        assert iq.store.stats.get("cmd_cset") == 0

    def test_write_jumps_key_clock_past_promised_horizon(self, client,
                                                         items_db):
        _, until = client.commit_clock.promise("items:1")
        write_val(client, 50)
        assert items_db.txmanager.key_clock("items:1") >= until

    def test_conflict_restarts_and_succeeds(self, client, items_db):
        attempts = []

        def body(session):
            if not attempts:
                attempts.append("conflict")
                raise TransactionAbortedError("first-updater-wins")
            attempts.append("retry")
            session.execute("UPDATE items SET val = 77 WHERE id = 1")

        outcome = client.write(body, [KeyChange("items:1")])
        assert outcome.restarts == 1
        assert attempts == ["conflict", "retry"]
        value, _ = read_val(client, items_db)
        assert value == b"77"


class _DeadCache:
    """A backend whose clock commands always fail."""

    def cget(self, key, clock_now, extend=None):
        raise CacheUnavailableError("down")

    def cset(self, key, value, valid_from, valid_until):
        raise CacheUnavailableError("down")


class _FillDropper:
    """cget works, cset is lost -- the half-dead cache."""

    def __init__(self, server):
        self.server = server

    def cget(self, key, clock_now, extend=None):
        return self.server.cget(key, clock_now, extend=extend)

    def cset(self, key, value, valid_from, valid_until):
        raise CacheUnavailableError("fill dropped")


class TestDegradedMode:
    def test_fallback_serves_from_sql(self, items_db):
        client = ClockClient(_DeadCache(), items_db.connect)
        value, calls = read_val(client, items_db)
        assert value == b"10" and calls == [10]
        assert client.degraded_reads == 1

    def test_no_fallback_raises(self, items_db):
        client = ClockClient(
            _DeadCache(), items_db.connect, degraded_fallback=False)
        with pytest.raises(DegradedModeActive):
            read_val(client, items_db)

    def test_lost_fill_is_safe(self, iq, items_db):
        client = ClockClient(_FillDropper(iq), items_db.connect)
        value, calls = read_val(client, items_db)
        assert value == b"10" and calls == [10]  # reader still answers
        # Writes never depend on the cache, so nothing to reconcile.
        write_val(client, 20)
        value, calls = read_val(client, items_db)
        assert value == b"20"

    def test_writes_succeed_with_cache_down(self, items_db):
        client = ClockClient(_DeadCache(), items_db.connect)
        outcome = write_val(client, 30)
        assert outcome.restarts == 0


class TestLocalTier:
    def test_re_read_skips_the_wire(self, client, iq, items_db):
        read_val(client, items_db)
        cgets = iq.store.stats.get("cmd_cget")
        value, calls = read_val(client, items_db)
        assert value == b"10" and calls == []
        assert iq.store.stats.get("cmd_cget") == cgets  # zero round trips
        assert client.metrics.get("clock_local_hits").value == 1

    def test_write_expires_local_copies_by_arithmetic(self, client,
                                                      items_db):
        read_val(client, items_db)
        read_val(client, items_db)  # now held locally
        write_val(client, 99)  # no purge message anywhere
        value, calls = read_val(client, items_db)
        assert value == b"99" and calls == [99]

    def test_other_clients_copies_expire_too(self, iq, items_db):
        reader = ClockClient(iq, items_db.connect)
        writer = ClockClient(iq, items_db.connect)
        read_val(reader, items_db)
        read_val(reader, items_db)
        write_val(writer, 55)
        value, calls = read_val(reader, items_db)
        assert value == b"55" and calls == [55]

    def test_degraded_reads_keep_serving_locally(self, items_db):
        client = ClockClient(_DeadCache(), items_db.connect)
        read_val(client, items_db)
        value, calls = read_val(client, items_db)
        assert value == b"10" and calls == []
        assert client.degraded_reads == 1  # only the first read computed

    def test_disabled_tier_always_consults_the_server(self, iq, items_db):
        client = ClockClient(
            iq, items_db.connect,
            config=ClockConfig(local_cache_entries=0))
        read_val(client, items_db)
        read_val(client, items_db)
        assert iq.store.stats.get("cmd_cget") == 2
        assert client.metrics.get("clock_local_hits").value == 0

    def test_tier_is_fifo_bounded(self, iq, items_db):
        client = ClockClient(
            iq, items_db.connect,
            config=ClockConfig(local_cache_entries=2))
        for key in ("items:a", "items:b", "items:c"):
            client.read(key, lambda: b"x")
        assert len(client._local) == 2
        assert "items:a" not in client._local


class TestConfig:
    def test_is_strongly_consistent(self, client):
        assert client.is_strongly_consistent

    def test_dynamic_extension_can_be_disabled(self, iq, items_db):
        config = ClockConfig(dynamic_extension=False)
        client = ClockClient(iq, items_db.connect, config=config)
        read_val(client, items_db)
        read_val(client, items_db)
        assert iq.store.stats.get("interval_extensions") == 0

    def test_dynamic_extension_extends_on_hit(self, iq, items_db):
        # Heterogeneous sizing: a short-interval client fills, a
        # longer-interval client's re-promise pushes the bound forward.
        short = ClockClient(
            iq, items_db.connect,
            config=ClockConfig(default_interval_ticks=4))
        long = ClockClient(
            iq, items_db.connect,
            config=ClockConfig(default_interval_ticks=12))
        read_val(short, items_db)
        value, calls = read_val(long, items_db)
        assert value == b"10" and calls == []
        assert iq.store.stats.get("interval_extensions") == 1
        assert iq.store.interval_of("items:1") == (0, 12)
