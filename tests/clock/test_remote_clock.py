"""cget/cset over the wire: remote, pipelined, resilient, and sharded."""

import pytest

from repro.config import BackoffConfig, NetConfig
from repro.core.iq_server import IQServer
from repro.net import RemoteIQServer, ResilientIQServer, serve_background
from repro.sharding import ShardedIQServer


@pytest.fixture(params=["threaded", "async"])
def served(request):
    server, _thread = serve_background(transport=request.param)
    yield server
    server.shutdown()


@pytest.fixture
def remote(served):
    client = RemoteIQServer(port=served.port)
    yield client
    client.close()


class TestRemoteClockCommands:
    def test_miss_fill_hit(self, remote):
        assert not remote.cget("k", 0).is_hit
        assert remote.cset("k", b"v", 0, 8)
        result = remote.cget("k", 3)
        assert result.is_hit
        assert result.value == b"v"
        assert (result.valid_from, result.valid_until) == (0, 8)

    def test_expiry_over_the_wire(self, remote):
        remote.cset("k", b"v", 0, 4)
        result = remote.cget("k", 4)
        assert result.expired and not result.is_hit
        assert remote.get("k") is None  # lazily dropped server-side

    def test_extension_over_the_wire(self, remote):
        remote.cset("k", b"v", 0, 4)
        result = remote.cget("k", 2, extend=9)
        # The wire reply does not carry the in-process ``extended`` flag;
        # the grown bound itself is the observable contract.
        assert result.is_hit and result.valid_until == 9
        assert remote.cget("k", 8).is_hit
        assert remote.stats()["interval_extensions"] == 1

    def test_cset_arbitration(self, remote):
        assert remote.cset("k", b"long", 0, 10)
        assert not remote.cset("k", b"short", 0, 5)  # IGNORED
        assert remote.cget("k", 1).value == b"long"

    def test_binary_safe_interval_values(self, remote):
        blob = bytes(range(256)) + b"\r\nEND\r\n"
        remote.cset("bin", blob, 0, 8)
        assert remote.cget("bin", 1).value == blob


class TestPipelinedClockCommands:
    def test_clock_commands_pipeline(self, remote):
        with remote.pipeline() as pipe:
            pipe.cset("k", b"v", 0, 8).cget("k", 3).cget("k", 8).cget("k", 8)
        stored, hit, expired, miss = pipe.results
        assert stored
        assert hit.is_hit and hit.value == b"v"
        assert expired.expired
        assert not miss.is_hit and not miss.expired

    def test_interleaved_with_standard_commands(self, remote):
        with remote.pipeline() as pipe:
            pipe.set("plain", b"p").cset("ck", b"c", 0, 8)
            pipe.get("plain").cget("ck", 1)
        assert pipe.results[2] == (b"p", 0)
        assert pipe.results[3].value == b"c"


class TestResilientClockCommands:
    def _client(self, served):
        return ResilientIQServer(
            port=served.port,
            config=NetConfig(connect_timeout=1.0, operation_timeout=1.0,
                             max_retries=1, breaker_failure_threshold=100),
            backoff_config=BackoffConfig(initial_delay=0.005,
                                         max_delay=0.02, jitter=0.0),
        )

    def test_round_trip(self, served):
        client = self._client(served)
        try:
            assert client.cset("k", b"v", 0, 8)
            assert client.cget("k", 1).value == b"v"
        finally:
            client.close()

    def test_cset_degrades_to_not_cached_on_dead_server(self):
        from repro.faults import RestartableServer

        server = RestartableServer(IQServer)
        server.start()
        client = self._client(server)
        try:
            client.version()  # establish the connection first
            server.kill()
            assert client.cset("k", b"v", 0, 8) is False
        finally:
            client.close()
            server.kill()


class TestShardedClockCommands:
    def test_routes_by_key(self):
        shards = [IQServer() for _ in range(3)]
        router = ShardedIQServer(shards)
        keys = ["alpha", "beta", "gamma", "delta"]
        for i, key in enumerate(keys):
            assert router.cset(key, str(i).encode(), 0, 8)
        for i, key in enumerate(keys):
            result = router.cget(key, 1)
            assert result.is_hit and result.value == str(i).encode()
            owner = router.shard_for(key)
            assert owner.store.interval_of(key) == (0, 8)
            for shard in shards:
                if shard is not owner:
                    assert shard.store.interval_of(key) is None
