"""Report schema round-trips and baseline diffing semantics."""

import pytest

from repro.scenarios.report import (
    STATUS_ENV_SKIPPED,
    STATUS_NEW,
    STATUS_OK,
    STATUS_REGRESSION,
    Band,
    OracleVerdict,
    ScenarioReport,
    diff_metrics,
    resolve_path,
)

pytestmark = pytest.mark.scenario


class TestReportRoundTrip:
    def make_report(self):
        return ScenarioReport(
            "wire-threaded-invalidate", "live", tier="smoke",
            verdict="fail",
            oracles=[
                OracleVerdict("zero-stale", True),
                OracleVerdict("zero-errors", False, count=3,
                              detail="3 failed actions"),
            ],
            metrics={"actions": 120, "throughput": 512.5},
            duration=1.25, seed=13,
        )

    def test_json_round_trip_preserves_everything(self):
        report = self.make_report()
        back = ScenarioReport.from_json(report.to_json())
        assert back.to_dict() == report.to_dict()
        assert back.verdict == "fail"
        assert not back.ok
        assert back.oracle("zero-errors").count == 3
        assert [v.name for v in back.failures()] == ["zero-errors"]
        assert back.metrics["throughput"] == 512.5

    def test_skipped_report(self):
        report = ScenarioReport("x", "mc", verdict="skipped",
                                skipped_reason="entry has no mc mode")
        assert report.skipped
        assert report.ok  # skipped is not a failure
        assert "skipped" in report.summary()
        assert ScenarioReport.from_json(report.to_json()).skipped_reason \
            == "entry has no mc mode"

    def test_newer_schema_rejected(self):
        data = self.make_report().to_dict()
        data["schema"] = 99
        with pytest.raises(ValueError, match="newer"):
            ScenarioReport.from_dict(data)


class TestResolvePath:
    def test_walks_nested_dicts(self):
        data = {"a": {"b": {"c": 7}}}
        assert resolve_path(data, "a.b.c") == 7
        assert resolve_path(data, "a.b") == {"c": 7}

    def test_missing_hop_is_none(self):
        assert resolve_path({"a": {}}, "a.b.c") is None
        assert resolve_path({}, "x") is None


class TestDiffMetrics:
    BASELINE = {"wire_read": {"speedup": 2.0, "pipelined_ops_s": 50000.0}}

    def band(self, **kw):
        defaults = dict(metric="speedup", path="wire_read.speedup",
                        kind="ratio", tolerance=0.25)
        defaults.update(kw)
        return Band(**defaults)

    def test_within_tolerance_is_ok(self):
        entries = diff_metrics({"speedup": 1.6}, self.BASELINE,
                               [self.band()])
        assert [e.status for e in entries] == [STATUS_OK]
        assert entries[0].ok

    def test_above_baseline_is_always_ok(self):
        (entry,) = diff_metrics({"speedup": 3.9}, self.BASELINE,
                                [self.band()])
        assert entry.status == STATUS_OK

    def test_regression_beyond_tolerance_fails(self):
        (entry,) = diff_metrics({"speedup": 1.4}, self.BASELINE,
                                [self.band()])
        assert entry.status == STATUS_REGRESSION
        assert not entry.ok
        assert "tolerance" in entry.reason

    def test_lower_is_better_direction(self):
        band = Band("p99_ms", kind="absolute", tolerance=0.25,
                    direction="lower")
        (ok,) = diff_metrics({"p99_ms": 11.0}, {"p99_ms": 10.0}, [band])
        (bad,) = diff_metrics({"p99_ms": 14.0}, {"p99_ms": 10.0}, [band])
        assert ok.status == STATUS_OK
        assert bad.status == STATUS_REGRESSION

    def test_missing_baseline_is_new(self):
        (entry,) = diff_metrics({"speedup": 1.6}, None, [self.band()])
        assert entry.status == STATUS_NEW
        assert entry.ok  # "new" never fails a diff
        (entry,) = diff_metrics(
            {"speedup": 1.6}, {"unrelated": 1}, [self.band()]
        )
        assert entry.status == STATUS_NEW

    def test_absolute_band_env_skipped_off_baseline_hardware(self):
        band = self.band(metric="pipelined_ops_s",
                         path="wire_read.pipelined_ops_s", kind="absolute")
        (entry,) = diff_metrics(
            {"pipelined_ops_s": 100.0}, self.BASELINE, [band],
            comparable_env=False, env_reason="1 CPU host",
        )
        assert entry.status == STATUS_ENV_SKIPPED
        assert entry.ok
        assert "1 CPU host" in entry.reason
        # ratio bands still compare on the same host
        (ratio,) = diff_metrics({"speedup": 1.9}, self.BASELINE,
                                [self.band()], comparable_env=False)
        assert ratio.status == STATUS_OK

    def test_unmeasured_value_env_skipped_not_silent(self):
        (entry,) = diff_metrics({}, self.BASELINE, [self.band()])
        assert entry.status == STATUS_ENV_SKIPPED
        assert "not measured" in entry.reason

    def test_band_validates_kind_and_direction(self):
        with pytest.raises(ValueError):
            Band("x", kind="nope")
        with pytest.raises(ValueError):
            Band("x", direction="sideways")
