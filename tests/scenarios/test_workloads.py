"""Deterministic-seed tests for the scenario workload families.

Every family's sampler is a pure function of ``(seed, members)``: the
same seed must reproduce the same member stream, and the stream's
*shape* (hot-key concentration, tenant shares, zipf skew ordering) must
match what the family declares.
"""

import collections

import pytest

from repro.scenarios.workloads import (
    FAMILY_CLASSES,
    FlashCrowd,
    MultiTenantSkew,
    ThunderingHerd,
    ZipfSweep,
)

pytestmark = pytest.mark.scenario

MEMBERS = 200
DRAWS = 4000


def draw(family, seed=7, members=MEMBERS, draws=DRAWS):
    sample = family.sampler_factory()(seed, members)
    return [sample() for _ in range(draws)]


class TestDeterminism:
    @pytest.mark.parametrize("family", [
        FlashCrowd("fc", hot_members=2, hot_fraction=0.8),
        ThunderingHerd("th"),
        MultiTenantSkew("mt", tenants=4),
        ZipfSweep(0.6),
    ], ids=lambda f: type(f).__name__)
    def test_same_seed_same_stream(self, family):
        assert draw(family, seed=11) == draw(family, seed=11)

    @pytest.mark.parametrize("family", [
        FlashCrowd("fc", hot_members=2, hot_fraction=0.8),
        MultiTenantSkew("mt", tenants=4),
        ZipfSweep(0.6),
    ], ids=lambda f: type(f).__name__)
    def test_different_seeds_diverge(self, family):
        assert draw(family, seed=11) != draw(family, seed=12)

    def test_samples_stay_in_range(self):
        for cls in FAMILY_CLASSES.values():
            family = (cls(0.5) if cls is ZipfSweep else cls("r"))
            for member in draw(family, members=50, draws=500):
                assert 0 <= member < 50


class TestFlashCrowd:
    def test_hot_set_concentration(self):
        family = FlashCrowd("fc", hot_members=3, hot_fraction=0.9)
        hot = set(family.hot_set(MEMBERS))
        assert hot == {0, 1, 2}
        stream = draw(family)
        hot_share = sum(1 for m in stream if m in hot) / len(stream)
        # 90% targeted + ~1.5% of uniform spill lands on the hot ids
        assert hot_share > 0.85

    def test_hot_set_clamps_to_population(self):
        family = FlashCrowd("fc", hot_members=10, hot_fraction=1.0)
        assert family.hot_set(4) == (0, 1, 2, 3)
        assert set(draw(family, members=4, draws=200)) <= {0, 1, 2, 3}

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FlashCrowd("fc", hot_fraction=0.0)
        with pytest.raises(ValueError):
            FlashCrowd("fc", hot_members=0)


class TestThunderingHerd:
    def test_herd_member_dominates(self):
        family = ThunderingHerd("th", herd_member=5, herd_fraction=0.95)
        stream = draw(family)
        share = stream.count(5) / len(stream)
        assert share > 0.9

    def test_herd_member_wraps_population(self):
        family = ThunderingHerd("th", herd_member=7, herd_fraction=1.0)
        assert set(draw(family, members=5, draws=100)) == {7 % 5}

    def test_declares_flush_interval(self):
        assert ThunderingHerd("th", flush_interval=0.4).flush_interval == 0.4


class TestMultiTenantSkew:
    def test_tenant_shares_follow_power_law(self):
        family = MultiTenantSkew("mt", tenants=4, share_exponent=1.0)
        stream = draw(family, draws=8000)
        counts = collections.Counter(
            family.tenant_of(m, MEMBERS) for m in stream
        )
        shares = [counts[i] / len(stream) for i in range(4)]
        # Monotone decreasing, and tenant 0 clearly dominates 1/1+1/2+...
        assert shares[0] > shares[1] > shares[3]
        assert shares[0] == pytest.approx(1.0 / (1 + 0.5 + 1 / 3 + 0.25),
                                          abs=0.05)

    def test_tenant_ranges_are_contiguous_and_exhaustive(self):
        family = MultiTenantSkew("mt", tenants=3)
        tenants = {family.tenant_of(m, 90) for m in range(90)}
        assert tenants == {0, 1, 2}
        assert family.tenant_of(0, 90) == 0
        assert family.tenant_of(89, 90) == 2

    def test_rejects_single_tenant(self):
        with pytest.raises(ValueError):
            MultiTenantSkew("mt", tenants=1)


class TestZipfSweep:
    @staticmethod
    def top_decile_share(stream, members):
        counts = collections.Counter(stream)
        ranked = [count for _, count in counts.most_common()]
        top = max(1, members // 10)
        return sum(ranked[:top]) / len(stream)

    def test_higher_theta_concentrates_harder(self):
        shares = [
            self.top_decile_share(draw(ZipfSweep(theta)), MEMBERS)
            for theta in (0.2, 0.6, 0.95)
        ]
        assert shares[0] < shares[1] < shares[2]

    def test_name_carries_theta(self):
        assert "0.9" in ZipfSweep(0.9).name
        assert ZipfSweep(0.5, name="custom").name == "custom"
