"""The catalogue's smoke tier as plain pytest parametrizations.

``repro scenarios --sweep --smoke`` is the CI sweep; this suite makes
the same entries reachable as individual pytest cases (``-m scenario``)
at the smaller ``pytest`` sizing.  Fast inproc entries all run; the
slower duration-based fault entries are covered by one representative
per controller so the tier-1 wall clock stays flat.
"""

import pytest

from repro.scenarios import CATALOGUE, by_name, run_live

pytestmark = pytest.mark.scenario


def _fast_inproc_names():
    return [
        spec.name for spec in CATALOGUE
        if "smoke" in spec.tiers and "live" in spec.modes
        and spec.transport == "inproc" and spec.fault_plan is None
    ]


def _assert_clean(report):
    assert report.ok, "{} failed: {}".format(
        report.name, "; ".join(
            "{}: {}".format(v.name, v.detail or v.count)
            for v in report.failures()
        )
    )
    for verdict in report.oracles:
        assert verdict.ok


@pytest.mark.parametrize("name", _fast_inproc_names())
def test_inproc_smoke_entry(name):
    _assert_clean(run_live(by_name(name), sizing="pytest"))


def test_wire_smoke_entry():
    report = run_live(by_name("wire-threaded-invalidate"), sizing="pytest")
    _assert_clean(report)
    assert report.metrics["actions"] > 0


@pytest.mark.slow
def test_flush_herd_controller_entry():
    report = run_live(by_name("herd-after-flush-invalidate"),
                      sizing="pytest")
    _assert_clean(report)
    assert report.metrics["flushes"] >= 1
    assert report.metrics["get_misses"] > 0


@pytest.mark.slow
def test_rebalance_controller_entry():
    report = run_live(by_name("rebalance-add-invalidate"), sizing="pytest")
    _assert_clean(report)
    assert report.oracle("migration-done").ok


@pytest.mark.slow
def test_kill_restart_controller_entry():
    report = run_live(by_name("chaos-kill-restart-refresh"),
                      sizing="pytest")
    _assert_clean(report)
    assert report.metrics["kills"] >= 1


@pytest.mark.slow
def test_coalesced_herd_controller_entry():
    report = run_live(by_name("herd-after-flush-coalesced"),
                      sizing="pytest")
    _assert_clean(report)
    assert report.oracle("coalesced-gets").ok
    assert report.metrics["coalesced_fills"] > 0


@pytest.mark.slow
def test_striped_kill_restart_controller_entry():
    report = run_live(by_name("chaos-kill-restart-striped"),
                      sizing="pytest")
    _assert_clean(report)
    assert report.metrics["kills"] >= 1
