"""Spec -> model-checker compilation and verdict folding."""

import pytest

from repro.scenarios import ScenarioSpec, by_name, compile_spec, run_mc

pytestmark = [pytest.mark.scenario, pytest.mark.mc]


class TestCompile:
    @pytest.mark.parametrize("technique", [
        "invalidate", "refresh", "delta", "clock",
    ])
    def test_auto_builds_per_technique(self, technique):
        spec = ScenarioSpec("t", technique=technique, modes=("mc",),
                            mc_scenario="auto", oracles=("mc-verdict",))
        scenario = compile_spec(spec)
        assert scenario.technique == technique
        world, programs = scenario.build()
        assert len(programs) >= 2  # at least a writer and a reader
        assert not scenario.expect_violation

    def test_named_scenario_resolves_from_mc_catalogue(self):
        spec = by_name("race-fig3-baseline")
        scenario = compile_spec(spec)
        assert scenario.name == "fig3-baseline"
        assert scenario.expect_violation

    def test_live_only_spec_has_nothing_to_compile(self):
        with pytest.raises(ValueError, match="no mc mode"):
            compile_spec(by_name("wire-threaded-invalidate"))


class TestRunMC:
    def test_clean_exploration_passes(self):
        report = run_mc(by_name("figure-invalidate"), sizing="pytest")
        assert report.mode == "mc"
        assert report.ok
        assert report.oracle("mc-verdict").ok
        assert report.metrics["violations"] == 0
        assert report.metrics["schedules_explored"] >= 1

    def test_expected_race_must_be_found(self):
        report = run_mc(by_name("race-fig3-baseline"), sizing="pytest")
        assert report.ok
        assert report.metrics["violations"] >= 1
        assert report.metrics["expect_violation"] == 1

    def test_truncated_exploration_never_passes(self):
        from repro.scenarios.runner import Sizing

        tiny = Sizing(threads=1, ops=1, members=10, fault_duration=0.1,
                      mc_max_states=1)
        report = run_mc(by_name("figure-refresh"), sizing=tiny)
        assert not report.ok
        assert report.metrics["truncated"] == 1

    def test_live_only_spec_is_skipped_not_failed(self):
        report = run_mc(by_name("zipf-theta-03-invalidate"),
                        sizing="pytest")
        assert report.skipped
        assert report.ok

    def test_parity_with_live_path(self):
        """One declarative spec, two execution paths, one verdict."""
        from repro.scenarios import run_live

        spec = by_name("figure-delta")
        live = run_live(spec, sizing="pytest")
        mc = run_mc(spec, sizing="pytest")
        assert live.ok and mc.ok
        assert live.name == mc.name
