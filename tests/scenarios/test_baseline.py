"""Baseline headline registry against the committed BENCH files."""

import pytest

from repro.scenarios import HEADLINES, diff_baselines
from repro.scenarios.baseline import environment_comparable
from repro.scenarios.report import (
    STATUS_ENV_SKIPPED,
    STATUS_NEW,
    STATUS_OK,
    STATUS_REGRESSION,
    diff_metrics,
    resolve_path,
)

pytestmark = pytest.mark.scenario

VALID_STATUSES = {STATUS_OK, STATUS_REGRESSION, STATUS_NEW,
                  STATUS_ENV_SKIPPED}


class TestRegistry:
    def test_headlines_cover_all_committed_files(self):
        assert {h.name for h in HEADLINES} == {"pipeline", "clock",
                                               "hotpath"}

    def test_every_band_path_resolves_in_committed_baseline(self):
        for headline in HEADLINES:
            baseline = headline.load_baseline()
            assert baseline is not None, headline.baseline_file
            for band in headline.bands:
                value = resolve_path(baseline, band.path)
                assert isinstance(value, (int, float)), (
                    "{}: {} missing from {}".format(
                        headline.name, band.path, headline.baseline_file
                    )
                )

    def test_headline_ratios_match_the_docs_claims(self):
        pipeline = next(h for h in HEADLINES if h.name == "pipeline")
        baseline = pipeline.load_baseline()
        assert resolve_path(baseline, "wire_read.speedup") \
            == pytest.approx(2.22, abs=0.01)
        assert resolve_path(baseline, "shard_fanout.speedup") \
            == pytest.approx(3.74, abs=0.01)
        clock = next(h for h in HEADLINES if h.name == "clock")
        assert resolve_path(clock.load_baseline(), "best_read_speedup") \
            == pytest.approx(1.615, abs=0.01)

    def test_identity_measurement_diffs_clean(self):
        # Measuring exactly the committed values must be all-ok.
        for headline in HEADLINES:
            baseline = headline.load_baseline()
            measured = {
                band.metric: resolve_path(baseline, band.path)
                for band in headline.bands
            }
            for entry in diff_metrics(measured, baseline, headline.bands):
                assert entry.status == STATUS_OK

    def test_environment_gate_reports_a_reason(self):
        comparable, reason = environment_comparable()
        assert comparable or reason


@pytest.mark.slow
class TestLiveDiff:
    def test_clock_headline_reproduces_or_is_env_skipped(self):
        """The committed clock speedup must re-measure inside its band.

        Never silent: every band lands in an explicit status, and the
        hardware-independent ratio must not regress.
        """
        results = diff_baselines(names=("clock",), tier="smoke")
        entries = results["clock"]
        assert entries
        for entry in entries:
            assert entry.status in VALID_STATUSES
            assert entry.status != STATUS_NEW  # the baseline is committed
        ratio = next(e for e in entries if e.metric == "best_read_speedup")
        assert ratio.status == STATUS_OK, ratio.summary()
