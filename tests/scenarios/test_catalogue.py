"""Catalogue invariants: the committed entries cover what they claim."""

import pytest

from repro.scenarios import (
    CATALOGUE,
    ScenarioSpec,
    by_name,
    catalogue,
    filter_catalogue,
)
from repro.scenarios.workloads import family_by_name

pytestmark = pytest.mark.scenario


class TestCoverage:
    def smoke(self):
        return [s for s in CATALOGUE if "smoke" in s.tiers]

    def test_smoke_tier_is_at_least_twenty_entries(self):
        assert len(self.smoke()) >= 20

    def test_all_four_techniques_in_smoke(self):
        assert {s.technique for s in self.smoke()} == {
            "invalidate", "refresh", "delta", "clock",
        }

    def test_at_least_two_wire_transports_in_smoke(self):
        wire = {s.transport for s in self.smoke()} - {"inproc"}
        assert len(wire) >= 2

    def test_at_least_four_family_entries_in_smoke(self):
        families = [s for s in self.smoke() if s.family is not None]
        assert len(families) >= 4
        # ... spanning all four family kinds
        assert {s.family.family for s in families} == {
            "flash-crowd", "thundering-herd", "multi-tenant", "zipf-sweep",
        }

    def test_every_fault_plan_is_exercised(self):
        assert {s.fault_plan for s in self.smoke()} >= {
            "commit-drop", "kill-restart", "rebalance-add", "flush-herd",
        }

    def test_at_least_one_entry_runs_both_paths(self):
        both = [s for s in CATALOGUE
                if "live" in s.modes and "mc" in s.modes]
        assert len(both) >= 4  # the four figure-parity rows

    def test_names_are_unique(self):
        names = [s.name for s in CATALOGUE]
        assert len(names) == len(set(names))


class TestAccessors:
    def test_by_name(self):
        assert by_name("figure-clock").technique == "clock"
        with pytest.raises(KeyError, match="--list"):
            by_name("no-such-entry")

    def test_catalogue_returns_copy(self):
        entries = catalogue()
        entries.clear()
        assert catalogue()

    def test_filters_compose(self):
        clock_wire = filter_catalogue(technique="clock",
                                      transport="threaded")
        assert clock_wire
        assert all(s.technique == "clock" and s.transport == "threaded"
                   for s in clock_wire)
        assert filter_catalogue(family="zipf-sweep", technique="clock")

    def test_family_lookup(self):
        family = family_by_name(CATALOGUE, "flash-crowd-x2")
        assert family.hot_members == 2
        with pytest.raises(KeyError):
            family_by_name(CATALOGUE, "unknown-family")


class TestSpecValidation:
    def test_rejects_unknown_axes(self):
        with pytest.raises(ValueError, match="technique"):
            ScenarioSpec("x", technique="hope")
        with pytest.raises(ValueError, match="transport"):
            ScenarioSpec("x", transport="carrier-pigeon")
        with pytest.raises(ValueError, match="fault plan"):
            ScenarioSpec("x", fault_plan="eclipse")
        with pytest.raises(ValueError, match="oracle"):
            ScenarioSpec("x", oracles=("zero-stale", "vibes"))

    def test_mc_mode_requires_mc_scenario(self):
        with pytest.raises(ValueError, match="mc_scenario"):
            ScenarioSpec("x", modes=("live", "mc"))

    def test_rebalance_needs_shards(self):
        with pytest.raises(ValueError, match="shards"):
            ScenarioSpec("x", fault_plan="rebalance-add", shards=0)

    def test_wire_fault_plans_reject_inproc(self):
        with pytest.raises(ValueError, match="wire"):
            ScenarioSpec("x", fault_plan="kill-restart")
        with pytest.raises(ValueError, match="wire"):
            ScenarioSpec("x", fault_plan="commit-drop")

    def test_bounds_checker(self):
        from repro.scenarios import check_bounds

        metrics = {"actions": 50, "stale": 0}
        assert check_bounds((("actions", 1, None),), metrics) == []
        assert check_bounds((("actions", None, 10),), metrics)
        assert check_bounds((("missing", 1, None),), metrics)
