"""FaultInjector semantics: determinism, triggers, zero-overhead no-op."""

import pytest

from repro.config import KVSConfig
from repro.faults import (
    FaultAction,
    FaultInjector,
    FaultPlan,
    FaultRule,
    corrupt_bytes,
)
from repro.faults.injector import (
    SITE_SERVER_REPLY,
    SITE_SERVER_REQUEST,
    SITE_STORE_GET,
)
from repro.kvs.store import CacheStore
from repro.util.clock import LogicalClock


class TestTriggers:
    def test_nth_fires_exactly_once(self):
        plan = FaultPlan.kill_server(nth=3)
        injector = FaultInjector(plan)
        decisions = [
            injector.decide(SITE_SERVER_REQUEST, command="get")
            for _ in range(6)
        ]
        assert [d is not None for d in decisions] == [
            False, False, True, False, False, False
        ]

    def test_every_fires_periodically(self):
        plan = FaultPlan([FaultRule(
            SITE_SERVER_REPLY, FaultAction.DELAY, every=2, delay=0.1
        )])
        injector = FaultInjector(plan)
        fired = [
            injector.decide(SITE_SERVER_REPLY) is not None for _ in range(6)
        ]
        assert fired == [False, True, False, True, False, True]

    def test_count_caps_firings(self):
        plan = FaultPlan([FaultRule(
            SITE_SERVER_REPLY, FaultAction.CORRUPT, every=1, count=2
        )])
        injector = FaultInjector(plan)
        fired = sum(
            injector.decide(SITE_SERVER_REPLY) is not None for _ in range(10)
        )
        assert fired == 2

    def test_match_filters_and_scopes_counting(self):
        rule = FaultRule(
            SITE_SERVER_REQUEST, FaultAction.DROP_CONNECTION, nth=2,
            match=lambda ctx: ctx.get("command") == "sar",
        )
        injector = FaultInjector(FaultPlan([rule]))
        # Non-matching events do not advance the rule's event counter.
        assert injector.decide(SITE_SERVER_REQUEST, command="get") is None
        assert injector.decide(SITE_SERVER_REQUEST, command="sar") is None
        assert injector.decide(SITE_SERVER_REQUEST, command="get") is None
        assert injector.decide(
            SITE_SERVER_REQUEST, command="sar"
        ) is rule

    def test_one_rule_per_event(self):
        first = FaultRule(SITE_SERVER_REPLY, FaultAction.CORRUPT, nth=1)
        second = FaultRule(SITE_SERVER_REPLY, FaultAction.TRUNCATE, nth=1)
        injector = FaultInjector(FaultPlan([first, second]))
        assert injector.decide(SITE_SERVER_REPLY) is first
        # The second rule's counter advanced past its nth during event 1,
        # so it never fires: exactly one fault per plan position.
        assert injector.decide(SITE_SERVER_REPLY) is None

    def test_conflicting_triggers_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(SITE_SERVER_REPLY, FaultAction.DELAY, nth=1, every=2)


class TestDeterminism:
    def _run(self, seed):
        plan = FaultPlan([
            FaultRule(SITE_SERVER_REQUEST, FaultAction.DROP_CONNECTION,
                      probability=0.3, count=None),
            FaultRule(SITE_SERVER_REPLY, FaultAction.CORRUPT, every=5,
                      count=None),
        ])
        injector = FaultInjector(plan, seed=seed)
        for i in range(50):
            injector.decide(SITE_SERVER_REQUEST, command="op{}".format(i))
            injector.decide(SITE_SERVER_REPLY, command="op{}".format(i))
        return injector.signatures()

    def test_same_seed_same_history(self):
        assert self._run(seed=7) == self._run(seed=7)
        assert len(self._run(seed=7)) > 0

    def test_different_seed_different_history(self):
        assert self._run(seed=7) != self._run(seed=8)


class TestZeroOverheadNoOp:
    def test_store_hooks_default_off(self):
        store = CacheStore(KVSConfig())
        assert store.fault_injector is None
        store.set("k", b"v")
        assert store.get("k") == (b"v", 0)
        assert store.delete("k")

    def test_store_delay_injection_uses_clock(self):
        clock = LogicalClock()
        store = CacheStore(KVSConfig(), clock=clock)
        store.fault_injector = FaultInjector(
            FaultPlan([FaultRule(SITE_STORE_GET, FaultAction.DELAY,
                                 nth=1, delay=3.0)]),
            clock=clock,
        )
        store.set("k", b"v")
        before = clock.now()
        store.get("k")
        assert clock.now() - before == pytest.approx(3.0)
        # Only the armed occurrence pays the delay.
        before = clock.now()
        store.get("k")
        assert clock.now() == before

    def test_server_and_reader_default_off(self):
        from repro.net.protocol import LineReader
        from repro.net.server import IQTCPServer

        server = IQTCPServer()
        try:
            assert server.fault_injector is None
        finally:
            server.server_close()

        class _Sock:
            def recv(self, n):
                return b"hello\r\n"

        reader = LineReader(_Sock())
        assert reader._injector is None
        assert reader.read_line() == b"hello"


class TestCorruptBytes:
    def test_changes_data_preserves_length(self):
        data = b"VALUE k 0 3\r\nabc\r\nEND"
        mangled = corrupt_bytes(data)
        assert len(mangled) == len(data)
        assert mangled != data

    def test_empty_passthrough(self):
        assert corrupt_bytes(b"") == b""
