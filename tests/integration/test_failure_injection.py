"""Fault tolerance: crashed clients, lease expiry, and abort paths.

Section 2: "The finite life time enables the KVS to release the lease and
continue processing operations in the presence of node failures hosting
the application."  Section 4.2 condition 3: an expired Q lease deletes its
key-value pair.
"""

import pytest

from repro.config import LeaseConfig
from repro.core.iq_client import IQClient
from repro.core.iq_server import IQServer
from repro.core.policies import IQRefreshClient, KeyChange
from repro.errors import QuarantinedError
from repro.util.backoff import NoBackoff
from repro.util.clock import LogicalClock


@pytest.fixture
def clock():
    return LogicalClock()


@pytest.fixture
def iq(clock):
    return IQServer(
        lease_config=LeaseConfig(i_lease_ttl=5, q_lease_ttl=5), clock=clock
    )


class TestCrashedReader:
    def test_abandoned_i_lease_expires_and_unblocks(self, iq, clock):
        iq.iq_get("k")  # reader crashes holding the I lease
        assert iq.iq_get("k").backoff
        clock.advance(6)
        assert iq.iq_get("k").has_lease

    def test_crashed_readers_set_after_expiry_ignored(self, iq, clock):
        result = iq.iq_get("k")
        clock.advance(6)
        successor = iq.iq_get("k")
        assert successor.has_lease
        assert not iq.iq_set("k", b"zombie", result.token)
        assert iq.iq_set("k", b"fresh", successor.token)
        assert iq.store.get("k") == (b"fresh", 0)


class TestCrashedWriter:
    def test_q_expiry_deletes_key_for_safety(self, iq, clock):
        iq.store.set("k", b"possibly-stale-soon")
        tid = iq.gen_id()
        iq.qaread("k", tid)  # writer crashes mid-session
        clock.advance(6)
        # The next reader triggers lazy expiry via the lease table sweep.
        iq.leases.sweep_expired()
        assert iq.store.get("k") is None

    def test_crashed_invalidate_session(self, iq, clock):
        iq.store.set("k", b"old")
        tid = iq.gen_id()
        iq.qar(tid, "k")  # crashes before DaR
        clock.advance(6)
        iq.leases.sweep_expired()
        assert iq.store.get("k") is None
        assert iq.iq_get("k").has_lease

    def test_crashed_delta_session_drops_proposals(self, iq, clock):
        iq.store.set("k", b"ab")
        tid = iq.gen_id()
        iq.iq_delta(tid, "k", "append", b"cd")
        clock.advance(6)
        iq.leases.sweep_expired()
        iq.commit(tid)  # zombie commit arrives after expiry
        assert iq.store.get("k") is None

    def test_new_writer_can_proceed_after_expiry(self, iq, clock):
        tid = iq.gen_id()
        iq.qaread("k", tid)
        clock.advance(6)
        successor = iq.gen_id()
        iq.qaread("k", successor)  # no QuarantinedError
        iq.sar("k", b"v", successor)
        assert iq.store.get("k") == (b"v", 0)


class TestAbortPaths:
    def test_rdbms_abort_leaves_no_kvs_effect(self, iq, clock, users_db):
        """Atomicity: a session whose RDBMS transaction aborts must leave
        the KVS unchanged (Figure 6 family)."""
        client = IQRefreshClient(
            IQClient(iq, backoff=NoBackoff(), clock=clock),
            users_db.connect,
            backoff=NoBackoff(max_attempts=3),
            clock=clock,
        )
        iq.store.set("Score1", b"10")

        competitor = users_db.connect()
        competitor.begin()
        competitor.execute("UPDATE users SET score = 77 WHERE id = 1")

        def refresher(old):
            return str(int(old) + 1).encode()

        def body(session):
            # Conflicts with the competitor -> TransactionAbortedError on
            # every attempt until max_attempts starve.
            session.execute("UPDATE users SET score = score + 1 WHERE id = 1")

        from repro.errors import StarvationError

        with pytest.raises(StarvationError):
            client.write(body, [KeyChange("Score1", refresher=refresher)])
        competitor.commit()
        assert iq.store.get("Score1") == (b"10", 0)  # untouched
        # And the lease was cleaned up:
        iq.qaread("Score1", iq.gen_id())

    def test_quarantine_conflict_rolls_back_rdbms(self, iq, clock, users_db):
        client = IQRefreshClient(
            IQClient(iq, backoff=NoBackoff(), clock=clock),
            users_db.connect,
            backoff=NoBackoff(max_attempts=2),
            clock=clock,
        )
        blocker = iq.gen_id()
        iq.qaread("Hot", blocker)

        def body(session):
            session.execute("UPDATE users SET score = 0 WHERE id = 1")

        from repro.errors import StarvationError

        with pytest.raises(StarvationError):
            client.write(
                body, [KeyChange("Hot", refresher=lambda old: old)]
            )
        fresh = users_db.connect()
        assert fresh.query_scalar(
            "SELECT score FROM users WHERE id = 1"
        ) == 10


class TestQuarantinedErrorSemantics:
    def test_conflict_does_not_leak_partial_leases(self, iq):
        tid_blocker = iq.gen_id()
        iq.qaread("b", tid_blocker)
        victim = iq.gen_id()
        iq.qaread("a", victim)
        with pytest.raises(QuarantinedError):
            iq.qaread("b", victim)
        iq.abort(victim)  # releases "a"
        iq.qaread("a", iq.gen_id())
