"""Engine-level concurrency: invariants under real thread contention."""

import random
import threading

import pytest

from repro.errors import TransactionAbortedError
from repro.sql.engine import Database

ACCOUNTS = 10
INITIAL = 100


@pytest.fixture
def bank():
    db = Database()
    connection = db.connect()
    connection.execute(
        "CREATE TABLE accounts (id INTEGER PRIMARY KEY, balance INTEGER)"
    )
    for account in range(ACCOUNTS):
        connection.execute(
            "INSERT INTO accounts (id, balance) VALUES (?, ?)",
            (account, INITIAL),
        )
    connection.close()
    return db


def total_balance(db):
    connection = db.connect()
    try:
        return connection.query_scalar("SELECT SUM(balance) FROM accounts")
    finally:
        connection.close()


class TestBankTransfers:
    def test_money_is_conserved(self, bank):
        """Concurrent transfers with retries: SUM(balance) is invariant."""
        transfers_done = []
        failures = []

        def worker(seed):
            rng = random.Random(seed)
            done = 0
            try:
                for _ in range(40):
                    src = rng.randrange(ACCOUNTS)
                    dst = (src + rng.randrange(1, ACCOUNTS)) % ACCOUNTS
                    amount = rng.randrange(1, 10)
                    for _attempt in range(50):
                        connection = bank.connect()
                        try:
                            connection.begin()
                            balance = connection.query_scalar(
                                "SELECT balance FROM accounts WHERE id = ?",
                                (src,),
                            )
                            if balance < amount:
                                connection.rollback()
                                break
                            connection.execute(
                                "UPDATE accounts SET balance = balance - ?"
                                " WHERE id = ?",
                                (amount, src),
                            )
                            connection.execute(
                                "UPDATE accounts SET balance = balance + ?"
                                " WHERE id = ?",
                                (amount, dst),
                            )
                            connection.commit()
                            done += 1
                            break
                        except TransactionAbortedError:
                            continue
                        finally:
                            connection.close()
            except Exception as exc:  # pragma: no cover
                failures.append(exc)
            finally:
                transfers_done.append(done)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        assert sum(transfers_done) > 0
        assert total_balance(bank) == ACCOUNTS * INITIAL

    def test_no_negative_balances_with_guard(self, bank):
        """The read-check-write pattern holds under SI (no lost checks on
        the same row thanks to first-updater-wins)."""
        def drainer():
            for _ in range(60):
                connection = bank.connect()
                try:
                    connection.begin()
                    balance = connection.query_scalar(
                        "SELECT balance FROM accounts WHERE id = 0"
                    )
                    if balance <= 0:
                        connection.rollback()
                        return
                    connection.execute(
                        "UPDATE accounts SET balance = balance - 1"
                        " WHERE id = 0"
                    )
                    connection.commit()
                except TransactionAbortedError:
                    pass
                finally:
                    connection.close()

        threads = [threading.Thread(target=drainer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        connection = bank.connect()
        assert connection.query_scalar(
            "SELECT balance FROM accounts WHERE id = 0"
        ) >= 0

    def test_vacuum_during_traffic(self, bank):
        """Vacuum concurrent with transactions never corrupts reads."""
        stop = threading.Event()
        failures = []

        def churn():
            rng = random.Random(7)
            while not stop.is_set():
                connection = bank.connect()
                try:
                    connection.execute(
                        "UPDATE accounts SET balance = balance + 0"
                        " WHERE id = ?",
                        (rng.randrange(ACCOUNTS),),
                    )
                except TransactionAbortedError:
                    pass
                except Exception as exc:  # pragma: no cover
                    failures.append(exc)
                    return
                finally:
                    connection.close()

        def vacuumer():
            while not stop.is_set():
                try:
                    bank.vacuum()
                except Exception as exc:  # pragma: no cover
                    failures.append(exc)
                    return

        pool = [threading.Thread(target=churn) for _ in range(4)]
        pool.append(threading.Thread(target=vacuumer))
        for t in pool:
            t.start()
        for _ in range(50):
            assert total_balance(bank) == ACCOUNTS * INITIAL
        stop.set()
        for t in pool:
            t.join()
        assert not failures


class TestThunderingHerd:
    def test_i_lease_collapses_concurrent_misses(self):
        """N threads read-through one missing key: exactly one RDBMS
        computation happens (the Facebook-lease behaviour the I lease
        subsumes)."""
        from repro.core.iq_client import IQClient
        from repro.core.iq_server import IQServer

        server = IQServer()
        computations = []
        lock = threading.Lock()
        barrier = threading.Barrier(12)

        def compute():
            with lock:
                computations.append(1)
            import time

            time.sleep(0.01)
            return b"expensive"

        results = []

        def reader():
            client = IQClient(server)
            barrier.wait()
            results.append(client.read_through("hot", compute))

        threads = [threading.Thread(target=reader) for _ in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(computations) == 1
        assert results == [b"expensive"] * 12


class TestIQServerLeaseStress:
    def test_exclusive_q_is_exclusive_under_threads(self):
        """Hammer QaRead on few keys from many threads: at any moment at
        most one session holds each key, and every granted lease is
        eventually released."""
        from repro.core.iq_server import IQServer
        from repro.errors import QuarantinedError

        server = IQServer()
        holders = {}
        holder_lock = threading.Lock()
        violations = []

        def worker(worker_id):
            rng = random.Random(worker_id)
            for _ in range(100):
                key = "k{}".format(rng.randrange(3))
                tid = server.gen_id()
                try:
                    server.qaread(key, tid)
                except QuarantinedError:
                    server.abort(tid)
                    continue
                with holder_lock:
                    if key in holders:
                        violations.append((key, holders[key], tid))
                    holders[key] = tid
                with holder_lock:
                    del holders[key]
                server.sar(key, None, tid)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not violations
        assert server.leases.outstanding() == 0
