"""Chaos integration: the BG workload under injected faults.

The acceptance bar for the resilience subsystem: with connections
dropping, the cache server dying and restarting cold, and lease holders
freezing past their TTL, every IQ technique must still report exactly
zero unpredictable reads.  An unreachable cache may only ever cause
misses or deletes -- never stale hits.

Every workload here also runs under the online IQ-invariant auditor
(:class:`repro.obs.audit.IQAuditor`) as a second, independent oracle:
BG's validation log checks *values*, the auditor checks *protocol
steps*, and chaos must leave both clean.
"""

import threading
import time

import pytest

from repro.bg.actions import Technique
from repro.bg.harness import build_bg_system
from repro.bg.workload import HIGH_WRITE_MIX
from repro.config import BackoffConfig, LeaseConfig, NetConfig
from repro.core.iq_server import IQServer
from repro.faults import (
    FaultAction,
    FaultInjector,
    FaultPlan,
    FaultRule,
    FrozenLeaseHolder,
    RestartableServer,
)
from repro.faults.injector import SITE_CLIENT_AFTER_SEND
from repro.net import RemoteIQServer, ResilientIQServer
from repro.obs.audit import audited

THREADS = 4

TECHNIQUES = [Technique.INVALIDATE, Technique.REFRESH, Technique.DELTA]


def make_iq(tid_start=1):
    # Short lease TTLs: abandoned leases (dropped replies, frozen
    # holders) must clear within the test's runtime, exercising the
    # paper's Section 4.2 condition 3 safety net.
    return IQServer(
        lease_config=LeaseConfig(i_lease_ttl=0.3, q_lease_ttl=0.3),
        tid_start=tid_start,
    )


def build_chaos_system(technique, server, injector=None):
    remote = ResilientIQServer(
        port=server.port,
        config=NetConfig(
            connect_timeout=1.0, operation_timeout=2.0, max_retries=2,
            breaker_failure_threshold=3, breaker_cooldown=0.02,
        ),
        backoff_config=BackoffConfig(
            initial_delay=0.002, max_delay=0.02, jitter=0.0
        ),
        injector=injector,
    )
    system = build_bg_system(
        members=60, friends_per_member=6, resources_per_member=2,
        technique=technique, leased=True, mix=HIGH_WRITE_MIX,
        iq_server=remote,
    )
    return system, remote


@pytest.fixture
def chaos_server():
    server = RestartableServer(make_iq)
    server.start()
    yield server
    server.kill()


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_zero_stale_across_kill_and_cold_restart(chaos_server, technique):
    """The server dies mid-workload and comes back cold; clients degrade
    to SQL during the outage and recover unaided."""
    system, remote = build_chaos_system(technique, chaos_server)

    def controller():
        time.sleep(0.2)
        chaos_server.kill()
        time.sleep(0.15)
        chaos_server.start()

    chaos = threading.Thread(target=controller)
    with audited() as auditor:
        chaos.start()
        result = system.runner.run(threads=THREADS, duration=1.2)
        chaos.join()

    assert result.actions > 0
    assert result.errors == 0
    assert system.log.unpredictable_reads() == 0, system.log.breakdown()
    assert auditor.report().clean, auditor.report().summary()
    assert chaos_server.kills == 1
    # The client really did lose and re-dial connections.
    assert remote.reconnects >= 2
    remote.close()


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_zero_stale_with_commit_phase_connection_drops(
    chaos_server, technique
):
    """Replies to commit-phase commands vanish: the server applied the
    operation, the client never learns.  Detach-and-journal must resolve
    the ambiguity with deletes, never with stale hits."""
    injector = FaultInjector(FaultPlan([
        FaultRule(
            SITE_CLIENT_AFTER_SEND, FaultAction.DROP_CONNECTION,
            every=5, count=None,
            match=lambda ctx: ctx.get("command") in (
                "dar", "sar", "commit"
            ),
        ),
    ]), seed=11)
    system, remote = build_chaos_system(
        technique, chaos_server, injector=injector
    )
    with audited() as auditor:
        result = system.runner.run(threads=THREADS, ops_per_thread=60)

    assert result.actions == THREADS * 60
    assert result.errors == 0
    assert system.log.unpredictable_reads() == 0, system.log.breakdown()
    assert auditor.report().clean, auditor.report().summary()
    assert injector.fired() > 0
    remote.close()


def test_zero_stale_with_read_path_drops(chaos_server):
    """Idempotent read commands lose connections mid-roundtrip and are
    transparently retried on a fresh dial."""
    injector = FaultInjector(FaultPlan([
        FaultRule(
            SITE_CLIENT_AFTER_SEND, FaultAction.DROP_CONNECTION,
            every=25, count=None,
            match=lambda ctx: ctx.get("command") in ("iqget", "get"),
        ),
    ]), seed=5)
    system, remote = build_chaos_system(
        Technique.INVALIDATE, chaos_server, injector=injector
    )
    with audited() as auditor:
        result = system.runner.run(threads=THREADS, ops_per_thread=60)

    assert result.errors == 0
    assert system.log.unpredictable_reads() == 0, system.log.breakdown()
    assert auditor.report().clean, auditor.report().summary()
    assert injector.fired() > 0
    assert remote.retries > 0
    remote.close()


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_zero_stale_with_frozen_lease_holder(chaos_server, technique):
    """A client freezes holding Q leases on hot keys; the server's TTL
    expiry (paper Section 4.2 condition 3) must unblock the workload
    with zero staleness."""
    system, remote = build_chaos_system(technique, chaos_server)
    freezer_conn = RemoteIQServer(port=chaos_server.port)
    freezer = FrozenLeaseHolder(freezer_conn)
    # Hot keys under the default hotspot live at low member ids.
    frozen = freezer.freeze(["PendingFriends0", "Friends1", "Profile2"])
    assert len(frozen) == 3

    with audited() as auditor:
        result = system.runner.run(threads=THREADS, ops_per_thread=60)

        assert result.actions == THREADS * 60
        assert result.errors == 0
        assert (
            system.log.unpredictable_reads() == 0
        ), system.log.breakdown()
        # The frozen node waking up long after expiry must be a no-op.
        freezer.zombie_commit()
        assert system.log.unpredictable_reads() == 0
    assert auditor.report().clean, auditor.report().summary()
    freezer_conn.close()
    remote.close()
