"""Concurrent stress: the paper's headline claim, end to end.

Under real thread concurrency with contended hot keys and widened race
windows, every IQ configuration must report exactly zero unpredictable
reads, while the unleased baselines demonstrably produce stale data.
"""

import pytest

from repro.bg.actions import Technique
from repro.bg.harness import build_bg_system
from repro.bg.workload import HIGH_WRITE_MIX
from repro.core.session import AcquisitionMode

THREADS = 8
OPS = 120


def stress(technique, leased, mode=AcquisitionMode.DURING, **kwargs):
    system = build_bg_system(
        members=80, friends_per_member=6, resources_per_member=2,
        technique=technique, leased=leased, mode=mode,
        mix=HIGH_WRITE_MIX, compute_delay=0.001, write_delay=0.001,
        **kwargs,
    )
    result = system.runner.run(threads=THREADS, ops_per_thread=OPS)
    return system, result


@pytest.mark.parametrize(
    "technique", [Technique.INVALIDATE, Technique.REFRESH, Technique.DELTA]
)
@pytest.mark.parametrize(
    "mode", [AcquisitionMode.PRIOR, AcquisitionMode.DURING]
)
def test_iq_zero_unpredictable_reads(technique, mode):
    system, result = stress(technique, leased=True, mode=mode)
    assert result.actions == THREADS * OPS
    assert result.errors == 0
    assert system.log.unpredictable_reads() == 0, system.log.breakdown()


@pytest.mark.parametrize(
    "technique", [Technique.INVALIDATE, Technique.REFRESH, Technique.DELTA]
)
def test_baseline_produces_stale_reads(technique):
    """The races are real: across a few attempts the unleased baseline
    must produce at least one unpredictable read."""
    total_stale = 0
    for _seed in range(3):
        system, _result = stress(technique, leased=False, seed=_seed)
        total_stale += system.log.unpredictable_reads()
        if total_stale:
            break
    assert total_stale > 0


def test_iq_zero_with_eager_delete_variant():
    system, result = stress(
        Technique.INVALIDATE, leased=True, serve_pending_versions=False
    )
    assert system.log.unpredictable_reads() == 0


def test_iq_cache_agrees_with_database_after_quiescence():
    """After all sessions drain, every cached value must equal a fresh
    RDBMS recomputation (session equilibrium)."""
    from repro.bg.actions import decode_id_set
    from repro.bg.schema import STATUS_PENDING

    system, _result = stress(Technique.REFRESH, leased=True)
    connection = system.db.connect()
    checked = 0
    for member in range(80):
        raw = system.cache.store.get("PendingFriends{}".format(member))
        if raw is None:
            continue
        cached = decode_id_set(raw[0])
        rows = connection.execute(
            "SELECT inviterid FROM friendship"
            " WHERE inviteeid = ? AND status = ?",
            (member, STATUS_PENDING),
        )
        truth = frozenset(r[0] for r in rows)
        assert cached == truth, member
        checked += 1
    assert checked > 0


def test_restart_counts_lower_when_acquired_during_transaction():
    """Table 6's qualitative claim: acquiring Q leases inside the RDBMS
    transaction bounds the maximum number of restarts."""
    _sys_prior, prior = stress(
        Technique.REFRESH, leased=True, mode=AcquisitionMode.PRIOR
    )
    _sys_during, during = stress(
        Technique.REFRESH, leased=True, mode=AcquisitionMode.DURING
    )
    # Both complete; the DURING variant should not show a dramatically
    # worse maximum than PRIOR (the paper finds it strictly better; a
    # slack factor keeps the assertion robust to scheduling noise).
    assert during.restart_stats.maximum <= max(
        prior.restart_stats.maximum * 2, 10
    )
