"""ConnectionPool: concurrency, capacity, and broken-connection shedding."""

import threading

import pytest

from repro.config import BackoffConfig, LeaseConfig, NetConfig
from repro.core.iq_server import IQServer
from repro.errors import ConnectionLostError
from repro.net import ConnectionPool, ResilientIQServer, serve_background


class _FakeConn:
    def __init__(self):
        self.broken = False
        self.closed = False

    def close(self):
        self.closed = True


class TestConnectionPoolUnit:
    def test_reuses_released_connections(self):
        dialed = []

        def dial():
            conn = _FakeConn()
            dialed.append(conn)
            return conn

        pool = ConnectionPool(dial, 4)
        first = pool.acquire()
        pool.release(first)
        assert pool.acquire() is first
        assert len(dialed) == 1
        pool.close()

    def test_caps_live_connections_and_blocks(self):
        pool = ConnectionPool(_FakeConn, 2)
        a, b = pool.acquire(), pool.acquire()
        grabbed = []

        def worker():
            conn = pool.acquire()
            grabbed.append(conn)
            pool.release(conn)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive()  # blocked: both slots are out
        pool.release(a)
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert grabbed == [a]
        pool.release(b)
        pool.close()

    def test_broken_connection_shed_on_release(self):
        dialed = []

        def dial():
            conn = _FakeConn()
            dialed.append(conn)
            return conn

        pool = ConnectionPool(dial, 1)
        conn = pool.acquire()
        conn.broken = True
        pool.release(conn)
        assert conn.closed  # shed, not pooled
        replacement = pool.acquire()
        assert replacement is not conn
        assert len(dialed) == 2
        pool.release(replacement)
        pool.close()

    def test_discard_frees_capacity(self):
        pool = ConnectionPool(_FakeConn, 1)
        conn = pool.acquire()
        pool.discard(conn)
        assert conn.closed
        fresh = pool.acquire()  # would deadlock if capacity leaked
        assert fresh is not conn
        pool.release(fresh)
        pool.close()

    def test_failed_dial_releases_slot_and_raises(self):
        calls = []

        def flaky_dial():
            calls.append(1)
            if len(calls) == 1:
                raise ConnectionLostError("refused")
            return _FakeConn()

        pool = ConnectionPool(flaky_dial, 1)
        with pytest.raises(ConnectionLostError):
            pool.acquire()
        conn = pool.acquire()  # the slot was not leaked
        pool.release(conn)
        pool.close()

    def test_close_closes_idle_connections(self):
        pool = ConnectionPool(_FakeConn, 2)
        conn = pool.acquire()
        pool.release(conn)
        pool.close()
        assert conn.closed
        with pytest.raises(ConnectionLostError):
            pool.acquire()


class TestDiscardAccounting:
    """A shard death discards every connection; the pool must re-dial.

    The regression shape: during a dead-shard burst each caller's error
    path discarded its connection, and double-settlement (discard after
    release, or two discards of one connection) corrupted ``_total``
    until the pool believed it was at capacity with no connections --
    every later acquire blocked forever instead of re-dialing.
    """

    def test_all_discarded_pool_redials_lazily(self):
        dialed = []

        def dial():
            conn = _FakeConn()
            dialed.append(conn)
            return conn

        pool = ConnectionPool(dial, 2)
        a, b = pool.acquire(), pool.acquire()
        pool.discard(a)
        pool.discard(b)
        assert pool.live_connections == 0
        fresh = pool.acquire()  # must dial, not block on phantom capacity
        assert fresh not in (a, b)
        assert len(dialed) == 3
        pool.release(fresh)
        pool.close()

    def test_double_discard_settles_once(self):
        pool = ConnectionPool(_FakeConn, 1)
        conn = pool.acquire()
        pool.discard(conn)
        pool.discard(conn)  # second settlement must be a no-op
        replacement = pool.acquire()
        assert replacement is not conn
        pool.release(replacement)
        pool.close()

    def test_discard_after_release_settles_once(self):
        pool = ConnectionPool(_FakeConn, 1)
        conn = pool.acquire()
        pool.release(conn)
        pool.discard(conn)  # removes the idle connection, settling once
        assert conn.closed
        replacement = pool.acquire()  # slot freed exactly once: no block
        assert replacement is not conn
        pool.release(replacement)
        pool.close()

    def test_double_release_is_a_noop(self):
        pool = ConnectionPool(_FakeConn, 2)
        conn = pool.acquire()
        pool.release(conn)
        pool.release(conn)
        a, b = pool.acquire(), pool.acquire()
        assert conn in (a, b)
        assert a is not b  # the double release must not duplicate the idle
        pool.release(a)
        pool.release(b)
        pool.close()

    def test_foreign_connection_is_rejected(self):
        pool = ConnectionPool(_FakeConn, 1)
        stranger = _FakeConn()
        pool.discard(stranger)
        pool.release(stranger)
        assert not stranger.closed
        conn = pool.acquire()  # capacity untouched by the stranger
        pool.release(conn)
        pool.close()


class TestResilientConcurrency:
    """The PR 5 contract: callers no longer serialize on one socket."""

    def _client(self, port, pool_size):
        return ResilientIQServer(
            port=port,
            config=NetConfig(connect_timeout=2.0, operation_timeout=5.0,
                             pool_size=pool_size),
            backoff_config=BackoffConfig(initial_delay=0.005,
                                         max_delay=0.02, jitter=0.0),
        )

    def test_parallel_callers_all_succeed(self):
        server, _ = serve_background(IQServer(
            lease_config=LeaseConfig(i_lease_ttl=5, q_lease_ttl=5)
        ))
        client = self._client(server.port, pool_size=3)
        errors = []
        done = []

        def worker(index):
            try:
                for round_ in range(20):
                    key = "k{}-{}".format(index, round_)
                    client.set(key, b"v")
                    assert client.get(key) == (b"v", 0)
                done.append(index)
            except Exception as exc:  # surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(done) == 8
        # The pool never dialed more than its cap.
        assert client.reconnects <= 3
        client.close()
        server.shutdown()

    def test_concurrent_pipelines_get_distinct_connections(self):
        server, _ = serve_background()
        client = self._client(server.port, pool_size=2)
        first = client.pipeline()
        second = client.pipeline()
        assert first._conn is not second._conn
        first.set("a", b"1")
        second.set("b", b"2")
        assert first.execute() is not None
        assert second.execute() is not None
        assert client.get("a") == (b"1", 0)
        assert client.get("b") == (b"2", 0)
        client.close()
        server.shutdown()
