import pytest

from repro.errors import ProtocolError
from repro.net.protocol import (
    CRLF,
    LineReader,
    data_block_size,
    parse_command_line,
    value_response,
)


class FakeSocket:
    def __init__(self, payload):
        self.payload = payload

    def recv(self, n):
        chunk, self.payload = self.payload[:n], self.payload[n:]
        return chunk


class TestLineReader:
    def test_reads_lines_across_chunks(self):
        reader = LineReader(FakeSocket(b"hello\r\nworld\r\n"), chunk_size=3)
        assert reader.read_line() == b"hello"
        assert reader.read_line() == b"world"

    def test_reads_exact_data_block(self):
        reader = LineReader(FakeSocket(b"abcde\r\nrest\r\n"))
        assert reader.read_bytes(5) == b"abcde"
        assert reader.read_line() == b"rest"

    def test_data_block_must_end_with_crlf(self):
        reader = LineReader(FakeSocket(b"abcdeXXtail\r\n"))
        with pytest.raises(ProtocolError):
            reader.read_bytes(5)

    def test_peer_close_raises(self):
        reader = LineReader(FakeSocket(b""))
        with pytest.raises(ConnectionError):
            reader.read_line()


class TestCommandParsing:
    def test_lowercases_command(self):
        command, args = parse_command_line(b"GET key1")
        assert command == "get"
        assert args == ["key1"]

    def test_empty_line_rejected(self):
        with pytest.raises(ProtocolError):
            parse_command_line(b"")

    def test_bad_utf8_rejected(self):
        with pytest.raises(ProtocolError):
            parse_command_line(b"\xff\xfe")

    def test_data_size_extraction(self):
        assert data_block_size("set", ["k", "0", "0", "5"]) == 5
        assert data_block_size("get", ["k"]) is None
        assert data_block_size("sar", ["k", "3", "-1"]) is None
        assert data_block_size("iqdelta", ["1", "k", "append", "4"]) == 4

    def test_missing_size_field(self):
        with pytest.raises(ProtocolError):
            data_block_size("set", ["k"])

    def test_non_numeric_size(self):
        with pytest.raises(ProtocolError):
            data_block_size("set", ["k", "0", "0", "five"])


def test_value_response_format():
    payload = value_response("k", b"hello", flags=3)
    assert payload == b"VALUE k 3 5" + CRLF + b"hello" + CRLF + b"END" + CRLF
    with_cas = value_response("k", b"v", cas_id=9)
    assert b"VALUE k 0 1 9" in with_cas
