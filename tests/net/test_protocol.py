import pytest

from repro.errors import ProtocolError
from repro.net.protocol import (
    CRLF,
    LineReader,
    data_block_size,
    parse_command_line,
    value_response,
)


class FakeSocket:
    def __init__(self, payload):
        self.payload = payload

    def recv(self, n):
        chunk, self.payload = self.payload[:n], self.payload[n:]
        return chunk


class TestLineReader:
    def test_reads_lines_across_chunks(self):
        reader = LineReader(FakeSocket(b"hello\r\nworld\r\n"), chunk_size=3)
        assert reader.read_line() == b"hello"
        assert reader.read_line() == b"world"

    def test_reads_exact_data_block(self):
        reader = LineReader(FakeSocket(b"abcde\r\nrest\r\n"))
        assert reader.read_bytes(5) == b"abcde"
        assert reader.read_line() == b"rest"

    def test_data_block_must_end_with_crlf(self):
        reader = LineReader(FakeSocket(b"abcdeXXtail\r\n"))
        with pytest.raises(ProtocolError):
            reader.read_bytes(5)

    def test_peer_close_raises(self):
        reader = LineReader(FakeSocket(b""))
        with pytest.raises(ConnectionError):
            reader.read_line()

    def test_many_buffered_frames_read_without_extra_recv(self):
        # The pipelined path: one recv delivers N frames; every one must
        # come back intact, in order, without touching the socket again.
        frames = b"".join(
            b"line%d\r\n" % i for i in range(100)
        )
        sock = FakeSocket(frames + b"")
        reader = LineReader(sock)
        for i in range(100):
            assert reader.read_line() == b"line%d" % i
        assert sock.payload == b""  # single fill consumed everything

    def test_pending_reports_buffered_complete_lines(self):
        reader = LineReader(FakeSocket(b"one\r\ntwo\r\npartial"))
        assert not reader.pending()  # nothing buffered before first read
        assert reader.read_line() == b"one"
        assert reader.pending()  # "two" is complete in the buffer
        assert reader.read_line() == b"two"
        assert not reader.pending()  # "partial" has no CRLF yet

    def test_interleaved_lines_and_data_blocks_stay_framed(self):
        # PR 1 framing discipline over the buffered reader: a data block
        # whose payload contains CRLF (even b"END\r\n") must never be
        # parsed as a line, and the frame after it must start clean.
        payload = b"x\r\nEND\r\n"
        stream = (
            b"VALUE k 0 %d\r\n" % len(payload) + payload + b"\r\n"
            + b"END\r\n"
            + b"STORED\r\n"
        )
        reader = LineReader(FakeSocket(stream), chunk_size=5)
        assert reader.read_line() == b"VALUE k 0 %d" % len(payload)
        assert reader.read_bytes(len(payload)) == payload
        assert reader.read_line() == b"END"
        assert reader.read_line() == b"STORED"

    def test_torn_data_block_missing_crlf_still_rejected(self):
        # Regression for the PR 1 desync fix: the buffered path must
        # reject a block whose terminator bytes are data, not CRLF.
        reader = LineReader(FakeSocket(b"head\r\nabcdeXXtail\r\n"))
        assert reader.read_line() == b"head"
        with pytest.raises(ProtocolError):
            reader.read_bytes(5)

    def test_compaction_preserves_stream_position(self):
        # Force many small frames past the compaction threshold and make
        # sure no byte is lost or re-served when the prefix is dropped.
        count = 20000  # ~180KB of frames, well past _COMPACT_THRESHOLD
        frames = b"".join(b"n%d\r\n" % i for i in range(count))
        reader = LineReader(FakeSocket(frames), chunk_size=1 << 20)
        for i in range(count):
            assert reader.read_line() == b"n%d" % i


class TestCommandParsing:
    def test_lowercases_command(self):
        command, args = parse_command_line(b"GET key1")
        assert command == "get"
        assert args == ["key1"]

    def test_empty_line_rejected(self):
        with pytest.raises(ProtocolError):
            parse_command_line(b"")

    def test_bad_utf8_rejected(self):
        with pytest.raises(ProtocolError):
            parse_command_line(b"\xff\xfe")

    def test_data_size_extraction(self):
        assert data_block_size("set", ["k", "0", "0", "5"]) == 5
        assert data_block_size("get", ["k"]) is None
        assert data_block_size("sar", ["k", "3", "-1"]) is None
        assert data_block_size("iqdelta", ["1", "k", "append", "4"]) == 4

    def test_missing_size_field(self):
        with pytest.raises(ProtocolError):
            data_block_size("set", ["k"])

    def test_non_numeric_size(self):
        with pytest.raises(ProtocolError):
            data_block_size("set", ["k", "0", "0", "five"])


def test_value_response_format():
    payload = value_response("k", b"hello", flags=3)
    assert payload == b"VALUE k 3 5" + CRLF + b"hello" + CRLF + b"END" + CRLF
    with_cas = value_response("k", b"v", cas_id=9)
    assert b"VALUE k 0 1 9" in with_cas
