"""Remaining wire-protocol commands: touch, TTL expiry, stats reset."""

import pytest

from repro.core.iq_server import IQServer
from repro.net import RemoteIQServer, serve_background
from repro.util.clock import LogicalClock


@pytest.fixture
def clocked():
    clock = LogicalClock()
    server, _thread = serve_background(IQServer(clock=clock))
    remote = RemoteIQServer(port=server.port)
    yield remote, clock
    remote.close()
    server.shutdown()


class TestTouchAndTTL:
    def test_set_with_ttl_expires(self, clocked):
        remote, clock = clocked
        remote.set("k", b"v", ttl=10)
        assert remote.get("k") == (b"v", 0)
        clock.advance(11)
        assert remote.get("k") is None

    def test_touch_extends(self, clocked):
        remote, clock = clocked
        remote.set("k", b"v", ttl=10)
        clock.advance(5)
        assert remote.touch("k", 20)
        clock.advance(15)
        assert remote.get("k") == (b"v", 0)

    def test_touch_missing(self, clocked):
        remote, _clock = clocked
        assert not remote.touch("ghost", 10)


class TestStatsOverWire:
    def test_lease_counters_visible(self, clocked):
        remote, _clock = clocked
        result = remote.iq_get("k")
        remote.iq_get("k")  # backoff
        remote.iq_set("k", b"v", result.token)
        stats = remote.stats()
        assert stats["i_lease_grants"] == 1
        assert stats["lease_backoffs"] == 1
        assert stats["cmd_set"] >= 1

    def test_flush_resets_data_not_counters(self, clocked):
        remote, _clock = clocked
        remote.set("k", b"v")
        remote.flush_all()
        stats = remote.stats()
        assert stats["cmd_set"] >= 1  # counters survive flush
        assert remote.get("k") is None
