"""Wire-protocol error handling and edge cases against a live server."""

import socket

import pytest

from repro.net import RemoteIQServer, serve_background
from repro.net.protocol import CRLF


@pytest.fixture
def served():
    server, _thread = serve_background()
    yield server
    server.shutdown()


def raw_exchange(port, payload, reads=1):
    with socket.create_connection(("127.0.0.1", port), timeout=5) as sock:
        sock.sendall(payload)
        chunks = []
        for _ in range(reads):
            chunks.append(sock.recv(65536))
        return b"".join(chunks)


class TestMalformedRequests:
    def test_unknown_command(self, served):
        reply = raw_exchange(served.port, b"warp 9" + CRLF)
        assert reply.startswith(b"SERVER_ERROR")

    def test_bad_size_field(self, served):
        reply = raw_exchange(served.port, b"set k 0 0 notanumber" + CRLF)
        assert reply.startswith(b"SERVER_ERROR")

    def test_key_with_control_chars(self, served):
        reply = raw_exchange(
            served.port, b"get bad\x01key" + CRLF
        )
        assert reply.startswith(b"CLIENT_ERROR") or reply.startswith(
            b"SERVER_ERROR"
        )

    def test_incr_non_numeric_value(self, served):
        with RemoteIQServer(port=served.port) as remote:
            remote.set("k", b"hello")
        reply = raw_exchange(served.port, b"incr k 1" + CRLF)
        assert reply.startswith(b"CLIENT_ERROR")

    def test_connection_survives_error(self, served):
        with socket.create_connection(("127.0.0.1", served.port)) as sock:
            sock.sendall(b"bogus" + CRLF)
            assert sock.recv(4096).startswith(b"SERVER_ERROR")
            sock.sendall(b"version" + CRLF)
            assert sock.recv(4096).startswith(b"VERSION")

    def test_oversized_value_rejected(self, served):
        payload = b"x" * (1024 * 1024 + 1)
        request = (
            "set big 0 0 {}".format(len(payload)).encode() + CRLF
            + payload + CRLF
        )
        reply = raw_exchange(served.port, request)
        assert reply.startswith(b"CLIENT_ERROR")


class TestMultiKeyGet:
    def test_get_multiple_keys_one_request(self, served):
        with RemoteIQServer(port=served.port) as remote:
            remote.set("a", b"1")
            remote.set("b", b"2")
        reply = raw_exchange(served.port, b"get a b missing" + CRLF)
        assert b"VALUE a 0 1" in reply
        assert b"VALUE b 0 1" in reply
        assert b"missing" not in reply
        assert reply.rstrip().endswith(b"END")


class TestLeaseTTLOverWire:
    def test_short_ttl_server(self):
        from repro.config import LeaseConfig
        from repro.core.iq_server import IQServer
        from repro.util.clock import LogicalClock

        clock = LogicalClock()
        iq = IQServer(
            lease_config=LeaseConfig(i_lease_ttl=1, q_lease_ttl=1),
            clock=clock,
        )
        server, _thread = serve_background(iq)
        try:
            with RemoteIQServer(port=server.port) as remote:
                result = remote.iq_get("k")
                assert result.has_lease
                clock.advance(2)
                # Expired token is ignored; a new lease can be granted.
                assert not remote.iq_set("k", b"late", result.token)
                assert remote.iq_get("k").has_lease
        finally:
            server.shutdown()

    def test_q_expiry_deletes_over_wire(self):
        from repro.config import LeaseConfig
        from repro.core.iq_server import IQServer
        from repro.util.clock import LogicalClock

        clock = LogicalClock()
        iq = IQServer(
            lease_config=LeaseConfig(q_lease_ttl=1), clock=clock
        )
        server, _thread = serve_background(iq)
        try:
            with RemoteIQServer(port=server.port) as remote:
                remote.set("k", b"v")
                tid = remote.gen_id()
                remote.qaread("k", tid)  # client "crashes" here
                clock.advance(2)
                iq.leases.sweep_expired()
                assert remote.get("k") is None
                assert not remote.sar("k", b"zombie", tid)
        finally:
            server.shutdown()


class TestPipelining:
    def test_sequential_commands_on_one_socket(self, served):
        """Multiple requests written before reading any reply."""
        request = (
            b"set a 0 0 1" + CRLF + b"1" + CRLF
            + b"set b 0 0 1" + CRLF + b"2" + CRLF
            + b"get a" + CRLF
        )
        with socket.create_connection(("127.0.0.1", served.port)) as sock:
            sock.sendall(request)
            received = b""
            while b"END" not in received:
                received += sock.recv(4096)
        assert received.count(b"STORED") == 2
        assert b"VALUE a 0 1" in received
