"""Transport parity: the event-loop server must match the threaded one.

The contract (docs/ARCHITECTURE.md §12): for any request byte stream, the
two transports produce the same reply byte stream -- same framing
recovery, same pipelined flush contents, same error wording, same
connection-close decisions -- and a seeded :class:`FaultPlan` observes
the same per-command hook activations on either stack.  These tests
drive both servers with raw sockets (adversarial clients included) and
compare the transcripts byte for byte.
"""

import socket
import time

import pytest

from repro.config import NetConfig
from repro.core.iq_server import IQServer
from repro.net import serve_background
from repro.net.protocol import CRLF

TRANSPORTS = ("threaded", "async")


def start(transport, net_config=None, injector=None):
    server, _thread = serve_background(
        iq_server=IQServer(), transport=transport,
        fault_injector=injector, net_config=net_config,
    )
    return server


def transcript(port, payload, chunks=None, timeout=5.0):
    """Send ``payload`` (optionally pre-chunked), half-close, read it all."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as sock:
        if chunks is None:
            sock.sendall(payload)
        else:
            for chunk in chunks:
                sock.sendall(chunk)
                time.sleep(0.001)
        sock.shutdown(socket.SHUT_WR)
        received = []
        while True:
            try:
                data = sock.recv(65536)
            except OSError:
                break
            if not data:
                break
            received.append(data)
        return b"".join(received)


def run_on_both(payload, net_config=None, chunks=None):
    """One fresh server per transport; returns both reply transcripts."""
    replies = {}
    for transport in TRANSPORTS:
        server = start(transport, net_config=net_config)
        try:
            replies[transport] = transcript(
                server.port, payload, chunks=chunks
            )
        finally:
            server.shutdown()
            server.server_close()
    return replies


def lines(*parts):
    return b"".join(p + CRLF for p in parts)


# A corpus of whole-connection request streams.  Every scenario runs on
# a FRESH server per transport (token/TID/cas counters restart at the
# same values), so the two reply transcripts must be byte-identical.
CORPUS = {
    "storage-and-retrieval": lines(
        b"set k1 0 0 5", b"hello",
        b"add k1 0 0 3", b"nah",
        b"add k2 7 0 2", b"hi",
        b"replace k2 7 0 3", b"hey",
        b"append k2 0 0 1", b"!",
        b"prepend k2 0 0 1", b"~",
        b"get k1 k2 missing",
        b"gets k2",
        b"set n 0 0 1", b"7",
        b"incr n 3",
        b"decr n 100",
        b"touch k1 60",
        b"touch missing 60",
        b"delete k1",
        b"delete k1",
        b"version",
    ),
    "iq-session": lines(
        b"genid",                       # ID 1 on a fresh server
        b"iqget user:1",                # LEASE (deterministic token)
        b"iqget user:1",                # BACKOFF (I lease held)
        b"iqset user:1 2 5", b"alice",  # token minted above
        b"iqget user:1",
        b"qaread user:1 1",
        b"sar user:1 1 3", b"bob",
        b"commit 1",
        b"iqget user:1",
        b"genid",
        b"qar 4 user:2",
        b"sar user:2 4 -1",             # null-value form, no data block
        b"abort 4",
    ),
    "multi-key-and-keysnap": lines(
        b"set a 0 0 1", b"A",
        b"set b 0 0 1", b"B",
        b"iqmget a b c",
        b"keysnap",
        b"genid",
        b"qareg 1 a b",
        b"commit 1",
        b"mdelete a b missing",
        b"keysnap",
    ),
    "trace-tokens": lines(
        b"set t 0 0 2 @t42", b"ok",
        b"get t @t42",
        b"iqget t @t43",
        b"genid @t44",
    ),
    "recoverable-errors": lines(
        b"warp 9",                      # unknown command
        b"get ok",                      # connection stays usable
        b"incr missing 1",
        b"set k 0 0 1", b"x",
        b"incr k 1",                    # CLIENT_ERROR non-numeric
        b"iqset k notanint 1", b"y",    # CLIENT_ERROR bad arguments
        b"get k",                       # data block was still consumed
        b"version",
    ),
    "unparseable-size-closes": lines(
        b"get before",
        b"set k 0 0 notanumber",        # size unknowable: error + close
        b"version",                     # never answered
    ),
    "broken-terminator-closes": (
        lines(b"get before")
        + b"set k 0 0 4" + CRLF + b"12345678" + CRLF
        + lines(b"version")
    ),
    "quit-discards-pipeline": lines(
        b"set k 0 0 1", b"q",
        b"get k",
        b"quit",
        b"get k",                       # after quit: never answered
    ),
    "pipelined-burst": lines(
        *([b"set burst 0 0 2", b"hi"]
          + [b"get burst"] * 40
          + [b"stats pipelined"] * 0    # stats excluded: values differ
          + [b"delete burst"])
    ),
    "precise-clock": lines(
        b"cget cool 0",                 # miss: nothing cached
        b"cset cool 0 8 5", b"fresh",   # STORED, valid over [0, 8)
        b"cget cool 3",                 # hit inside the interval
        b"cget cool 3 12",              # hit + dynamic extension to 12
        b"cset cool 0 9 5", b"worse",   # IGNORED: shorter-lived interval
        b"cset cool 5 5 4", b"void",    # IGNORED: empty interval
        b"cget cool 12",                # EXPIRED: past the extended bound
        b"cget cool 12",                # plain MISS: expiry dropped it
        b"set cool 0 0 4", b"zzzz",     # plain set leaves it unstamped
        b"cget cool 1",                 # MISS: unstamped entries never serve
        b"cget",                        # CLIENT_ERROR bad arguments
        b"cset cool 1 2 notanumber",    # size unknowable: error + close
    ),
    "precise-clock-pipelined": lines(
        *([b"cset hot 0 64 2", b"hi"]
          + [b"cget hot 1"] * 20
          + [b"cget hot 64"]            # EXPIRED mid-burst
          + [b"cget hot 64"] * 3        # then plain misses
          + [b"cset hot 64 65 2", b"yo",
             b"cget hot 64"])
    ),
}


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_reply_streams_identical(name):
    replies = run_on_both(CORPUS[name])
    assert replies["async"] == replies["threaded"], name
    assert replies["async"]  # every scenario elicits at least one reply


def test_byte_at_a_time_frames():
    """One-byte TCP segments must not break framing on either transport."""
    payload = lines(b"set slow 0 0 5", b"hello", b"get slow", b"quit")
    chunks = [payload[i:i + 1] for i in range(len(payload))]
    replies = run_on_both(payload, chunks=chunks)
    assert replies["async"] == replies["threaded"]
    assert b"STORED" in replies["async"]
    assert b"VALUE slow 0 5" + CRLF + b"hello" in replies["async"]


def test_clock_commands_byte_at_a_time():
    """cget/cset framing (data block + CVALUE reply) survives 1-byte
    segments identically on both transports."""
    payload = lines(
        b"cset ck 2 9 5", b"hello",
        b"cget ck 3",
        b"cget ck 9",
        b"quit",
    )
    chunks = [payload[i:i + 1] for i in range(len(payload))]
    replies = run_on_both(payload, chunks=chunks)
    assert replies["async"] == replies["threaded"]
    assert b"CVALUE ck 0 2 9 5" + CRLF + b"hello" + CRLF + b"END" \
        in replies["async"]
    assert b"EXPIRED" in replies["async"]


@pytest.mark.parametrize("transport", TRANSPORTS)
@pytest.mark.parametrize("cut", [
    b"get half",                 # mid command line, no CRLF
    b"set k 0 0 10" + CRLF,      # announced block, no payload
    b"set k 0 0 10" + CRLF + b"12345",  # partial payload
])
def test_mid_frame_disconnect_leaves_server_serving(transport, cut):
    server = start(transport)
    try:
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            sock.sendall(cut)
        # The abandoned frame dies with its connection; a fresh client
        # gets normal service.
        reply = transcript(server.port, lines(b"version"))
        assert reply.startswith(b"VERSION")
    finally:
        server.shutdown()
        server.server_close()


class TestPipelineBufferCap:
    """Satellite: NetConfig.max_pipeline_buffer bounds both transports."""

    CAP = 4096

    def config(self):
        return NetConfig(max_pipeline_buffer=self.CAP)

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_unterminated_flood_gets_error_and_close(self, transport):
        server = start(transport, net_config=self.config())
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port)
            ) as sock:
                sock.settimeout(5)
                # A "line" that never terminates, far past the cap.
                flood = b"x" * (self.CAP * 4)
                try:
                    sock.sendall(flood)
                except OSError:
                    pass  # server may already have closed on us
                received = b""
                while True:
                    try:
                        data = sock.recv(65536)
                    except OSError:
                        break
                    if not data:
                        break
                    received += data
                assert b"SERVER_ERROR connection buffered" in received
        finally:
            server.shutdown()
            server.server_close()

    def test_oversized_announced_block_identical_refusal(self):
        # Announcing a block bigger than the cap is refused up front --
        # before any flooding bytes are buffered -- with identical
        # wording on both transports.
        payload = lines(
            b"version",
            "set big 0 0 {}".format(self.CAP * 10).encode(),
        )
        replies = run_on_both(payload, net_config=self.config())
        assert replies["async"] == replies["threaded"]
        assert b"SERVER_ERROR connection buffered" in replies["async"]

    def test_async_half_open_reader_is_disconnected(self):
        # A peer that pipelines requests but never reads replies cannot
        # pin unbounded reply memory: the event loop cuts it off once
        # the backlog passes the cap (the threaded transport instead
        # blocks in sendall -- kernel backpressure -- so this behavior
        # is event-loop-specific).
        iq = IQServer()
        iq.store.set("big", b"v" * 1024)
        server, _thread = serve_background(
            iq_server=iq, transport="async", net_config=self.config(),
        )
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port)
            ) as sock:
                sock.settimeout(10)
                burst = lines(*[b"get big"] * 500)
                try:
                    sock.sendall(burst)
                    # Never read.  The server must close on us; detect it
                    # by the read side reaching EOF/reset.
                    while sock.recv(0) is not None:
                        data = sock.recv(65536)
                        if not data:
                            break
                except OSError:
                    pass
            deadline = time.time() + 5
            while time.time() < deadline:
                if iq.stats.get("evloop_overflow_closes") > 0:
                    break
                time.sleep(0.01)
            assert iq.stats.get("evloop_overflow_closes") > 0
        finally:
            server.shutdown()
            server.server_close()


def test_keysnap_under_pipelining():
    """keysnap inside a pipelined burst: point-in-time snapshot, in-order
    reply, identical on both transports."""
    payload = lines(
        b"set k1 0 0 1", b"1",
        b"set k2 0 0 1", b"2",
        b"keysnap",
        b"set k3 0 0 1", b"3",
        b"keysnap",
        b"mdelete k1 k2 k3",
        b"keysnap",
    )
    replies = run_on_both(payload)
    assert replies["async"] == replies["threaded"]
    text = replies["async"]
    first = text.find(b"KEY k1" + CRLF + b"KEY k2" + CRLF + b"END")
    assert first != -1, text
    assert b"KEY k1" + CRLF + b"KEY k2" + CRLF + b"KEY k3" + CRLF + b"END" \
        in text[first:]
    assert text.rstrip().endswith(b"END")  # final keysnap: empty store


class TestFaultHookParity:
    """A seeded FaultPlan observes the same activations on both stacks."""

    PAYLOAD = lines(
        b"set k 0 0 5", b"hello",
        *([b"get k"] * 6
          + [b"delete k", b"get k", b"set k 0 0 2", b"vv"]
          + [b"get k"] * 4
          + [b"version"])
    )

    def plan(self):
        from repro.faults import FaultPlan, FaultRule
        from repro.faults.injector import (
            FaultAction,
            SITE_NET_RECV,
            SITE_SERVER_REPLY,
            SITE_SERVER_REQUEST,
        )

        return FaultPlan([
            FaultRule(SITE_SERVER_REQUEST, FaultAction.DELAY,
                      every=3, count=None, delay=0.0, label="req-delay"),
            FaultRule(SITE_SERVER_REPLY, FaultAction.CORRUPT,
                      every=4, count=None, label="reply-corrupt",
                      match=lambda ctx: ctx.get("command") == "get"),
            FaultRule(SITE_NET_RECV, FaultAction.DELAY,
                      every=2, count=None, delay=0.0, label="recv-delay"),
        ])

    def run(self, transport):
        from repro.faults import FaultInjector

        injector = FaultInjector(self.plan(), seed=7)
        server = start(transport, injector=injector)
        try:
            transcript(server.port, self.PAYLOAD)
        finally:
            server.shutdown()
            server.server_close()
        return injector

    @staticmethod
    def activations(injector, site):
        # Drop the global seq: net.recv interleaves differently (chunk
        # boundaries are the one place the transports legitimately
        # differ), which shifts global numbering without changing the
        # per-site, per-command activation history.
        return [
            (sig[1], sig[2], sig[3], sig[4])
            for sig in injector.signatures() if sig[1] == site
        ]

    def test_same_request_and_reply_activations(self):
        from repro.faults.injector import (
            SITE_NET_RECV,
            SITE_SERVER_REPLY,
            SITE_SERVER_REQUEST,
        )

        threaded = self.run("threaded")
        evented = self.run("async")
        for site in (SITE_SERVER_REQUEST, SITE_SERVER_REPLY):
            assert self.activations(threaded, site) == \
                self.activations(evented, site), site
        # Command dispatch counts must agree exactly.
        assert threaded.events_at(SITE_SERVER_REQUEST) == \
            evented.events_at(SITE_SERVER_REQUEST)
        # net.recv fires on both, but per-chunk counts may differ.
        assert threaded.fired(SITE_NET_RECV) >= 1
        assert evented.fired(SITE_NET_RECV) >= 1


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_drop_and_kill_faults(transport):
    """DROP_CONNECTION and KILL_SERVER behave alike on both transports."""
    from repro.faults import FaultInjector, FaultPlan, FaultRule
    from repro.faults.injector import FaultAction, SITE_SERVER_REQUEST

    # First connection: the 3rd command's request hook drops the
    # connection.  The dropped command and everything pipelined behind
    # it never get replies (whether replies 1-2 were already flushed
    # depends only on TCP arrival timing, on either transport).
    injector = FaultInjector(FaultPlan([
        FaultRule(SITE_SERVER_REQUEST, FaultAction.DROP_CONNECTION, nth=3),
    ]))
    server = start(transport, injector=injector)
    try:
        reply = transcript(server.port, lines(*[b"version"] * 5))
        assert reply.count(b"VERSION") <= 2, reply
        assert transcript(server.port, lines(b"version")).startswith(
            b"VERSION"
        )
    finally:
        server.shutdown()
        server.server_close()

    # KILL_SERVER takes the whole listener down.
    injector = FaultInjector(FaultPlan([
        FaultRule(SITE_SERVER_REQUEST, FaultAction.KILL_SERVER, nth=2),
    ]))
    server = start(transport, injector=injector)
    try:
        transcript(server.port, lines(b"version", b"version"))
        deadline = time.time() + 5
        while time.time() < deadline:
            try:
                socket.create_connection(
                    ("127.0.0.1", server.port), timeout=0.2
                ).close()
            except OSError:
                break
            time.sleep(0.02)
        else:
            pytest.fail("listener still accepting after KILL_SERVER")
    finally:
        server.shutdown()
        server.server_close()
