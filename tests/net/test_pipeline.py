"""Pipelined wire protocol: batch commands, ordering, fault discipline.

The pipeline contract under test:

* every queued command gets exactly one reply, delivered in request
  order -- the server drains all buffered commands before flushing one
  write-back;
* a per-command ``QuarantinedError`` consumes its whole reply, lands in
  its result slot, and later replies still parse;
* a transport or framing failure mid-pipeline poisons the *connection*
  -- no partial results, and the client must never try to resynchronize
  onto a stale reply (the PR 1 frame-desync discipline, extended);
* multi-key commands (``iqmget`` / ``qareg`` / ``mdelete``) follow the
  same grammar rules as their per-key ancestors.
"""

import pytest

from repro.core.iq_client import IQClient, LocalPipeline
from repro.core.iq_server import IQServer
from repro.errors import (
    ConnectionLostError,
    ProtocolError,
    QuarantinedError,
)
from repro.faults import FaultAction, FaultInjector, FaultPlan, FaultRule
from repro.faults.injector import (
    SITE_CLIENT_AFTER_SEND,
    SITE_NET_RECV,
    SITE_SERVER_REPLY,
)
from repro.kvs.store import StoreResult
from repro.net import RemoteIQServer, serve_background
from repro.obs.trace import get_tracer, recording, trace_context


@pytest.fixture
def served():
    server, thread = serve_background()
    yield server
    server.shutdown()


@pytest.fixture
def remote(served):
    client = RemoteIQServer(port=served.port)
    yield client
    client.close()


class TestPipelineOrdering:
    def test_replies_in_request_order(self, remote):
        with remote.pipeline() as pipe:
            pipe.set("a", b"1").set("b", b"2").get("a").get("b").get("c")
        assert pipe.results == [
            StoreResult.STORED, StoreResult.STORED,
            (b"1", 0), (b"2", 0), None,
        ]

    def test_write_session_through_one_pipeline(self, remote):
        remote.set("k", b"old")
        tid = remote.gen_id()
        results = (
            remote.pipeline()
            .qar(tid, "k")
            .dar(tid)
            .get("k")
            .execute()
        )
        assert results == [True, True, None]  # invalidated by the DaR

    def test_empty_pipeline_is_a_noop(self, remote):
        pipe = remote.pipeline()
        assert pipe.execute() == []
        assert remote.version()  # connection untouched

    def test_pipeline_cannot_execute_twice(self, remote):
        pipe = remote.pipeline().get("k")
        pipe.execute()
        with pytest.raises(RuntimeError):
            pipe.execute()
        with pytest.raises(RuntimeError):
            pipe.get("again")

    def test_server_counts_pipelined_commands(self, served, remote):
        pipe = remote.pipeline()
        for i in range(10):
            pipe.set("k{}".format(i), b"v")
        pipe.execute()
        # One sendall delivers all ten frames; the server must have
        # drained multiple commands per reply flush.
        assert remote.stats()["pipelined_commands"] >= 5

    def test_trace_token_captured_per_queued_command(self, remote):
        tracer = get_tracer()
        with recording() as events:
            tid1 = remote.gen_id()
            tid2 = remote.gen_id()
            t1, t2 = tracer.new_trace(), tracer.new_trace()
            pipe = remote.pipeline()
            with trace_context(t1):
                pipe.commit(tid1)
            with trace_context(t2):
                pipe.commit(tid2)
            assert pipe.execute() == [True, True]
        commits = [e for e in events.events()
                   if e.name == "iq.commit.begin"]
        # The server re-entered each command's own queue-time trace.
        assert [e.trace_id for e in commits] == [t1, t2]


class TestPipelineErrorDiscipline:
    def test_quarantined_reply_lands_in_slot(self, remote):
        holder = remote.gen_id()
        assert remote.qar(holder, "contested")
        rival = remote.gen_id()
        # QaRead requests an exclusive Q lease, incompatible with the
        # held invalidation lease (Fig. 5a) -- the middle reply aborts.
        results = (
            remote.pipeline()
            .set("x", b"1")
            .qaread("contested", rival)
            .get("x")
            .execute()
        )
        assert results[0] is StoreResult.STORED
        assert isinstance(results[1], QuarantinedError)
        assert results[2] == (b"1", 0)
        # The reply stream stayed in sync: the connection is healthy.
        assert not remote.broken
        assert remote.version()

    def test_drop_after_send_poisons_whole_pipeline(self, served):
        injector = FaultInjector(FaultPlan([FaultRule(
            SITE_NET_RECV, FaultAction.DROP_CONNECTION, nth=1,
        )]))
        remote = RemoteIQServer(port=served.port, injector=injector)
        pipe = remote.pipeline().set("a", b"1").get("a")
        with pytest.raises(ConnectionLostError):
            pipe.execute()
        assert pipe.results is None  # no partial results
        assert remote.broken
        # Never resync: every later use fails fast with the typed error.
        with pytest.raises(ConnectionLostError):
            remote.get("a")
        with pytest.raises(ConnectionLostError):
            remote.pipeline().get("a").execute()
        remote.close()

    def test_truncated_reply_mid_pipeline_never_resyncs(self):
        # The server delivers the first reply, truncates the second
        # mid-frame, and drops the connection: the client must consume
        # reply one, fail on the torn frame, and poison the pipeline --
        # never hand reply one back or try to resync onto reply three.
        injector = FaultInjector(FaultPlan([FaultRule(
            SITE_SERVER_REPLY, FaultAction.TRUNCATE, nth=1,
            match=lambda ctx: ctx.get("command") == "get",
        )]))
        server, _ = serve_background(fault_injector=injector)
        remote = RemoteIQServer(port=server.port)
        pipe = remote.pipeline().set("a", b"1").get("a").set("b", b"2")
        with pytest.raises((ProtocolError, ConnectionLostError)):
            pipe.execute()
        assert pipe.results is None
        assert remote.broken
        with pytest.raises(ConnectionLostError):
            remote.get("a")
        remote.close()
        server.shutdown()

    def test_drop_before_send_leaves_nothing_half_sent(self, served):
        injector = FaultInjector(FaultPlan([FaultRule(
            SITE_CLIENT_AFTER_SEND, FaultAction.DROP_CONNECTION, nth=1,
            match=lambda ctx: ctx.get("command") == "pipeline",
        )]))
        remote = RemoteIQServer(port=served.port, injector=injector)
        with pytest.raises(ConnectionLostError):
            remote.pipeline().set("a", b"1").execute()
        assert remote.broken
        remote.close()


class TestMultiKeyCommands:
    def test_iq_mget_mixed_outcomes(self, remote):
        remote.set("hit", b"cached")
        # Park an I lease on "busy" so the batch read backs off there.
        assert remote.iq_get("busy").has_lease
        results = remote.iq_mget(["hit", "cold", "busy"])
        assert list(results) == ["hit", "cold", "busy"]
        assert results["hit"].is_hit and results["hit"].value == b"cached"
        assert results["cold"].has_lease
        assert results["busy"].backoff
        # The granted lease is real: a fill through it installs.
        assert remote.iq_set("cold", b"filled", results["cold"].token)
        assert remote.get("cold") == (b"filled", 0)

    def test_iq_mget_carries_session_token(self, remote):
        remote.set("mine", b"v")
        tid = remote.gen_id()
        assert remote.qar(tid, "mine")
        with_session = remote.iq_mget(["mine"], session=tid)
        assert not with_session["mine"].is_hit
        assert not with_session["mine"].backoff  # read-your-own miss
        plain = remote.iq_mget(["mine"])
        # Everyone else is served the pending (pre-invalidation) version
        # during the quarantine window (Fig. 4 deferred delete).
        assert plain["mine"].is_hit and plain["mine"].value == b"v"

    def test_iq_mget_empty_keys_short_circuits(self, remote):
        assert remote.iq_mget([]) == {}

    def test_qareg_grants_then_stops_at_reject(self, remote):
        holder = remote.gen_id()
        # An exclusive (QaRead) holder makes the rival's shared QaR
        # reject -- two invalidation QaRs would be compatible (Fig. 5a).
        remote.qaread("locked", holder)
        tid = remote.gen_id()
        statuses = remote.qar_many(tid, ["a", "locked", "never"])
        assert statuses == {"a": "granted", "locked": "abort"}
        assert "never" not in statuses  # stop-at-first-reject
        assert remote.stats()["batched_qar_grants"] >= 1

    def test_qareg_grant_set_commits_like_sequential(self, remote):
        remote.set("a", b"1")
        remote.set("b", b"2")
        tid = remote.gen_id()
        assert remote.qar_many(tid, ["a", "b"]) == {
            "a": "granted", "b": "granted",
        }
        remote.dar(tid)
        assert remote.get("a") is None and remote.get("b") is None

    def test_mdelete_counts_hits(self, remote):
        remote.set("a", b"1")
        remote.set("b", b"2")
        assert remote.mdelete(["a", "b", "ghost"]) == 2
        assert remote.get("a") is None
        assert remote.mdelete([]) == 0

    def test_multi_key_commands_inside_a_pipeline(self, remote):
        remote.set("a", b"1")
        tid = remote.gen_id()
        with remote.pipeline() as pipe:
            pipe.iq_mget(["a", "b"]).qar_many(tid, ["c"]).mdelete(["a"])
        mget, statuses, deleted = pipe.results
        assert mget["a"].is_hit and mget["b"].has_lease
        assert statuses == {"c": "granted"}
        assert deleted == 1


class TestLocalPipeline:
    """IQClient.pipeline() over an in-process backend."""

    def test_mirrors_wire_pipeline_semantics(self):
        client = IQClient(IQServer())
        pipe = client.pipeline()
        assert isinstance(pipe, LocalPipeline)
        holder = client.gen_id()
        client.qar(holder, "contested")
        rival = client.gen_id()
        with pipe:
            pipe.gen_id().qaread("contested", rival).iq_get("k")
        fresh_tid, rejected, read = pipe.results
        assert isinstance(fresh_tid, int)
        assert isinstance(rejected, QuarantinedError)
        assert read.has_lease

    def test_wire_backend_gets_wire_pipeline(self, remote):
        from repro.net.client import Pipeline

        client = IQClient(remote)
        assert isinstance(client.pipeline(), Pipeline)
