"""Wire-protocol edge cases: torn frames, desync, restart concurrency.

These tests speak raw bytes to a live server to pin down the framing
discipline: a malformed command must never leave its data block behind
to be misparsed as the next request (frame desync), and a frame whose
length is unknowable must close the connection rather than guess.
"""

import socket
import threading
import time

import pytest

from repro.config import BackoffConfig, LeaseConfig, NetConfig
from repro.core.iq_server import IQServer
from repro.errors import CacheUnavailableError
from repro.faults import RestartableServer
from repro.net import ResilientIQServer, serve_background
from repro.net.protocol import CRLF


@pytest.fixture
def served():
    server, _thread = serve_background()
    yield server
    server.shutdown()
    server.server_close()


def connect(port):
    return socket.create_connection(("127.0.0.1", port), timeout=5)


def recv_all_closed(sock):
    """Read until the peer closes; returns everything received."""
    chunks = []
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            return b"".join(chunks)
        chunks.append(chunk)


class TestFrameDesync:
    """Satellite regression: data blocks are consumed before validation."""

    def test_bad_args_with_data_block_keeps_connection_usable(self, served):
        # "sar k notanumber 3" announces a 3-byte block; the tid is junk.
        # The server must consume the block, report CLIENT_ERROR, and keep
        # the stream aligned so the next command parses cleanly.
        with connect(served.port) as sock:
            sock.sendall(b"sar k notanumber 3" + CRLF + b"abc" + CRLF)
            assert sock.recv(4096).startswith(b"CLIENT_ERROR")
            sock.sendall(b"version" + CRLF)
            assert sock.recv(4096).startswith(b"VERSION")

    def test_payload_never_parsed_as_command(self, served):
        # Before the desync fix, the 11-byte payload "flush_all\r\n" of a
        # rejected command would be read back as the *next* command line.
        payload = b"flush_all" + CRLF
        with ResilientIQServer(port=served.port) as probe:
            probe.set("canary", b"alive")
        with connect(served.port) as sock:
            sock.sendall(
                "cas canary 0 0 {} notanumber".format(len(payload)).encode()
                + CRLF + payload + CRLF
            )
            assert sock.recv(4096).startswith(b"CLIENT_ERROR")
            sock.sendall(b"get canary" + CRLF)
            reply = sock.recv(4096)
        # The canary survives: the embedded flush_all never executed.
        assert b"VALUE canary 0 5" in reply

    def test_unparseable_size_closes_connection(self, served):
        # "set k 0 0 zzz": the byte count is unknowable, the stream is
        # beyond repair.  Error reply, then hang up (memcached behavior).
        with connect(served.port) as sock:
            sock.sendall(b"set k 0 0 zzz" + CRLF + b"junk that follows")
            reply = recv_all_closed(sock)
        assert reply.startswith(b"SERVER_ERROR")


class TestTornFrames:
    def test_partial_command_line_then_disconnect(self, served):
        with connect(served.port) as sock:
            sock.sendall(b"get half-a-comma")  # no CRLF ever comes
        # The handler sees EOF mid-line and exits quietly; the server
        # keeps serving other clients.
        with connect(served.port) as sock:
            sock.sendall(b"version" + CRLF)
            assert sock.recv(4096).startswith(b"VERSION")

    def test_partial_data_block_then_disconnect(self, served):
        with connect(served.port) as sock:
            sock.sendall(b"set k 0 0 10" + CRLF + b"only4")
        with ResilientIQServer(port=served.port) as probe:
            assert probe.get("k") is None  # the torn set never landed
            probe.set("k2", b"ok")
            assert probe.get("k2") == (b"ok", 0)

    def test_data_block_missing_trailing_crlf(self, served):
        # Announced 3 bytes arrive but the terminator is wrong: framing
        # is broken and the connection must close after the error.
        with connect(served.port) as sock:
            sock.sendall(b"set k 0 0 3" + CRLF + b"abcXY")
            reply = recv_all_closed(sock)
        assert reply.startswith(b"SERVER_ERROR")
        with ResilientIQServer(port=served.port) as probe:
            assert probe.get("k") is None

    def test_body_larger_than_announced(self, served):
        # Six bytes follow a 3-byte announcement; the overflow cannot be
        # resynchronized, so the connection closes after the error.
        with connect(served.port) as sock:
            sock.sendall(b"set k 0 0 3" + CRLF + b"abcdef" + CRLF)
            reply = recv_all_closed(sock)
        assert reply.startswith(b"SERVER_ERROR")
        with ResilientIQServer(port=served.port) as probe:
            assert probe.get("k") is None


class TestConcurrentClientsAcrossRestart:
    def test_clients_survive_server_restart(self):
        server = RestartableServer(lambda tid_start=1: IQServer(
            lease_config=LeaseConfig(i_lease_ttl=5, q_lease_ttl=5),
            tid_start=tid_start,
        ))
        server.start()
        config = NetConfig(
            connect_timeout=1.0, operation_timeout=2.0, max_retries=2,
            breaker_failure_threshold=3, breaker_cooldown=0.02,
        )
        backoff = BackoffConfig(
            initial_delay=0.005, max_delay=0.02, jitter=0.0
        )
        errors = []
        anomalies = []

        def worker(idx):
            key = "w{}".format(idx)
            written = set()
            client = ResilientIQServer(
                port=server.port, config=config, backoff_config=backoff
            )
            try:
                for i in range(40):
                    value = "v{}".format(i).encode()
                    try:
                        client.set(key, value)
                        written.add(value)
                        hit = client.get(key)
                    except CacheUnavailableError:
                        time.sleep(0.005)
                        continue
                    # A hit must be a value this worker wrote -- a miss is
                    # fine (cold cache after restart), cross-talk is not.
                    if hit is not None and hit[0] not in written:
                        anomalies.append((key, hit))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)
            finally:
                client.close()

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.1)
        server.restart()
        for thread in threads:
            thread.join(timeout=30)
        server.kill()
        assert not errors
        assert not anomalies
        assert server.kills == 2  # the restart plus the final teardown
