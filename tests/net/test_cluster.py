"""Process-per-shard deployment: worker handshake, supervision, drain."""

import signal
import socket
import time

import pytest

from repro.net.cluster import ClusterError, IQCluster, ShardProcess
from repro.net.protocol import CRLF


class TestShardProcess:
    def test_handshake_ping_and_graceful_stop(self):
        proc = ShardProcess("s0", transport="async")
        proc.start()
        try:
            assert proc.alive
            assert proc.port > 0
            with socket.create_connection(
                ("127.0.0.1", proc.port), timeout=5
            ) as sock:
                sock.sendall(b"version" + CRLF)
                assert sock.recv(4096).startswith(b"VERSION")
        finally:
            proc.stop(graceful=True)
        assert proc.poll() == 0  # SIGTERM is an orderly exit

    def test_sigterm_drain_flushes_pipelined_replies(self):
        proc = ShardProcess("s0", transport="async")
        proc.start()
        try:
            with socket.create_connection(
                ("127.0.0.1", proc.port), timeout=5
            ) as sock:
                batch = b"".join(
                    b"set k 0 0 1" + CRLF + b"x" + CRLF for _ in range(50)
                )
                sock.sendall(batch)
                proc.proc.send_signal(signal.SIGTERM)
                sock.settimeout(10)
                received = b""
                while received.count(b"STORED") < 50:
                    try:
                        data = sock.recv(65536)
                    except OSError:
                        break
                    if not data:
                        break
                    received += data
                # The drain contract: no reply earned before the TERM is
                # lost.  (Commands the worker never got to execute have
                # no reply to lose -- but a whole batch accepted in one
                # segment is executed as one unit by the event loop.)
                assert received.count(b"STORED") in (0, 50), \
                    received.count(b"STORED")
            # Wait for the TERM-triggered exit before cleanup: a second
            # TERM from stop() could land during interpreter shutdown,
            # after CPython restored the default (abrupt) disposition.
            proc.proc.wait(timeout=10)
        finally:
            proc.stop()
        assert proc.poll() == 0

    def test_double_start_refused(self):
        proc = ShardProcess("s0")
        proc.start()
        try:
            with pytest.raises(ClusterError):
                proc.start()
        finally:
            proc.stop()

    def test_restart_reuses_port(self):
        proc = ShardProcess("s0", transport="threaded")
        proc.start()
        first_port = proc.port
        try:
            proc.restart()
            assert proc.port == first_port
            assert proc.restarts == 1
            with socket.create_connection(
                ("127.0.0.1", proc.port), timeout=5
            ) as sock:
                sock.sendall(b"version" + CRLF)
                assert sock.recv(4096).startswith(b"VERSION")
        finally:
            proc.stop()


class TestIQCluster:
    @pytest.fixture
    def cluster(self):
        cluster = IQCluster(shards=2, transport="async",
                            monitor_interval=0.1)
        cluster.start()
        yield cluster
        cluster.stop()

    def test_routes_keys_across_worker_processes(self, cluster):
        router = cluster.router
        for i in range(16):
            key = "key{}".format(i)
            result = router.iq_get(key)
            assert result.has_lease
            assert router.iq_set(key, str(i).encode(), result.token)
        for i in range(16):
            assert router.iq_get("key{}".format(i)).value == str(i).encode()
        # Both shards really served traffic (merged wire-level stats).
        per_shard = [client.stats()["cmd_get"] for client in cluster.clients]
        assert all(count > 0 for count in per_shard), per_shard

    def test_write_session_spans_shards(self, cluster):
        router = cluster.router
        keys = ["sess{}".format(i) for i in range(8)]
        tid = router.gen_id()
        for key in keys:
            router.qar(tid, key)
        router.commit(tid)

    def test_health_and_crash_restart(self, cluster):
        assert all(cluster.health().values())
        port_before = cluster.ports[1]
        cluster.kill_shard(1)
        assert cluster.wait_healthy(timeout=15), cluster.health()
        assert cluster.ports[1] == port_before
        assert cluster.processes[1].restarts == 1
        assert cluster.total_restarts == 1
        # The restarted worker serves (cold: contract says empty cache).
        result = cluster.router.iq_get("after-restart")
        assert result.has_lease or result.backoff

    def test_graceful_stop_exits_zero(self):
        cluster = IQCluster(shards=2, transport="threaded",
                            monitor_interval=0.1)
        cluster.start()
        cluster.stop(graceful=True)
        assert [proc.poll() for proc in cluster.processes] == [0, 0]
