"""ResilientIQServer: reconnect, retry, circuit breaker, reconciliation."""

import socket
import time

import pytest

from repro.config import BackoffConfig, LeaseConfig, NetConfig
from repro.core.iq_server import IQServer
from repro.errors import (
    CircuitOpenError,
    ConnectionLostError,
    OperationTimeout,
)
from repro.faults import FaultInjector, FaultPlan, RestartableServer
from repro.net import ResilientIQServer, serve_background
from repro.net.client import RemoteIQServer
from repro.net.resilient import CircuitState


def fast_config(**overrides):
    base = dict(
        connect_timeout=1.0,
        operation_timeout=1.0,
        max_retries=2,
        breaker_failure_threshold=2,
        breaker_cooldown=0.05,
    )
    base.update(overrides)
    return NetConfig(**base)


def fast_backoff():
    return BackoffConfig(initial_delay=0.005, max_delay=0.02, jitter=0.0)


def make_iq(tid_start=1):
    return IQServer(
        lease_config=LeaseConfig(i_lease_ttl=5, q_lease_ttl=5),
        tid_start=tid_start,
    )


@pytest.fixture
def restartable():
    server = RestartableServer(make_iq)
    server.start()
    yield server
    server.kill()


def resilient_for(server, **config_overrides):
    return ResilientIQServer(
        port=server.port,
        config=fast_config(**config_overrides),
        backoff_config=fast_backoff(),
    )


class TestPoisonedConnection:
    """Satellite regression: a dead socket may never serve another reply."""

    def test_midstream_failure_poisons_connection(self):
        server, _ = serve_background()
        remote = RemoteIQServer(port=server.port)
        assert remote.version().startswith("repro")
        server.shutdown()
        server.server_close()
        with pytest.raises(ConnectionLostError):
            remote.version()
        assert remote.broken
        # Later calls fail fast with the typed error -- no garbage reads.
        with pytest.raises(ConnectionLostError):
            remote.get("k")

    def test_connect_refused_is_typed(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ConnectionLostError):
            RemoteIQServer(port=port, timeout=0.5)


class TestReconnect:
    def test_transparent_operation(self, restartable):
        client = resilient_for(restartable)
        client.set("k", b"v")
        assert client.get("k") == (b"v", 0)
        result = client.iq_get("missing")
        assert result.has_lease
        assert client.iq_set("missing", b"filled", result.token)
        assert client.get("missing") == (b"filled", 0)
        client.close()

    def test_reconnects_after_server_restart(self, restartable):
        client = resilient_for(restartable)
        client.set("k", b"v")
        restartable.restart()
        # The old connection is dead; an idempotent call heals itself.
        assert client.get("k") is None  # cold cache after restart
        assert client.reconnects == 2
        assert client.retries >= 1
        client.close()

    def test_operation_timeout(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        try:
            client = ResilientIQServer(
                port=listener.getsockname()[1],
                config=fast_config(operation_timeout=0.2, max_retries=0),
                backoff_config=fast_backoff(),
            )
            with pytest.raises(OperationTimeout):
                client.version()
        finally:
            listener.close()


class TestIdempotencyAwareRetry:
    def _client(self, server, injector):
        return ResilientIQServer(
            port=server.port,
            config=fast_config(breaker_failure_threshold=10),
            backoff_config=fast_backoff(),
            injector=injector,
        )

    def test_idempotent_op_retried_after_injected_drop(self, restartable):
        from repro.faults import FaultAction, FaultRule
        from repro.faults.injector import SITE_CLIENT_AFTER_SEND

        injector = FaultInjector(FaultPlan([FaultRule(
            SITE_CLIENT_AFTER_SEND, FaultAction.DROP_CONNECTION, nth=1,
            match=lambda ctx: ctx.get("command") == "get",
        )]))
        client = self._client(restartable, injector)
        client.set("k", b"v")
        # The drop fires on the first get; the client heals transparently.
        assert client.get("k") == (b"v", 0)
        assert client.retries == 1
        assert injector.fired() == 1
        client.close()

    def test_non_idempotent_op_never_blind_retried(self, restartable):
        # Dropping after a sar is sent leaves the outcome ambiguous: the
        # server may or may not have applied it.  The client must surface
        # the failure rather than replay the mutation.
        from repro.faults import FaultAction, FaultRule
        from repro.faults.injector import SITE_CLIENT_AFTER_SEND

        injector = FaultInjector(FaultPlan([FaultRule(
            SITE_CLIENT_AFTER_SEND, FaultAction.DROP_CONNECTION, nth=1,
            match=lambda ctx: ctx.get("command") == "sar",
        )]))
        client = self._client(restartable, injector)
        tid = client.gen_id()
        client.qar(tid, "k")
        with pytest.raises(ConnectionLostError):
            client.sar("k", b"refreshed", tid)
        assert client.retries == 0
        assert injector.fired() == 1
        client.close()


class TestCircuitBreaker:
    def test_opens_after_threshold_and_fails_fast(self, restartable):
        client = resilient_for(restartable, max_retries=0)
        client.set("k", b"v")
        restartable.kill()
        for _ in range(2):
            with pytest.raises((ConnectionLostError, OperationTimeout)):
                client.get("k")
        assert client.circuit.state == CircuitState.OPEN
        reconnects_before = client.reconnects
        with pytest.raises(CircuitOpenError):
            client.get("k")
        # Fail-fast: the open circuit performed no network I/O.
        assert client.reconnects == reconnects_before
        client.close()

    def test_half_open_probe_recovers(self, restartable):
        client = resilient_for(restartable, max_retries=0)
        client.set("k", b"v")
        restartable.kill()
        for _ in range(2):
            with pytest.raises((ConnectionLostError, OperationTimeout)):
                client.get("k")
        assert client.circuit.state == CircuitState.OPEN
        restartable.start()
        time.sleep(0.06)  # past the cooldown
        assert client.get("k") is None  # cold cache; but served
        assert client.circuit.state == CircuitState.CLOSED
        assert client.circuit.times_recovered == 1
        client.close()

    def test_half_open_failure_reopens(self, restartable):
        client = resilient_for(restartable, max_retries=0)
        client.set("k", b"v")
        restartable.kill()
        for _ in range(2):
            with pytest.raises((ConnectionLostError, OperationTimeout)):
                client.get("k")
        time.sleep(0.06)
        with pytest.raises((ConnectionLostError, OperationTimeout)):
            client.get("k")  # the probe fails; circuit reopens
        assert client.circuit.state == CircuitState.OPEN
        assert client.circuit.times_opened == 2
        client.close()

    def test_iq_set_degrades_to_not_stored_when_open(self, restartable):
        client = resilient_for(restartable, max_retries=0)
        result = client.iq_get("k")
        token = result.token
        restartable.kill()
        for _ in range(2):
            with pytest.raises((ConnectionLostError, OperationTimeout)):
                client.get("k")
        # IQset over an open circuit is safely "ignored", not an error.
        assert client.iq_set("k", b"v", token) is False
        client.close()


class TestReconciliation:
    def test_journaled_keys_deleted_before_next_operation(self, restartable):
        client = resilient_for(restartable)
        client.set("stale-key", b"pre-partition-value")
        client.set("other", b"untouched")
        # A degraded-mode write journals the key it changed in SQL only.
        client.journal.add(["stale-key"])
        # The very next cache operation reconciles first.
        assert client.get("stale-key") is None
        assert client.get("other") == (b"untouched", 0)
        assert len(client.journal) == 0
        assert client.journal.total_reconciled == 1
        client.close()

    def test_reconcile_failure_requeues_keys(self, restartable):
        client = resilient_for(restartable, max_retries=0)
        client.set("a", b"1")
        client.journal.add(["a", "b"])
        restartable.kill()
        with pytest.raises((ConnectionLostError, OperationTimeout)):
            client.get("a")
        # Nothing was reconciled; both keys remain journaled.
        assert set(client.journal.peek()) == {"a", "b"}
        restartable.start()
        time.sleep(0.06)
        assert client.get("a") is None
        assert len(client.journal) == 0
        client.close()

    def test_reconcile_disabled_by_config(self, restartable):
        client = resilient_for(restartable, reconcile_on_recover=False)
        client.set("stale-key", b"old")
        client.journal.add(["stale-key"])
        assert client.get("stale-key") == (b"old", 0)
        assert len(client.journal) == 1
        client.close()
