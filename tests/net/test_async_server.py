"""Event-loop server lifecycle: multiplexing, drain, kill, restart."""

import socket
import threading
import time

import pytest

from repro.core.iq_server import IQServer
from repro.net import AsyncIQServer, RemoteIQServer, serve_background
from repro.net.protocol import CRLF


@pytest.fixture
def served():
    iq = IQServer()
    server, thread = serve_background(iq_server=iq, transport="async")
    yield server, iq
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


class TestMultiplexing:
    def test_many_interleaved_connections_one_thread(self, served):
        server, iq = served
        sockets = [
            socket.create_connection(("127.0.0.1", server.port), timeout=5)
            for _ in range(64)
        ]
        try:
            # Interleave: every connection writes its own key, then every
            # connection reads every other's -- all multiplexed on the
            # single event-loop thread.
            for i, sock in enumerate(sockets):
                sock.sendall(
                    "set conn{} 0 0 2".format(i).encode() + CRLF
                    + "{:02d}".format(i).encode() + CRLF
                )
            for sock in sockets:
                assert sock.recv(4096) == b"STORED" + CRLF
            for i, sock in enumerate(sockets):
                peer = (i + 1) % len(sockets)
                sock.sendall("get conn{}".format(peer).encode() + CRLF)
            for i, sock in enumerate(sockets):
                peer = (i + 1) % len(sockets)
                reply = sock.recv(4096)
                assert reply.startswith(
                    "VALUE conn{} 0 2".format(peer).encode()
                )
        finally:
            for sock in sockets:
                sock.close()
        assert iq.stats.get("evloop_connections") >= 64

    def test_pipelined_batch_counted_and_flushed_together(self, served):
        server, iq = served
        with RemoteIQServer(port=server.port) as remote:
            remote.set("k", b"v")
            pipe = remote.pipeline()
            for _ in range(30):
                pipe.get("k")
            values = pipe.execute()
        assert len(values) == 30
        assert iq.stats.get("pipelined_commands") >= 30

    def test_lease_protocol_over_event_loop(self, served):
        server, _iq = served
        with RemoteIQServer(port=server.port) as remote:
            result = remote.iq_get("user:1")
            assert result.has_lease
            assert remote.iq_get("user:1").backoff
            assert remote.iq_set("user:1", b"alice", result.token)
            assert remote.iq_get("user:1").value == b"alice"
            tid = remote.gen_id()
            remote.qar(tid, "user:1")
            remote.sar("user:1", b"bob", tid)
            remote.commit(tid)
            assert remote.iq_get("user:1").value == b"bob"


class TestLifecycle:
    def test_shutdown_unblocks_and_joins(self):
        server, thread = serve_background(transport="async")
        server.shutdown()
        thread.join(timeout=5)
        assert not thread.is_alive()
        server.server_close()  # idempotent
        server.server_close()

    def test_shutdown_drains_buffered_replies(self, served):
        server, iq = served
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=5
        ) as sock:
            batch = b"".join(
                b"set k 0 0 1" + CRLF + b"x" + CRLF for _ in range(20)
            )
            sock.sendall(batch)
            # Shut down while replies may still be queued: every command
            # the server *executed* must still get its reply out before
            # the close (the graceful-drain guarantee).
            threading.Thread(target=server.shutdown).start()
            received = b""
            sock.settimeout(5)
            while True:
                try:
                    data = sock.recv(65536)
                except OSError:
                    break
                if not data:
                    break
                received += data
            executed = iq.stats.get("cmd_set")
            assert received.count(b"STORED") == executed

    def test_close_all_connections_severs_clients(self, served):
        server, _iq = served
        sock = socket.create_connection(("127.0.0.1", server.port))
        sock.sendall(b"version" + CRLF)
        assert sock.recv(4096).startswith(b"VERSION")
        server.close_all_connections()
        sock.settimeout(2)
        try:
            assert sock.recv(4096) == b""
        except OSError:
            pass  # reset is also an acceptable severing
        finally:
            sock.close()

    def test_initiate_kill_notifies_on_kill(self):
        server, thread = serve_background(transport="async")
        killed = threading.Event()
        server.on_kill = killed.set
        server.initiate_kill()
        assert killed.wait(timeout=5)
        thread.join(timeout=5)
        assert not thread.is_alive()
        server.server_close()

    def test_restartable_server_async_transport(self):
        from repro.errors import CacheUnavailableError
        from repro.faults.chaos import RestartableServer

        from repro.net.resilient import ResilientIQServer

        restartable = RestartableServer(
            lambda tid_start=1: IQServer(tid_start=tid_start),
            transport="async",
        )
        restartable.start()
        client = ResilientIQServer(port=restartable.port)
        try:
            client.set("k", b"v")
            assert client.get("k")[0] == b"v"
            restartable.kill()
            with pytest.raises(CacheUnavailableError):
                client.get("k")
            restartable.start()
            deadline = time.time() + 5
            while time.time() < deadline:
                try:
                    assert client.get("k") is None  # cold restart: empty
                    break
                except CacheUnavailableError:
                    time.sleep(0.05)
            else:
                pytest.fail("client never reconnected after restart")
            assert restartable.kills == 1
        finally:
            client.close()
            restartable.kill()

    def test_constructor_surface_matches_threaded(self):
        # RestartableServer, serve_background, and the CLI construct
        # either class through one call shape.
        server = AsyncIQServer(("127.0.0.1", 0), IQServer())
        assert server.port > 0
        server.server_close()
