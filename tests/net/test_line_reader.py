"""LineReader framing edges on the memoryview fast path.

The reader slices frames out of one growing buffer through a
memoryview; these tests pin the boundary cases that path must not
regress -- frames torn at arbitrary byte positions, CRLF split across
``recv`` calls, compaction kicking in mid-stream, the buffer bound --
and check frame-for-frame parity over the transport-parity corpus
between whole-stream and byte-at-a-time delivery.
"""

import pytest

from repro.errors import PipelineOverflowError, ProtocolError
from repro.net.protocol import DATA_COMMANDS, LineReader

from tests.net.test_transport_parity import CORPUS


class ScriptedSock:
    """recv() returns the scripted chunks in order, then peer-close."""

    def __init__(self, chunks):
        self._chunks = list(chunks)

    def recv(self, size):
        if not self._chunks:
            return b""
        chunk = self._chunks[0]
        if len(chunk) <= size:
            return self._chunks.pop(0)
        self._chunks[0] = chunk[size:]
        return chunk[:size]


def reader_for(stream, chunk=None, **kwargs):
    chunks = ([stream] if chunk is None
              else [stream[i:i + chunk] for i in range(0, len(stream), chunk)])
    return LineReader(ScriptedSock(chunks), **kwargs)


def frames(reader):
    """Walk a request stream into (line, data-block-or-None) frames.

    Malformed input (the corpus includes torn terminators and
    unparseable sizes on purpose) ends the walk with an error marker so
    both deliveries must fail at the identical frame.
    """
    out = []
    while True:
        try:
            line = reader.read_line()
        except ConnectionError:
            return out
        parts = line.split()
        data = None
        index = DATA_COMMANDS.get(parts[0].decode("ascii", "replace"))
        if index is not None:
            try:
                nbytes = int(parts[index])
            except (ValueError, IndexError) as exc:
                out.append(("<bad-size>", str(exc)))
                return out
            if nbytes >= 0:
                try:
                    data = reader.read_bytes(nbytes)
                except ProtocolError as exc:
                    out.append(("<protocol-error>", str(exc)))
                    return out
        out.append((line, data))


class TestTornDelivery:
    def test_byte_at_a_time(self):
        stream = b"set k 0 0 5\r\nhello\r\nget k\r\n"
        reader = reader_for(stream, chunk=1)
        assert reader.read_line() == b"set k 0 0 5"
        assert reader.read_bytes(5) == b"hello"
        assert reader.read_line() == b"get k"

    def test_crlf_split_across_recvs(self):
        reader = LineReader(ScriptedSock([b"get k\r", b"\nget j\r\n"]))
        assert reader.read_line() == b"get k"
        assert reader.read_line() == b"get j"

    def test_data_block_terminator_split_across_recvs(self):
        reader = LineReader(ScriptedSock([b"hello\r", b"\n"]))
        assert reader.read_bytes(5) == b"hello"

    def test_empty_line_and_empty_block(self):
        reader = reader_for(b"\r\n\r\n")
        assert reader.read_line() == b""
        assert reader.read_bytes(0) == b""

    def test_peer_close_mid_line_raises(self):
        reader = LineReader(ScriptedSock([b"get k"]))
        with pytest.raises(ConnectionError):
            reader.read_line()

    def test_unterminated_data_block_raises(self):
        reader = reader_for(b"helloXXget k\r\n")
        with pytest.raises(ProtocolError):
            reader.read_bytes(5)

    def test_block_with_cr_but_wrong_lf_raises(self):
        reader = reader_for(b"hello\rXget k\r\n")
        with pytest.raises(ProtocolError):
            reader.read_bytes(5)

    def test_binary_safe_blocks(self):
        payload = bytes(range(256)) * 3
        reader = reader_for(
            b"blob\r\n" + payload + b"\r\n", chunk=7)
        assert reader.read_line() == b"blob"
        assert reader.read_bytes(len(payload)) == payload


class TestPipelinedBursts:
    def test_burst_drains_without_further_recv(self):
        burst = b"".join(b"get k%d\r\n" % i for i in range(50))
        reader = LineReader(ScriptedSock([burst]))
        assert reader.read_line() == b"get k0"   # first call recvs the burst
        for i in range(1, 50):
            assert reader.pending()              # buffered, no recv needed
            assert reader.read_line() == b"get k%d" % i
        assert not reader.pending()

    def test_compaction_mid_stream_keeps_frames_intact(self):
        reader = reader_for(
            b"".join(b"cmd %04d\r\n" % i for i in range(200)), chunk=17)
        reader._COMPACT_THRESHOLD = 64   # force compaction to kick in
        for i in range(200):
            assert reader.read_line() == b"cmd %04d" % i
        assert reader._pos < 64   # the consumed prefix was dropped

    def test_interleaved_lines_and_blocks_across_compaction(self):
        stream = b"".join(
            b"iqset key%d 1 %d\r\n%s\r\n" % (i, 10 + i % 7, b"x" * (10 + i % 7))
            for i in range(100)
        )
        reader = reader_for(stream, chunk=13)
        reader._COMPACT_THRESHOLD = 48
        for i in range(100):
            assert reader.read_line() == b"iqset key%d 1 %d" % (i, 10 + i % 7)
            assert reader.read_bytes(10 + i % 7) == b"x" * (10 + i % 7)


class TestBufferBound:
    def test_endless_line_overflows_before_buffering(self):
        reader = LineReader(
            ScriptedSock([b"x" * 64] * 100), max_buffer=128)
        with pytest.raises(PipelineOverflowError):
            reader.read_line()

    def test_oversized_announced_block_refused_up_front(self):
        # The announced size alone trips the bound -- no flooding bytes
        # are received first.
        reader = LineReader(ScriptedSock([]), max_buffer=128)
        with pytest.raises(PipelineOverflowError):
            reader.read_bytes(4096)

    def test_bound_ignores_already_consumed_bytes(self):
        stream = b"a" * 100 + b"\r\n" + b"b" * 100 + b"\r\n"
        reader = reader_for(stream, chunk=11, max_buffer=120)
        assert reader.read_line() == b"a" * 100
        assert reader.read_line() == b"b" * 100


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_framing_parity_whole_vs_torn(name):
    """Every transport-parity request stream parses to the same frame
    sequence whether it arrives in one recv or one byte at a time."""
    stream = CORPUS[name]
    whole = frames(reader_for(stream))
    torn = frames(reader_for(stream, chunk=1))
    assert whole == torn
    assert len(whole) > 0
