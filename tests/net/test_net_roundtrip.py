"""End-to-end wire protocol tests against a live TCP server."""

import threading

import pytest

from repro.core.iq_client import IQClient
from repro.errors import QuarantinedError
from repro.kvs.store import StoreResult
from repro.net import RemoteIQServer, serve_background
from repro.util.backoff import NoBackoff


@pytest.fixture
def served():
    server, thread = serve_background()
    yield server
    server.shutdown()


@pytest.fixture
def remote(served):
    client = RemoteIQServer(port=served.port)
    yield client
    client.close()


class TestStandardCommands:
    def test_set_get_delete(self, remote):
        assert remote.set("k", b"v") is StoreResult.STORED
        assert remote.get("k") == (b"v", 0)
        assert remote.delete("k")
        assert remote.get("k") is None
        assert not remote.delete("k")

    def test_add_replace(self, remote):
        assert remote.add("k", b"1") is StoreResult.STORED
        assert remote.add("k", b"2") is StoreResult.NOT_STORED
        assert remote.replace("k", b"3") is StoreResult.STORED

    def test_append_prepend(self, remote):
        remote.set("k", b"b")
        remote.append("k", b"c")
        remote.prepend("k", b"a")
        assert remote.get("k") == (b"abc", 0)

    def test_incr_decr(self, remote):
        remote.set("n", b"10")
        assert remote.incr("n", 5) == 15
        assert remote.decr("n", 20) == 0
        assert remote.incr("ghost") is None

    def test_cas_cycle(self, remote):
        remote.set("k", b"v1")
        value, _flags, cas_id = remote.gets("k")
        assert value == b"v1"
        assert remote.cas("k", b"v2", cas_id) is StoreResult.STORED
        assert remote.cas("k", b"v3", cas_id) is StoreResult.EXISTS

    def test_binary_safe_values(self, remote):
        blob = bytes(range(256)) + b"\r\nEND\r\n"
        remote.set("bin", blob)
        assert remote.get("bin") == (blob, 0)

    def test_flags_round_trip(self, remote):
        remote.set("k", b"v", flags=7)
        assert remote.get("k") == (b"v", 7)

    def test_stats_and_version(self, remote):
        remote.set("k", b"v")
        remote.get("k")
        stats = remote.stats()
        assert stats["get_hits"] >= 1
        assert "iq-twemcached" in remote.version()

    def test_flush_all(self, remote):
        remote.set("k", b"v")
        remote.flush_all()
        assert remote.get("k") is None


class TestIQCommands:
    def test_i_lease_cycle(self, remote):
        result = remote.iq_get("k")
        assert result.has_lease
        assert remote.iq_set("k", b"v", result.token)
        assert remote.iq_get("k").value == b"v"

    def test_backoff_signalled(self, served, remote):
        remote.iq_get("k")
        with RemoteIQServer(port=served.port) as second:
            assert second.iq_get("k").backoff

    def test_stale_token_ignored(self, remote):
        result = remote.iq_get("k")
        tid = remote.gen_id()
        remote.qar(tid, "k")
        assert not remote.iq_set("k", b"stale", result.token)
        remote.dar(tid)

    def test_release_i(self, remote):
        result = remote.iq_get("k")
        assert remote.release_i("k", result.token)
        assert remote.iq_get("k").has_lease

    def test_refresh_cycle(self, remote):
        remote.set("k", b"10")
        tid = remote.gen_id()
        assert remote.qaread("k", tid).value == b"10"
        assert remote.sar("k", b"20", tid)
        assert remote.get("k") == (b"20", 0)

    def test_qaread_conflict_aborts(self, remote):
        tid = remote.gen_id()
        remote.qaread("k", tid)
        with pytest.raises(QuarantinedError):
            remote.qaread("k", remote.gen_id())
        remote.abort(tid)

    def test_sar_null_releases(self, remote):
        remote.set("k", b"v")
        tid = remote.gen_id()
        remote.qaread("k", tid)
        assert remote.sar("k", None, tid)
        assert remote.get("k") == (b"v", 0)
        remote.qaread("k", remote.gen_id())

    def test_invalidate_cycle(self, remote):
        remote.set("k", b"v")
        tid = remote.gen_id()
        assert remote.qar(tid, "k")
        assert remote.dar(tid)
        assert remote.get("k") is None

    def test_delta_cycle(self, remote):
        remote.set("k", b"5")
        tid = remote.gen_id()
        assert remote.iq_delta(tid, "k", "incr", b"3")
        remote.commit(tid)
        assert remote.get("k") == (b"8", 0)

    def test_delta_conflict(self, remote):
        tid = remote.gen_id()
        remote.iq_delta(tid, "k", "append", b"x")
        with pytest.raises(QuarantinedError):
            remote.iq_delta(remote.gen_id(), "k", "append", b"y")
        remote.abort(tid)

    def test_iqget_with_session_sees_own_state(self, remote):
        remote.set("k", b"old")
        tid = remote.gen_id()
        remote.qar(tid, "k")
        own = remote.iq_get("k", session=tid)
        assert not own.is_hit and not own.backoff and not own.has_lease
        assert remote.iq_get("k").value == b"old"
        remote.dar(tid)


class TestClientIntegration:
    def test_iq_client_read_through_over_wire(self, remote):
        client = IQClient(remote, backoff=NoBackoff(max_attempts=100))
        assert client.read_through("k", lambda: b"computed") == b"computed"
        assert client.read_through("k", lambda: b"never") == b"computed"

    def test_concurrent_connections(self, served):
        errors = []

        def worker(index):
            try:
                with RemoteIQServer(port=served.port) as conn:
                    for i in range(30):
                        key = "w{}k{}".format(index, i)
                        conn.set(key, str(i).encode())
                        assert conn.get(key) == (str(i).encode(), 0)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_unknown_command_is_server_error(self, served):
        import socket

        with socket.create_connection(("127.0.0.1", served.port)) as sock:
            sock.sendall(b"frobnicate now\r\n")
            reply = sock.recv(1024)
            assert reply.startswith(b"SERVER_ERROR")
