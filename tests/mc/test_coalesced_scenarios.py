"""Client-side miss coalescing under exhaustive exploration.

The singleflight fencing rule (``repro.core.singleflight``): a waiter
may consume a coalesced fill only when the fill was *applied* -- the
filler's I lease was still live at install time, which proves no
invalidation crossed the fill window.  Exploration proves the fenced
readers clean over the figure windows (including the deferred-delete
rearrangement window), proves the hand-off actually happens (the clean
verdicts are not vacuous), and proves the deliberately unfenced waiter
loses -- via the ``expect`` freshness baseline, because the stale
hand-off is invisible to both classic oracles: the value was committed
once (no dirty read) and never reaches the store (no stale final).
"""

import pytest

from repro.mc import explore, get_scenario, replay
from repro.mc.scenarios import Scenario, coalesced_final_checks
from repro.mc.shrink import shrink

pytestmark = pytest.mark.mc

FENCED_SCENARIOS = [
    "coalesced-fill-fig3",
    "coalesced-fill-fig4",
    "coalesced-fenced-guard",
]


@pytest.mark.parametrize("name", FENCED_SCENARIOS)
def test_fenced_coalescing_explores_clean(name):
    report = explore(get_scenario(name), max_states=200000)
    print(report.summary())
    assert not report.truncated
    assert report.violation_count == 0, [
        (list(v.schedule), v.messages) for v in report.violations
    ]


def test_coalesced_serves_actually_happen():
    # Attach a terminal-outcome collector: some explored schedule must
    # end with a reader having been served from a co-located flight, or
    # the clean verdicts above say nothing about coalescing.
    base = get_scenario("coalesced-fill-fig3")
    statuses = set()

    def collect(world, runs):
        statuses.update(run.result for run in runs.values())
        return coalesced_final_checks(world, runs)

    probe = Scenario("coalesced-probe", base.build, check_final=collect)
    report = explore(probe, max_states=200000)
    assert report.ok
    assert "coalesced" in statuses, statuses


def test_unfenced_waiter_loses_and_is_caught():
    scenario = get_scenario("coalesced-unfenced")
    report = explore(scenario, max_states=200000)
    assert not report.truncated
    assert report.violation_count > 0
    messages = [m for v in report.violations for m in v.messages]
    # Only the expect baseline can see the stale hand-off.
    assert any("coalesced-stale" in m for m in messages), messages
    assert not any("dirty-read" in m for m in messages), messages
    assert not any("stale-final" in m for m in messages), messages
    # The losing schedule replays deterministically to the same verdict.
    violation = report.violations[0]
    replayed = replay(scenario, violation.schedule, complete=True)
    assert not replayed.ok


def test_unfenced_violation_shrinks_to_the_full_handoff():
    scenario = get_scenario("coalesced-unfenced")
    report = explore(scenario, max_states=200000)
    result = shrink(scenario, report.violations[0].schedule)
    assert result.minimal
    # The 1-minimal counterexample needs all four sessions: the filler's
    # stale flight, the writer that voids it, the plain reader whose I
    # lease forces the waiter into back-off after the writer is done,
    # and the unfenced waiter itself.
    assert set(result.schedule) == {"W", "F", "G", "R"}
    replayed = replay(scenario, list(result.schedule), complete=True)
    assert not replayed.ok


def test_coalesced_scenarios_are_labelled():
    for name in FENCED_SCENARIOS + ["coalesced-unfenced"]:
        assert "coalesce" in get_scenario(name).tags
