"""PR 2 review semantics, pinned under exhaustive exploration.

Two behaviours were settled in PR 2's review: a growing-phase shard
failure journals its keys only *after* the RDBMS commit, and a shard
failing partway through a multi-delta proposal is poisoned so its
commit leg aborts rather than applying a partial delta list.  Each is
explored exhaustively here, paired with its rejected variant -- the
checker must prove the reviewed semantics clean and flag the rejected
ones, demonstrating it would have caught the original bugs.
"""

import pytest

from repro.mc import explore, get_scenario

pytestmark = pytest.mark.mc


class TestPostCommitJournaling:
    def test_reviewed_semantics_explore_clean(self):
        report = explore(get_scenario("pr2-journal-post"),
                         max_states=200000)
        print(report.summary())
        assert not report.truncated
        assert report.violation_count == 0, [
            (list(v.schedule), v.messages) for v in report.violations
        ]

    def test_pre_commit_journaling_is_flagged(self):
        report = explore(get_scenario("pr2-journal-pre"),
                         max_states=200000)
        assert report.violation_count > 0
        messages = [m for v in report.violations for m in v.messages]
        assert any("journal-before-commit" in m for m in messages)
        # The invariant fires mid-schedule, not just at terminal states.
        assert any(v.kind == "invariant" for v in report.violations)


class TestPoisonedPartialProposals:
    def test_reviewed_semantics_explore_clean(self):
        report = explore(get_scenario("pr2-poison"), max_states=200000)
        print(report.summary())
        assert not report.truncated
        assert report.violation_count == 0, [
            (list(v.schedule), v.messages) for v in report.violations
        ]

    def test_missing_poison_commits_partial_deltas(self):
        report = explore(get_scenario("pr2-poison-missing"),
                         max_states=200000)
        assert report.violation_count > 0
        messages = [m for v in report.violations for m in v.messages]
        # 10 + first delta (1) only: the partial proposal's value.
        assert any("'11'" in m for m in messages)
