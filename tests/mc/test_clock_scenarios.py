"""Precise-clock scenarios under exhaustive exploration.

The clock technique's safety argument is arithmetic, not protocol: a
value stamped by a promise is exact for every clock reading inside its
interval, and a writer's clock-jumping commit expires every covered
interval without touching the cache.  Exploration proves it on the
paper's figure scenarios -- a stale interval must *expire*, never
serve -- and the deliberately mis-sized variant (a reader guessing an
interval without registering a promise) is proven to lose, showing the
oracle has teeth.
"""

import pytest

from repro.mc import explore, get_scenario, replay
from repro.mc.shrink import shrink

pytestmark = pytest.mark.mc

SOUND_SCENARIOS = [
    "fig2-clock",
    "fig3-clock",
    "fig4-clock",
    "fig6-clock",
    "fig7-clock",
]


@pytest.mark.parametrize("name", SOUND_SCENARIOS)
def test_clock_scenarios_explore_clean(name):
    report = explore(get_scenario(name), max_states=200000)
    print(report.summary())
    assert not report.truncated
    assert report.violation_count == 0, [
        (list(v.schedule), v.messages) for v in report.violations
    ]


def test_clock_scenarios_are_labelled():
    for name in SOUND_SCENARIOS + ["clock-missized"]:
        assert get_scenario(name).technique == "clock"


def test_missized_interval_serves_stale_and_is_caught():
    scenario = get_scenario("clock-missized")
    report = explore(scenario, max_states=200000)
    assert not report.truncated
    assert report.violation_count > 0
    messages = [m for v in report.violations for m in v.messages]
    assert any("clock-stale" in m for m in messages), messages
    # The losing schedule replays deterministically to the same verdict.
    violation = report.violations[0]
    replayed = replay(scenario, violation.schedule, complete=True)
    assert not replayed.ok


def test_missized_violation_shrinks_to_the_guessing_reader():
    scenario = get_scenario("clock-missized")
    report = explore(scenario, max_states=200000)
    result = shrink(scenario, report.violations[0].schedule)
    assert result.minimal
    # The 1-minimal counterexample is the naive reader alone: guess an
    # interval, fill, and let the un-promised write land inside it.
    assert set(result.schedule) == {"R"}
    replayed = replay(scenario, list(result.schedule), complete=True)
    assert not replayed.ok


def test_sound_scenarios_explore_nontrivially():
    # fig2-clock runs two writers against a reader; DPOR must actually
    # have interleavings to prune or the clean verdicts are vacuous.
    report = explore(get_scenario("fig2-clock"), max_states=200000)
    assert report.schedules_explored > 10
