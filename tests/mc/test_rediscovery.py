"""The checker must *rediscover* the paper's six figure races.

The scripted reproductions in ``repro.sim.scripts`` encode the exact
interleaving of each figure by hand.  Here the model checker gets only
the session programs -- no schedule -- and must find each race on its
own, then prove the IQ counterpart clean over the same bounded space,
and shrink every baseline violation to a minimal replayable script.
"""

import pytest

from repro.mc import (
    FIGURE_PAIRS,
    emit_script,
    explore,
    get_scenario,
    replay,
    shrink,
)

pytestmark = pytest.mark.mc


class TestBaselineRacesAreFound:
    @pytest.mark.parametrize("baseline,_iq", FIGURE_PAIRS)
    def test_race_rediscovered(self, baseline, _iq):
        report = explore(get_scenario(baseline), max_states=100000)
        print(report.summary())
        assert not report.truncated
        assert report.violation_count > 0, (
            "{} should race but explored clean".format(baseline)
        )

    @pytest.mark.parametrize("baseline,_iq", FIGURE_PAIRS)
    def test_violation_shrinks_to_replayable_script(self, baseline, _iq):
        scenario = get_scenario(baseline)
        report = explore(scenario, max_states=100000)
        result = shrink(scenario, report.violations[0].schedule)
        assert result.minimal
        assert len(result.schedule) <= len(result.original)
        assert result.violations
        # The emitted artifact is a self-contained executable repro.
        script = emit_script(result)
        assert "Minimal violating schedule" in script
        exec(compile(script, "<shrunk {}>".format(baseline), "exec"), {})


class TestIQCounterpartsAreClean:
    @pytest.mark.parametrize("_baseline,iq", FIGURE_PAIRS)
    def test_zero_violations_exhaustively(self, _baseline, iq):
        report = explore(get_scenario(iq), max_states=100000)
        print(report.summary())
        assert not report.truncated
        assert report.violation_count == 0, [
            (list(v.schedule), v.messages) for v in report.violations
        ]


class TestStaleValuesMatchTheFigures:
    def test_fig2_lost_update_value(self):
        # Figure 2: S1's cas installs a value computed before S2's
        # serialization, so the KVS diverges from 100 -> +50 -> *10.
        report = explore(get_scenario("fig2-baseline"))
        messages = [m for v in report.violations for m in v.messages]
        assert any("stale-final" in m for m in messages)

    def test_fig6_dirty_read_flagged(self):
        report = explore(get_scenario("fig6-baseline"))
        messages = [m for v in report.violations for m in v.messages]
        assert any("dirty-read" in m for m in messages)

    def test_fig8_double_delta(self):
        report = explore(get_scenario("fig8-baseline"))
        messages = [m for v in report.violations for m in v.messages]
        assert any("'xdd'" in m for m in messages)

    def test_fig3_found_schedule_replays(self):
        scenario = get_scenario("fig3-baseline")
        report = explore(scenario)
        result = replay(scenario, report.violations[0].schedule,
                        complete=True)
        assert not result.ok
