"""Minimality of the delta-debugging shrinker.

A shrunk schedule must still violate, and must be 1-minimal: removing
any single forced step (and letting the deterministic drain complete
the run) loses the violation.
"""

import pytest

from repro.mc import emit_script, explore, get_scenario, replay, shrink

pytestmark = pytest.mark.mc


def _shrunk(name):
    scenario = get_scenario(name)
    report = explore(scenario, max_states=100000)
    assert report.violations, "scenario {} explored clean".format(name)
    return scenario, shrink(scenario, report.violations[0].schedule)


class TestShrunkSchedulesStillViolate:
    @pytest.mark.parametrize("name", ["fig2-baseline", "fig3-baseline",
                                      "fig4-baseline", "fig8-baseline"])
    def test_violation_survives_shrinking(self, name):
        scenario, result = _shrunk(name)
        replayed = replay(scenario, result.schedule, complete=True)
        assert not replayed.ok
        assert result.violations == replayed.violations


class TestOneMinimality:
    @pytest.mark.parametrize("name", ["fig3-baseline", "fig4-baseline",
                                      "fig8-baseline"])
    def test_every_forced_step_is_load_bearing(self, name):
        scenario, result = _shrunk(name)
        assert result.minimal
        for index in range(len(result.schedule)):
            candidate = (result.schedule[:index]
                         + result.schedule[index + 1:])
            replayed = replay(scenario, candidate, complete=True)
            assert replayed.ok, (
                "dropping step {} ({!r}) of {!r} still violates -- "
                "not 1-minimal".format(index, result.schedule[index],
                                       list(result.schedule))
            )

    def test_drain_only_races_shrink_to_empty(self):
        # Figure 6's race is the drain order itself: the shrinker must
        # discover that no forced step is needed at all.
        _scenario, result = _shrunk("fig6-baseline")
        assert result.schedule == ()


class TestCleanInputIsNotShrunk:
    def test_non_violating_schedule_returned_unchanged(self):
        scenario = get_scenario("fig3-iq")
        result = shrink(scenario, ["S1", "S2", "S1", "S2"])
        assert not result.minimal
        assert result.schedule == ("S1", "S2", "S1", "S2")
        assert not result.violations


class TestEmittedScript:
    def test_script_lists_forced_and_drain_steps(self):
        _scenario, result = _shrunk("fig3-baseline")
        script = emit_script(result)
        assert "[forced]" in script
        assert "[drain ]" in script
        for message in result.violations:
            assert message in script
