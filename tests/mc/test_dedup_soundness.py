"""Fingerprint-dedup soundness: merged states must really be equal.

The explorer cuts a subtree when a prefix reaches a state whose
fingerprint was already explored.  That is only sound if the fingerprint
captures *everything* that can influence future behaviour -- including
values programs read into generator-local variables (a reader's pending
fill value, a writer's QaRead'd old value), which live outside the
shared world.  These tests replay recorded dedup pairs both ways and
assert the two executions really did land in the same place.
"""

import pytest

from repro.mc import explore, get_scenario, replay

pytestmark = pytest.mark.mc

SCENARIOS_WITH_DEDUP = [
    "fig4-iq",
    "fig6-iq",
    "fig7-baseline",
    "fig8-baseline",
    "mix3-inv-refresh-read",
    "sharded-mix",
]


def _terminal_state(scenario, prefix):
    """Deterministically drain ``prefix`` and summarize the end state."""
    result = replay(scenario, list(prefix), complete=True)
    assert result.crash is None
    return (
        result.world.kvs_contents(),
        result.world.sql_contents(),
        sorted(result.violations),
    )


class TestDedupedStatesAreInterchangeable:
    @pytest.mark.parametrize("name", SCENARIOS_WITH_DEDUP)
    def test_both_prefixes_reach_the_same_terminal_state(self, name):
        scenario = get_scenario(name)
        report = explore(scenario, max_states=200000,
                         record_dedup_pairs=50)
        assert report.dedup_pairs, (
            "{} recorded no dedup pairs; pick a denser scenario".format(name)
        )
        for earlier, later in report.dedup_pairs:
            assert _terminal_state(scenario, earlier) == _terminal_state(
                scenario, later
            ), (
                "prefixes {!r} and {!r} deduped but diverge".format(
                    list(earlier), list(later)
                )
            )


class TestKnownDedupTrap:
    def test_pending_fill_value_distinguishes_states(self):
        # Regression for the subtle bug this suite exists to prevent:
        # in fig3-baseline the reader's queried value is generator-local
        # between fill-query and fill-set.  Pre-commit and post-commit
        # query orders reach worlds that look identical unless the
        # pending value is fingerprinted -- and deduping them hides the
        # Figure 3 race entirely.
        report = explore(get_scenario("fig3-baseline"))
        assert report.violation_count > 0
        schedules = {tuple(v.schedule) for v in report.violations}
        assert ("S1", "S1", "S2", "S2", "S1", "S2") in schedules
