"""Random-schedule fuzzing with shrink-on-failure artifacts.

The fuzz target is deliberately beyond exhaustive reach: 4 sessions
across 2 shards plus kill/heal/reconcile fault steps.  Under the
reviewed semantics every sampled schedule must satisfy the oracles (the
auditor included); a baseline scenario fuzzes dirty on the same
machinery, proving the automatic shrink-and-artifact path works.
"""

import pytest

from repro.mc import fuzz, get_scenario

pytestmark = pytest.mark.mc


class TestShardedFaultTargetIsClean:
    @pytest.mark.slow
    def test_many_seeds_all_clean(self):
        report = fuzz(get_scenario("fuzz-sharded-fault"), runs=150, seed=0)
        print(report.summary())
        assert report.ok, report.artifact()
        assert report.schedules_seen == 150

    def test_smoke_seed_clean(self):
        # The CI smoke variant: one quick campaign.
        report = fuzz(get_scenario("fuzz-sharded-fault"), runs=25, seed=42)
        assert report.ok, report.artifact()


class TestShrinkOnFailureArtifact:
    def test_baseline_fuzz_produces_shrunk_scripts(self, tmp_path):
        report = fuzz(get_scenario("fig4-baseline"), runs=40, seed=1,
                      max_failures=2)
        assert not report.ok, "fig4-baseline should fuzz dirty"
        failure = report.failures[0]
        assert failure.shrunk.minimal
        assert len(failure.shrunk.schedule) <= len(failure.schedule)
        artifact = tmp_path / "fuzz-artifact.py"
        artifact.write_text(report.artifact())
        # The saved artifact replays standalone.
        exec(compile(artifact.read_text(), str(artifact), "exec"), {})

    def test_campaign_is_deterministic(self):
        first = fuzz(get_scenario("fig4-baseline"), runs=10, seed=9,
                     max_failures=1)
        second = fuzz(get_scenario("fig4-baseline"), runs=10, seed=9,
                      max_failures=1)
        assert [f.schedule for f in first.failures] == [
            f.schedule for f in second.failures
        ]
        assert [f.seed for f in first.failures] == [
            f.seed for f in second.failures
        ]
