"""Exhaustive exploration of online rebalancing schedules.

These runs are the PR's acceptance proof: a 2-shard -> 3-shard
migration interleaved with an IQ writer and reader admits **zero**
stale-final or dirty reads across every DPOR-distinct schedule, with
and without a shard kill mid-migration -- while the unquarantined
control migration (plain copy-then-flip, no Q fencing, no dual-epoch
window) demonstrably loses a committed write.
"""

import pytest

from repro.mc import explore, get_scenario, replay

pytestmark = pytest.mark.mc


def test_rebalance_add_is_exhaustively_clean():
    report = explore(get_scenario("rebalance-add"), max_states=200000)
    assert not report.truncated
    assert report.ok, report.summary()
    assert report.violation_count == 0
    assert report.schedules_explored > 50  # genuinely many interleavings


def test_rebalance_remove_is_exhaustively_clean():
    report = explore(get_scenario("rebalance-remove"), max_states=200000)
    assert not report.truncated
    assert report.ok, report.summary()
    assert report.violation_count == 0


def test_rebalance_survives_shard_kill_mid_migration():
    report = explore(get_scenario("rebalance-add-kill"), max_states=200000)
    assert not report.truncated
    assert report.ok, report.summary()
    assert report.violation_count == 0
    assert report.schedules_explored > 200


def test_unquarantined_migration_loses_committed_write():
    scenario = get_scenario("rebalance-unquarantined")
    report = explore(scenario, max_states=200000)
    assert not report.truncated
    assert report.violation_count > 0
    messages = [m for v in report.violations for m in v.messages]
    assert any("stale-final" in m for m in messages), messages
    # The losing schedule replays deterministically to the same verdict.
    violation = report.violations[0]
    replayed = replay(scenario, violation.schedule, complete=True)
    assert not replayed.ok


def test_rebalance_exploration_prunes_nontrivially():
    # The scenario must be rich enough that DPOR actually works: both
    # sleep-set pruning and state dedup fire (a trivially sequential
    # scenario would make the clean verdicts above vacuous).
    report = explore(get_scenario("rebalance-add"), max_states=200000)
    assert report.sleep_pruned > 0
    assert report.deduped > 0
