"""Exhaustive exploration of the 3-session IQ technique mixes.

These are the tentpole guarantee: every interleaving of an invalidate /
refresh / incremental-update mix against an IQ backend terminates in a
state with no stale value, no dirty read, and a clean auditor verdict --
and the run reports that its reductions (sleep sets, fingerprint dedup)
actually did work.
"""

import pytest

from repro.mc import MCViolation, Op, explore, get_scenario, independent, replay

pytestmark = pytest.mark.mc

MIXES = [
    "mix3-inv-refresh-read",
    "mix3-inv-delta-read",
    "mix3-refresh-delta-read",
]


class TestMixesAreClean:
    @pytest.mark.parametrize("name", MIXES)
    def test_exhaustive_zero_violations(self, name):
        report = explore(get_scenario(name), max_states=200000)
        print(report.summary())  # counts logged per the acceptance bar
        assert not report.truncated, "space unexpectedly large"
        assert report.violation_count == 0, [
            (list(v.schedule), v.messages) for v in report.violations
        ]
        assert report.schedules_explored > 1

    @pytest.mark.parametrize("name", MIXES)
    def test_reductions_bite(self, name):
        report = explore(get_scenario(name), max_states=200000)
        assert report.sleep_pruned > 0
        assert report.deduped > 0

    def test_sharded_mix_clean(self):
        report = explore(get_scenario("sharded-mix"), max_states=200000)
        print(report.summary())
        assert report.ok, [v.messages for v in report.violations]


class TestFaultScenarios:
    def test_suppressed_void_found_and_audited(self):
        # The armed SUPPRESS rule at the lease-void site must be found as
        # a schedule step, and the auditor must name the protocol breach.
        report = explore(get_scenario("fault-suppressed-i-void"))
        assert report.violation_count > 0
        messages = [m for v in report.violations for m in v.messages]
        assert any("q-grant-left-i-alive" in m for m in messages)

    def test_expired_leases_reopen_the_window(self):
        # The lease-duration assumption: expiring a live writer's leases
        # lets a reader re-fill the pre-commit value.
        report = explore(get_scenario("fault-expired-leases"))
        assert report.violation_count > 0
        messages = [m for v in report.violations for m in v.messages]
        assert any("stale-final" in m for m in messages)


class TestReplay:
    def test_replay_reports_steps_and_world(self):
        result = replay(
            get_scenario("fig3-baseline"), ["S1", "S1", "S2", "S2"],
            complete=True,
        )
        assert not result.ok
        assert ("S1", "S1:sql-update") == result.steps[0]
        assert result.world.sql_contents()["k0"] == 1

    def test_lenient_replay_skips_finished_programs(self):
        # Delta-debugged subsequences may name a program after its end.
        result = replay(
            get_scenario("fig6-baseline"),
            ["S1", "S1", "S1", "S1", "S1", "S2", "S2"],
            complete=True,
        )
        assert result.crash is None


class TestIndependence:
    def test_disjoint_keys_commute(self):
        assert independent(Op("a", kvs=["k0"]), Op("b", kvs=["k1"]))

    def test_same_key_conflicts(self):
        assert not independent(Op("a", kvs=["k0"]), Op("b", kvs=["k0"]))

    def test_sql_steps_conflict(self):
        assert not independent(Op("a", sql=True), Op("b", sql=True))

    def test_local_steps_commute_with_everything(self):
        assert independent(Op("a", local=True), Op("b", sql=True))

    def test_none_pending_commutes(self):
        assert independent(None, Op("b", kvs=["k0"]))


class TestViolationShape:
    def test_violation_carries_schedule_and_steps(self):
        report = explore(get_scenario("fig3-baseline"))
        assert report.violation_count == len(report.violations)
        violation = report.violations[0]
        assert isinstance(violation, MCViolation)
        assert violation.kind == "final"
        assert len(violation.steps) >= len(violation.schedule)
