"""Batched Q-lease acquisition, pinned under exhaustive exploration.

PR 5's ``qar_many`` collapses a write-set's growing phase into one
schedule step (the wire's ``qareg`` round trip).  The claim that makes
that safe: batching removes *interleaving points*, never *outcomes* --
a batched acquisition must be observably equivalent to the sequential
per-key loop.  The suite explores the batched scenario and its
sequential twin exhaustively, proves both clean, and asserts their
terminal outcome sets (committed rows + final cache contents +
observed reads) are identical.
"""

import pytest

from repro.mc import explore, get_scenario
from repro.mc.scenarios import Scenario, default_final_checks

pytestmark = pytest.mark.mc


def _outcome_set(name, max_states=200000):
    """Explore ``name`` with a terminal-outcome collector attached.

    Returns ``(report, outcomes)`` where each outcome is the canonical
    ``(sql rows, cache contents, cache reads)`` triple of one terminal
    state -- the externally observable result of a schedule.
    """
    base = get_scenario(name)
    outcomes = set()

    def collect(world, runs):
        outcomes.add((
            tuple(sorted(world.sql_contents().items())),
            tuple(sorted(world.kvs_contents().items())),
            tuple(sorted(world.cache_reads())),
        ))
        return default_final_checks(world, runs)

    probe = Scenario(name + "-probe", base.build, check_final=collect)
    return explore(probe, max_states=max_states), outcomes


class TestBatchedQaregEquivalence:
    def test_batched_explores_clean(self):
        report = explore(get_scenario("qareg-batched"), max_states=200000)
        print(report.summary())
        assert not report.truncated
        assert report.violation_count == 0, [
            (list(v.schedule), v.messages) for v in report.violations
        ]

    def test_sequential_twin_explores_clean(self):
        report = explore(get_scenario("qareg-sequential"),
                         max_states=200000)
        print(report.summary())
        assert not report.truncated
        assert report.violation_count == 0, [
            (list(v.schedule), v.messages) for v in report.violations
        ]

    def test_outcome_sets_identical(self):
        batched_report, batched = _outcome_set("qareg-batched")
        sequential_report, sequential = _outcome_set("qareg-sequential")
        assert batched_report.ok and sequential_report.ok
        # Batching removes interleaving points, so the batched schedule
        # space is smaller -- but every outcome it can produce must be
        # producible sequentially, and vice versa.
        assert batched == sequential, (
            "batched-only: {}\nsequential-only: {}".format(
                sorted(batched - sequential), sorted(sequential - batched)
            )
        )
