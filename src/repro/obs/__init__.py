"""repro.obs: tracing, metrics, and the online IQ-invariant auditor.

The observability subsystem (third alongside :mod:`repro.faults` and
:mod:`repro.sharding`):

* :mod:`repro.obs.trace` -- end-to-end trace events with propagated
  trace ids, a ring-buffer recorder with a zero-cost no-op mode, and
  JSONL export;
* :mod:`repro.obs.registry` -- the unified metrics registry (counters,
  gauges, histograms) behind every stats class, with a Prometheus-style
  text exporter;
* :mod:`repro.obs.audit` -- the online lease-lifecycle state machine
  that flags IQ protocol violations as they happen.
"""

from repro.obs.audit import (
    ALL_CATEGORIES,
    CATEGORY_DOUBLE_I,
    CATEGORY_EARLY_APPLY,
    CATEGORY_EXCLUSIVE_COGRANT,
    CATEGORY_ORPHAN_RELEASE,
    CATEGORY_UNVOIDED_I,
    AuditReport,
    IQAuditor,
    Violation,
    audited,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    JSONLRecorder,
    RingBufferRecorder,
    TraceEvent,
    Tracer,
    current_trace_id,
    get_tracer,
    recording,
    trace_context,
)

__all__ = [
    "ALL_CATEGORIES",
    "CATEGORY_DOUBLE_I",
    "CATEGORY_EARLY_APPLY",
    "CATEGORY_EXCLUSIVE_COGRANT",
    "CATEGORY_ORPHAN_RELEASE",
    "CATEGORY_UNVOIDED_I",
    "AuditReport",
    "Counter",
    "Gauge",
    "Histogram",
    "IQAuditor",
    "JSONLRecorder",
    "MetricsRegistry",
    "RingBufferRecorder",
    "TraceEvent",
    "Tracer",
    "Violation",
    "audited",
    "current_trace_id",
    "get_tracer",
    "recording",
    "trace_context",
]
