"""A unified metrics registry: counters, gauges, histograms, exporters.

Every ad-hoc stats class in the repo (:class:`repro.kvs.stats.CacheStats`,
:class:`repro.util.histogram.LatencyHistogram`,
:class:`repro.bg.metrics.RestartStats`) is a *view* over metrics held
here; the registry is the single source of truth and the one place that
knows how to render everything for export.

Concurrency: each metric carries its own lock (increments from the BG
worker threads contend per-metric, not registry-wide); the registry lock
only guards the name table.  All mutation goes through the metric
methods -- the audit that motivated this module found ad-hoc counters
incremented bare (``self.x += 1``) on multithreaded paths, which Python
does not make atomic.

Export: :meth:`MetricsRegistry.render_prometheus` emits the Prometheus
text exposition format (``# TYPE``/``# HELP`` comments, one sample per
line; histograms render as summaries with quantile labels), and
:meth:`MetricsRegistry.collect` returns plain dicts for JSON.
"""

import math
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_QUANTILES = (0.5, 0.95, 0.99)


class Counter:
    """Monotonic counter."""

    kind = "counter"

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value

    def reset(self):
        """Zero the counter (test isolation; not part of Prometheus)."""
        with self._lock:
            self._value = 0

    def collect(self):
        return {"name": self.name, "kind": self.kind, "value": self.value}

    def render(self):
        return ["{} {}".format(self.name, self.value)]


class Gauge:
    """A value that goes up and down."""

    kind = "gauge"

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value):
        with self._lock:
            self._value = value

    def inc(self, amount=1):
        with self._lock:
            self._value += amount

    def dec(self, amount=1):
        with self._lock:
            self._value -= amount

    @property
    def value(self):
        with self._lock:
            return self._value

    def reset(self):
        self.set(0)

    def collect(self):
        return {"name": self.name, "kind": self.kind, "value": self.value}

    def render(self):
        return ["{} {}".format(self.name, self.value)]


class Histogram:
    """Exact-sample distribution with nearest-rank percentiles.

    Samples are stored exactly (runs are bounded in length), matching the
    repo's historical :class:`~repro.util.histogram.LatencyHistogram`
    semantics so that class can become a thin view over this one.
    """

    kind = "histogram"

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self._samples = []
        self._lock = threading.Lock()

    def observe(self, value):
        with self._lock:
            self._samples.append(value)

    def observe_many(self, values):
        with self._lock:
            self._samples.extend(values)

    def samples(self):
        with self._lock:
            return list(self._samples)

    def reset(self):
        with self._lock:
            self._samples.clear()

    def __len__(self):
        with self._lock:
            return len(self._samples)

    @property
    def count(self):
        return len(self)

    @property
    def total(self):
        with self._lock:
            return sum(self._samples)

    def percentile(self, fraction):
        """Nearest-rank percentile of the samples, or ``None`` when empty."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(self._samples)
        rank = math.ceil(fraction * len(ordered)) - 1
        rank = min(max(rank, 0), len(ordered) - 1)
        return ordered[rank]

    def mean(self):
        with self._lock:
            if not self._samples:
                return None
            return sum(self._samples) / len(self._samples)

    def max(self):
        with self._lock:
            return max(self._samples) if self._samples else None

    def collect(self):
        return {
            "name": self.name,
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "quantiles": {
                str(q): self.percentile(q) for q in _QUANTILES
            },
        }

    def render(self):
        lines = []
        for q in _QUANTILES:
            value = self.percentile(q)
            if value is not None:
                lines.append('{}{{quantile="{}"}} {}'.format(
                    self.name, q, value
                ))
        lines.append("{}_count {}".format(self.name, self.count))
        lines.append("{}_sum {}".format(self.name, self.total))
        return lines

    # Prometheus calls this shape a summary (quantiles, not buckets).
    prometheus_type = "summary"


class MetricsRegistry:
    """Named metrics, created on first use, rendered on demand."""

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self):
        self._metrics = {}
        self._lock = threading.Lock()

    def _get_or_create(self, kind, name, help):
        cls = self._KINDS[kind]
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help=help)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    "metric {!r} already registered as {}".format(
                        name, metric.kind
                    )
                )
            return metric

    def counter(self, name, help=""):
        return self._get_or_create("counter", name, help)

    def gauge(self, name, help=""):
        return self._get_or_create("gauge", name, help)

    def histogram(self, name, help=""):
        return self._get_or_create("histogram", name, help)

    def get(self, name):
        with self._lock:
            return self._metrics.get(name)

    def names(self):
        with self._lock:
            return sorted(self._metrics)

    def __len__(self):
        with self._lock:
            return len(self._metrics)

    def reset(self):
        """Zero every metric (between measurement windows)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    def collect(self):
        """Point-in-time dump of every metric as plain dicts."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        return [metric.collect() for metric in metrics]

    def render_prometheus(self):
        """The Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines = []
        for metric in metrics:
            if metric.help:
                lines.append("# HELP {} {}".format(metric.name, metric.help))
            prom_type = getattr(metric, "prometheus_type", metric.kind)
            lines.append("# TYPE {} {}".format(metric.name, prom_type))
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"
