"""Online IQ-invariant auditor: a lease-lifecycle state machine over traces.

The BG validation log proves consistency *after* a run by replaying
timelines; the auditor checks the lease protocol itself *while* the run
happens, by subscribing to the trace stream
(:meth:`~repro.obs.trace.Tracer.add_listener`) and replaying the paper's
lease rules as a state machine.  The two oracles are independent: BG
checks values, the auditor checks protocol steps, and a clean run must
satisfy both.

Invariants checked (violation categories):

``double-i-grant``
    At most one I lease per key (Section 3.1): a second ``lease.i.grant``
    while one is live means two readers both believe they may fill.
``q-grant-left-i-alive``
    Granting a Q lease must void any I lease on the key (Figure 5a, row
    I): a ``lease.q.grant`` arriving while the key's I lease is still
    live means a doomed reader's ``IQset`` could later install a stale
    value.
``apply-before-sql-commit``
    A write session's KVS changes (delete / delta / refresh / SaR) may
    only be applied after its RDBMS transaction committed (the 2PL
    discipline of Table 2): a ``kvs.apply`` on a trace with no prior
    ``session.sql_commit`` reorders the shrinking phase before the
    growing phase ended.
``release-without-terminator``
    Q leases are released by ``commit``/``abort``/``dar`` (or per-key by
    ``SaR``); any other ``lease.q.release`` would expose the pre-commit
    value while the writer is still in flight.
``exclusive-q-cogrant``
    Refresh and incremental-update sessions hold their Q leases
    exclusively (Figure 5b): two live holders on one key where either
    side is exclusive means the KVS can no longer follow the RDBMS
    serialization order.
``migration-quarantine-leak``
    A shard migration quarantines moving keys under migration Q leases
    (``migrate.quarantine``) and must release every one of them
    (``migrate.release``) before it ends: keys still quarantined at
    ``shard.rebalance.end`` are stranded until their lease TTL deletes
    them, blocking writers and readers alike on the old owner.
``clock-serve-past-bound``
    The precise-clock technique's one safety rule (:mod:`repro.clock`):
    a ``cget`` may serve a value only while the caller's commit-clock
    reading is below the entry's validity bound.  A ``clock.serve``
    whose ``clock`` is at or past its ``expiry`` -- or a ``clock.fill``
    that installed an empty interval -- means self-invalidation broke
    and a stale value can outlive the write it missed.

Lease and session state is keyed by ``(srv, key)`` / ``(srv, tid)`` --
``srv`` names the emitting IQ server -- so shards and restarted server
incarnations with overlapping TID spaces cannot alias each other.
Per-trace state is dropped on ``session.end``; lease state is dropped as
leases retire, so a long audited run stays bounded.
"""

import threading

__all__ = [
    "AuditReport",
    "IQAuditor",
    "Violation",
    "CATEGORY_DOUBLE_I",
    "CATEGORY_UNVOIDED_I",
    "CATEGORY_EARLY_APPLY",
    "CATEGORY_ORPHAN_RELEASE",
    "CATEGORY_EXCLUSIVE_COGRANT",
    "CATEGORY_QUARANTINE_LEAK",
    "CATEGORY_CLOCK_PAST_BOUND",
    "audited",
]

CATEGORY_DOUBLE_I = "double-i-grant"
CATEGORY_UNVOIDED_I = "q-grant-left-i-alive"
CATEGORY_EARLY_APPLY = "apply-before-sql-commit"
CATEGORY_ORPHAN_RELEASE = "release-without-terminator"
CATEGORY_EXCLUSIVE_COGRANT = "exclusive-q-cogrant"
CATEGORY_QUARANTINE_LEAK = "migration-quarantine-leak"
CATEGORY_CLOCK_PAST_BOUND = "clock-serve-past-bound"

ALL_CATEGORIES = (
    CATEGORY_DOUBLE_I,
    CATEGORY_UNVOIDED_I,
    CATEGORY_EARLY_APPLY,
    CATEGORY_ORPHAN_RELEASE,
    CATEGORY_EXCLUSIVE_COGRANT,
    CATEGORY_QUARANTINE_LEAK,
    CATEGORY_CLOCK_PAST_BOUND,
)

#: ``lease.q.grant`` mode field value for exclusive (refresh/delta) leases.
_EXCLUSIVE = "exclusive"


class Violation:
    """One detected protocol violation."""

    __slots__ = ("ts", "category", "key", "tid", "trace_id", "detail")

    def __init__(self, ts, category, key=None, tid=None, trace_id=None,
                 detail=""):
        self.ts = ts
        self.category = category
        self.key = key
        self.tid = tid
        self.trace_id = trace_id
        self.detail = detail

    def __repr__(self):
        return "Violation({} key={} tid={} trace={}: {})".format(
            self.category, self.key, self.tid, self.trace_id, self.detail
        )


class AuditReport:
    """Summary of one audited window."""

    def __init__(self, violations, events_seen):
        self.violations = list(violations)
        self.events_seen = events_seen

    @property
    def clean(self):
        return not self.violations

    def by_category(self):
        counts = {}
        for violation in self.violations:
            counts[violation.category] = counts.get(violation.category, 0) + 1
        return counts

    def categories(self):
        return set(self.by_category())

    def summary(self):
        if self.clean:
            return "audit clean: {} events, 0 violations".format(
                self.events_seen
            )
        parts = ", ".join(
            "{}={}".format(cat, count)
            for cat, count in sorted(self.by_category().items())
        )
        return "audit FAILED: {} events, {} violations ({})".format(
            self.events_seen, len(self.violations), parts
        )

    def __repr__(self):
        return "AuditReport({})".format(self.summary())


class IQAuditor:
    """Feed me trace events (``auditor.observe`` or ``auditor(event)``).

    Thread-safe: events may arrive from every worker and server handler
    thread; one internal lock serializes state transitions, which is
    correct because causally related events (same key's lease table,
    same session's thread) already reach the tracer in order.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._violations = []
        self._events_seen = 0
        #: (srv, key) -> live I-lease token
        self._i_leases = {}
        #: (srv, key) -> {tid: mode}
        self._q_holders = {}
        #: (srv, tid) currently inside commit/abort (release window open)
        self._terminating = set()
        #: (srv, tid, key) released per-key by SaR
        self._sar_ok = set()
        #: traces with a session.begin seen
        self._traces_begun = set()
        #: traces whose RDBMS transaction committed
        self._traces_committed = set()
        #: (shard, key) -> migration tid, while a migration holds the
        #: key's quarantine
        self._migration_quarantined = {}

    # -- wiring ---------------------------------------------------------------

    def attach(self, tracer):
        tracer.add_listener(self.observe)
        return self

    def detach(self, tracer):
        tracer.remove_listener(self.observe)
        return self

    def __call__(self, event):
        self.observe(event)

    # -- reporting ------------------------------------------------------------

    @property
    def violations(self):
        with self._lock:
            return list(self._violations)

    def report(self):
        with self._lock:
            return AuditReport(self._violations, self._events_seen)

    def _flag(self, event, category, detail):
        self._violations.append(Violation(
            event.ts, category, key=event.key, tid=event.tid,
            trace_id=event.trace_id, detail=detail,
        ))

    # -- the state machine ----------------------------------------------------

    def observe(self, event):
        handler = self._HANDLERS.get(event.name)
        if handler is None:
            return
        with self._lock:
            self._events_seen += 1
            handler(self, event)

    def _srv_key(self, event):
        return (event.get("srv"), event.key)

    def _srv_tid(self, event):
        return (event.get("srv"), event.tid)

    def _on_i_grant(self, event):
        slot = self._srv_key(event)
        if slot in self._i_leases:
            self._flag(event, CATEGORY_DOUBLE_I,
                       "I lease granted while token {} still live".format(
                           self._i_leases[slot]))
        self._i_leases[slot] = event.get("token")

    def _on_i_gone(self, event):
        self._i_leases.pop(self._srv_key(event), None)

    def _on_q_grant(self, event):
        slot = self._srv_key(event)
        if slot in self._i_leases:
            self._flag(event, CATEGORY_UNVOIDED_I,
                       "Q grant left I token {} live".format(
                           self._i_leases[slot]))
            # One violation per unvoided I; the lease is now considered
            # consumed so a later legitimate grant is not re-flagged.
            del self._i_leases[slot]
        holders = self._q_holders.setdefault(slot, {})
        mode = event.get("mode")
        others = [tid for tid in holders if tid != event.tid]
        if others and (mode == _EXCLUSIVE
                       or any(holders[t] == _EXCLUSIVE for t in others)):
            self._flag(event, CATEGORY_EXCLUSIVE_COGRANT,
                       "co-granted with sessions {} (mode={})".format(
                           sorted(others), mode))
        holders[event.tid] = mode

    def _drop_q(self, slot, tid):
        holders = self._q_holders.get(slot)
        if holders is not None:
            holders.pop(tid, None)
            if not holders:
                del self._q_holders[slot]

    def _on_q_release(self, event):
        slot = self._srv_key(event)
        srv_tid = self._srv_tid(event)
        sar_slot = (srv_tid[0], event.tid, event.key)
        if srv_tid not in self._terminating and sar_slot not in self._sar_ok:
            self._flag(event, CATEGORY_ORPHAN_RELEASE,
                       "Q released outside commit/abort/SaR")
        self._sar_ok.discard(sar_slot)
        self._drop_q(slot, event.tid)

    def _on_q_expire(self, event):
        self._drop_q(self._srv_key(event), event.tid)

    def _on_q_reject(self, event):
        pass  # counted via _events_seen only

    def _on_sar(self, event):
        srv = event.get("srv")
        self._sar_ok.add((srv, event.tid, event.key))
        if event.get("stored"):
            self._check_apply(event)

    def _on_terminator_begin(self, event):
        self._terminating.add(self._srv_tid(event))

    def _on_terminator_end(self, event):
        srv_tid = self._srv_tid(event)
        self._terminating.discard(srv_tid)
        self._sar_ok = {
            slot for slot in self._sar_ok
            if (slot[0], slot[1]) != srv_tid
        }

    def _check_apply(self, event):
        trace = event.trace_id
        if trace is None or trace not in self._traces_begun:
            # Untraced callers (raw server unit tests, baselines) carry
            # no session context; the 2PL check needs one.
            return
        if trace not in self._traces_committed:
            self._flag(event, CATEGORY_EARLY_APPLY,
                       "KVS {} applied before the trace's SQL commit".format(
                           event.get("op", "sar")))

    def _on_apply(self, event):
        self._check_apply(event)

    def _on_session_begin(self, event):
        if event.trace_id is not None:
            self._traces_begun.add(event.trace_id)

    def _on_sql_commit(self, event):
        if event.trace_id is not None:
            self._traces_committed.add(event.trace_id)

    def _on_session_end(self, event):
        if event.trace_id is not None:
            self._traces_begun.discard(event.trace_id)
            self._traces_committed.discard(event.trace_id)

    # -- precise-clock validity bounds -----------------------------------------

    def _on_clock_serve(self, event):
        clock = event.get("clock")
        expiry = event.get("expiry")
        if clock is None or expiry is None:
            return
        if clock >= expiry:
            self._flag(event, CATEGORY_CLOCK_PAST_BOUND,
                       "served at clock {} past validity bound {}".format(
                           clock, expiry))

    def _on_clock_extend(self, event):
        # An extension must still land ahead of the caller's reading;
        # the store only ever grows the bound, so the same check applies.
        self._on_clock_serve(event)

    def _on_clock_fill(self, event):
        if not event.get("applied"):
            return
        start = event.get("start")
        expiry = event.get("expiry")
        if start is None or expiry is None:
            return
        if expiry <= start:
            self._flag(event, CATEGORY_CLOCK_PAST_BOUND,
                       "empty validity interval [{}, {}) installed".format(
                           start, expiry))

    # -- migration quarantine tracking ----------------------------------------

    def _on_migrate_quarantine(self, event):
        slot = (event.get("shard"), event.key)
        self._migration_quarantined[slot] = event.tid

    def _on_migrate_release(self, event):
        self._migration_quarantined.pop((event.get("shard"), event.key),
                                        None)

    def _on_rebalance_end(self, event):
        shard = event.get("shard")
        for (held_shard, key), tid in sorted(
            self._migration_quarantined.items()
        ):
            self._violations.append(Violation(
                event.ts, CATEGORY_QUARANTINE_LEAK, key=key, tid=tid,
                trace_id=event.trace_id,
                detail="migration of {!r} ended with {!r} still "
                       "quarantined on {!r}".format(shard, key, held_shard),
            ))
        self._migration_quarantined.clear()

    def quarantined_keys(self):
        """``{(shard, key): tid}`` currently held by a live migration."""
        with self._lock:
            return dict(self._migration_quarantined)

    _HANDLERS = {
        "lease.i.grant": _on_i_grant,
        "lease.i.redeem": _on_i_gone,
        "lease.i.void": _on_i_gone,
        "lease.i.expire": _on_i_gone,
        "lease.q.grant": _on_q_grant,
        "lease.q.reject": _on_q_reject,
        "lease.q.release": _on_q_release,
        "lease.q.expire": _on_q_expire,
        "iq.sar": _on_sar,
        "kvs.apply": _on_apply,
        "iq.commit.begin": _on_terminator_begin,
        "iq.commit.end": _on_terminator_end,
        "iq.abort.begin": _on_terminator_begin,
        "iq.abort.end": _on_terminator_end,
        "session.begin": _on_session_begin,
        "session.sql_commit": _on_sql_commit,
        "session.end": _on_session_end,
        "migrate.quarantine": _on_migrate_quarantine,
        "migrate.release": _on_migrate_release,
        "shard.rebalance.end": _on_rebalance_end,
        "clock.serve": _on_clock_serve,
        "clock.extend": _on_clock_extend,
        "clock.fill": _on_clock_fill,
    }


class audited:
    """Context manager: attach a fresh auditor to the global tracer.

    ::

        with audited() as auditor:
            system.runner.run(threads=4, duration=1.0)
        assert auditor.report().clean, auditor.report().summary()
    """

    def __init__(self, tracer=None):
        from repro.obs.trace import get_tracer

        self.tracer = tracer or get_tracer()
        self.auditor = IQAuditor()

    def __enter__(self):
        self.auditor.attach(self.tracer)
        return self.auditor

    def __exit__(self, *exc):
        self.auditor.detach(self.tracer)
        return False
