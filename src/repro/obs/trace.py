"""End-to-end tracing: events, trace-ID propagation, recorders.

The tracer is deliberately small.  A :class:`TraceEvent` is a timestamped
named record (monotonic clock) tagged with the *trace id* of the session
or read operation it belongs to; instrumented layers emit events through
one process-global :class:`Tracer` obtained via :func:`get_tracer`.

**Zero-cost no-op mode.**  The tracer ships disabled: :attr:`Tracer.active`
is ``False`` until a recorder or listener is installed, and every
instrumented call site guards with ``if tracer.active:`` before building
an event, so the disabled path costs one attribute read per hook -- the
same discipline :mod:`repro.faults` uses for its injector hooks.

**Propagation.**  Trace ids travel in a :mod:`contextvars` context
variable, so they follow the thread of control without threading an
argument through every call: a :class:`~repro.core.session.WriteSession`
mints one id and enters :func:`trace_context` around each of its KVS
commands, the consistency clients do the same per read, and everything
underneath -- lease table, store, shard fan-out -- stamps its events with
:func:`current_trace_id`.  Across the wire, ``RemoteIQServer`` appends a
``@t<id>`` token to each command line and the server re-enters the
context before dispatch (see :mod:`repro.net.protocol`).

Recorders:

* :class:`RingBufferRecorder` -- bounded deque; the default for tests and
  the BG harness (``build_bg_system(trace=True)``).
* :class:`JSONLRecorder` -- streams every event as one JSON object per
  line; the export format of ``repro trace``.
"""

import contextvars
import itertools
import json
import threading
import time
from collections import deque
from contextlib import contextmanager

__all__ = [
    "TraceEvent",
    "Tracer",
    "RingBufferRecorder",
    "JSONLRecorder",
    "get_tracer",
    "current_trace_id",
    "trace_context",
    "recording",
]

#: Current trace id for this thread of control (None = untraced).
_CURRENT_TRACE = contextvars.ContextVar("repro_trace_id", default=None)


def current_trace_id():
    """The trace id propagated to this point, or ``None``."""
    return _CURRENT_TRACE.get()


class _TraceContext:
    """Reentrant-friendly context manager binding a trace id.

    A ``None`` trace id leaves the ambient context untouched, so call
    sites can wrap unconditionally without a branch.
    """

    __slots__ = ("trace_id", "_token")

    def __init__(self, trace_id):
        self.trace_id = trace_id
        self._token = None

    def __enter__(self):
        if self.trace_id is not None:
            self._token = _CURRENT_TRACE.set(self.trace_id)
        return self

    def __exit__(self, *exc):
        if self._token is not None:
            _CURRENT_TRACE.reset(self._token)
            self._token = None
        return False


class _NullTraceContext:
    """The shared no-op context for untraced calls.

    ``WriteSession`` wraps every KVS command in :func:`trace_context`
    unconditionally; when tracing is off each of those wraps used to
    allocate a fresh ``_TraceContext(None)``.  A single stateless
    instance makes the untraced hot path allocation-free.
    """

    __slots__ = ()

    trace_id = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullTraceContext()


def trace_context(trace_id):
    """Bind ``trace_id`` as the current trace for the ``with`` body.

    A ``None`` id returns a shared no-op context (no allocation), so
    call sites can wrap unconditionally without a branch.
    """
    if trace_id is None:
        return _NULL_CONTEXT
    return _TraceContext(trace_id)


class TraceEvent:
    """One timestamped event.

    ``ts`` comes from ``time.monotonic()`` so cross-tier ordering within a
    process is meaningful; ``trace_id`` groups the events of one session
    or read operation; ``tid`` is the IQ session identifier where one is
    in play; ``fields`` carries event-specific detail (lease mode, delta
    op, retry attempt, ...).
    """

    __slots__ = ("ts", "name", "trace_id", "key", "tid", "fields")

    def __init__(self, ts, name, trace_id=None, key=None, tid=None,
                 fields=None):
        self.ts = ts
        self.name = name
        self.trace_id = trace_id
        self.key = key
        self.tid = tid
        self.fields = fields

    def to_dict(self):
        record = {"ts": self.ts, "name": self.name}
        if self.trace_id is not None:
            record["trace"] = self.trace_id
        if self.key is not None:
            record["key"] = self.key
        if self.tid is not None:
            record["tid"] = self.tid
        if self.fields:
            record.update(self.fields)
        return record

    def get(self, field, default=None):
        if self.fields is None:
            return default
        return self.fields.get(field, default)

    def __repr__(self):
        return "TraceEvent({} trace={} key={} tid={})".format(
            self.name, self.trace_id, self.key, self.tid
        )


class RingBufferRecorder:
    """Keep the last ``capacity`` events; count what fell off the end."""

    def __init__(self, capacity=8192):
        self.capacity = capacity
        self._events = deque(maxlen=capacity)
        self._seen = 0
        self._lock = threading.Lock()

    def record(self, event):
        with self._lock:
            self._events.append(event)
            self._seen += 1

    def events(self):
        """Point-in-time copy of the buffered events, oldest first."""
        with self._lock:
            return list(self._events)

    def __len__(self):
        with self._lock:
            return len(self._events)

    @property
    def seen(self):
        """Total events recorded, including any the ring discarded."""
        with self._lock:
            return self._seen

    @property
    def dropped(self):
        with self._lock:
            return max(0, self._seen - len(self._events))

    def clear(self):
        with self._lock:
            self._events.clear()
            self._seen = 0


class JSONLRecorder:
    """Stream events to a file, one JSON object per line."""

    def __init__(self, path):
        self.path = path
        self._handle = open(path, "w")
        self._lock = threading.Lock()
        self._seen = 0

    def record(self, event):
        line = json.dumps(event.to_dict(), separators=(",", ":"))
        with self._lock:
            self._handle.write(line)
            self._handle.write("\n")
            self._seen += 1

    @property
    def seen(self):
        with self._lock:
            return self._seen

    def close(self):
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()


class Tracer:
    """Event fan-out point: one recorder plus any number of listeners.

    ``active`` is a plain attribute recomputed whenever the recorder or
    listener set changes; instrumented code reads it before building an
    event, which is the entire cost of the disabled path.  Listeners
    (the :class:`~repro.obs.audit.IQAuditor`) are invoked synchronously
    from :meth:`emit`, so events produced under a subsystem lock arrive
    at the listener in that lock's serialization order.
    """

    def __init__(self, clock=None):
        #: True when at least one recorder or listener wants events.
        self.active = False
        self._recorder = None
        self._listeners = []
        self._now = clock.now if clock is not None else time.monotonic
        self._trace_ids = itertools.count(1)
        self._lock = threading.Lock()

    # -- wiring --------------------------------------------------------------

    def _refresh_active(self):
        self.active = self._recorder is not None or bool(self._listeners)

    def set_recorder(self, recorder):
        """Install (or with ``None`` remove) the recorder; returns the old one."""
        with self._lock:
            previous, self._recorder = self._recorder, recorder
            self._refresh_active()
            return previous

    @property
    def recorder(self):
        return self._recorder

    def add_listener(self, listener):
        """Subscribe ``listener(event)`` to every emitted event."""
        with self._lock:
            self._listeners.append(listener)
            self._refresh_active()

    def remove_listener(self, listener):
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)
            self._refresh_active()

    # -- emission ------------------------------------------------------------

    def new_trace(self):
        """Mint a fresh trace id (process-unique, monotonically increasing)."""
        return next(self._trace_ids)

    def emit(self, name, key=None, tid=None, trace_id=None, **fields):
        """Record one event; ``trace_id`` defaults to the ambient context."""
        if not self.active:
            return None
        if trace_id is None:
            trace_id = _CURRENT_TRACE.get()
        event = TraceEvent(self._now(), name, trace_id=trace_id, key=key,
                           tid=tid, fields=fields or None)
        recorder = self._recorder
        if recorder is not None:
            recorder.record(event)
        for listener in self._listeners:
            listener(event)
        return event

    @contextmanager
    def span(self, name, key=None, tid=None, **fields):
        """Emit ``<name>.begin`` / ``<name>.end`` around the body.

        The end event carries the elapsed monotonic duration in a
        ``duration`` field.
        """
        if not self.active:
            yield None
            return
        start = self._now()
        self.emit(name + ".begin", key=key, tid=tid, **fields)
        try:
            yield None
        finally:
            self.emit(name + ".end", key=key, tid=tid,
                      duration=self._now() - start, **fields)


#: The process-global tracer.  Its identity never changes, so components
#: may capture it at construction time; enabling tracing later still
#: reaches them.
_GLOBAL = Tracer()


def get_tracer():
    """The process-global :class:`Tracer`."""
    return _GLOBAL


@contextmanager
def recording(recorder=None, capacity=8192):
    """Install a recorder on the global tracer for the ``with`` body.

    Yields the recorder (a fresh :class:`RingBufferRecorder` by default)
    and restores the previous recorder afterwards::

        with recording() as events:
            system.runner.run(threads=2, duration=0.5)
        assert events.seen > 0
    """
    if recorder is None:
        recorder = RingBufferRecorder(capacity=capacity)
    tracer = get_tracer()
    previous = tracer.set_recorder(recorder)
    try:
        yield recorder
    finally:
        tracer.set_recorder(previous)
