"""Command-line interface.

::

    python -m repro serve [--port P] [--i-ttl S] [--q-ttl S]
                          [--async | --threaded] [--shards N]
                          [--max-pipeline-buffer BYTES]
        Run an IQ-Twemcached server on a TCP port.  ``--async`` (the
        default) serves every connection from one event loop;
        ``--threaded`` uses the thread-per-connection reference
        transport.  ``--shards N`` (N > 1) instead launches a
        process-per-shard cluster: N supervised worker processes, each
        serving one shard of the consistent-hash ring, restarted on
        crash.  ``--max-pipeline-buffer`` caps the bytes of pipelined
        replies buffered per connection.  SIGINT/SIGTERM drain
        gracefully -- buffered replies are flushed before the listening
        sockets close.

    python -m repro figures
        Replay the paper's race-condition figures and print the outcomes.

    python -m repro bench --experiment table1|table6|table7|table8|
                                       figures|ablations|linkbench
        Run a scaled evaluation experiment and print its table.

    python -m repro demo [--threads N] [--ops N] [--members M]
        Run the BG workload baseline-vs-IQ comparison.

    python -m repro metrics [--threads N] [--ops N] [--members M]
        Run a short BG workload and print the metrics registries in
        Prometheus text format.

    python -m repro trace [--out F] [--threads N] [--ops N] [--members M]
        Run a short audited BG workload, export its trace as JSONL, and
        print the IQ-invariant audit summary.

    python -m repro mc [--scenario NAME] [--list] [--max-states N]
                       [--fuzz N] [--fuzz-scenario NAME] [--seed S]
        Run the schedule-exploring model checker.  With no arguments it
        runs the acceptance sweep over the six figure pairs: every
        unleased baseline scenario must race (the minimal shrunk
        schedule is printed) and every IQ scenario must explore clean.
        ``--max-states`` caps explored states per scenario; ``--fuzz N``
        additionally samples N random schedules of ``--fuzz-scenario``.

    python -m repro ring add|remove|status [--shards N] [--keys K]
        Online shard rebalancing demo: build a sharded cluster (``N``
        initial shards, ``K`` seeded keys), migrate keys onto a joining
        shard (or off a leaving one) while reader threads hammer the
        router, and report stale-read counts (which must be zero) plus
        the resulting topology.

    python -m repro scenarios [--list] [--run NAME] [--sweep] [--smoke]
                              [--mode live|mc|both] [--technique T]
                              [--transport T] [--tag T] [--family F]
                              [--seed S] [--out F] [--diff-baselines]
                              [--headline NAME] [--strict-env]
        The declarative scenario catalogue.  ``--list`` prints the
        committed entries (honouring the filter flags); ``--run NAME``
        executes one entry through the live system and/or the model
        checker; ``--sweep`` executes the filtered catalogue, and
        ``--smoke`` selects the smoke tier (smaller sizing *and* only
        smoke-tier entries) -- CI runs ``--sweep --smoke``.  Entries
        declaring both modes also get a live/mc parity check.  ``--out``
        writes the machine-readable reports as JSON.
        ``--diff-baselines`` instead re-measures the committed
        ``BENCH_*.json`` headline numbers (``--headline`` selects one)
        and diffs them inside explicit tolerance bands;
        ``--strict-env`` forces absolute-throughput comparisons on
        hosts that do not look like the baseline's hardware class.
"""

import argparse
import sys


def _cmd_serve(args):
    if args.shards > 1:
        return _serve_cluster(args)
    return _serve_single(args)


def _serve_single(args):
    import signal
    import threading

    from repro.config import LeaseConfig, NetConfig
    from repro.core.iq_server import IQServer
    from repro.net.server import server_class

    net_config = NetConfig()
    if args.max_pipeline_buffer is not None:
        net_config.max_pipeline_buffer = args.max_pipeline_buffer
    server = server_class(args.transport)(
        ("127.0.0.1", args.port),
        IQServer(lease_config=LeaseConfig(
            i_lease_ttl=args.i_ttl, q_lease_ttl=args.q_ttl,
        )),
        net_config=net_config,
    )
    print("IQ-Twemcached ({}) listening on 127.0.0.1:{}".format(
        args.transport, server.port
    ))
    print("Protocol: memcached ASCII + IQ extensions (see repro.net)")

    draining = threading.Event()

    def _drain(_signum=None, _frame=None):
        if draining.is_set():
            return
        draining.set()
        print("\ndraining connections and shutting down")
        # shutdown() blocks until serve_forever exits; it must not run
        # on the thread serve_forever occupies.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        _drain()
        server.shutdown()
    finally:
        server.server_close()
    return 0


def _serve_cluster(args):
    import signal
    import threading

    from repro.config import NetConfig
    from repro.net.cluster import IQCluster

    net_config = NetConfig()
    if args.max_pipeline_buffer is not None:
        net_config.max_pipeline_buffer = args.max_pipeline_buffer
    cluster = IQCluster(
        shards=args.shards, transport=args.transport,
        net_config=net_config, i_ttl=args.i_ttl, q_ttl=args.q_ttl,
    )
    cluster.start()
    print("IQ-Twemcached cluster: {} shard processes ({})".format(
        args.shards, args.transport
    ))
    for proc in cluster.processes:
        print("  {:<8} pid {:<8} 127.0.0.1:{}".format(
            proc.name, proc.proc.pid, proc.port
        ))
    print("crashed shards are restarted on the same port; "
          "SIGINT/SIGTERM drains gracefully")

    stop = threading.Event()

    def _drain(_signum=None, _frame=None):
        stop.set()

    signal.signal(signal.SIGTERM, _drain)
    try:
        while not stop.wait(0.5):
            pass
    except KeyboardInterrupt:
        pass
    print("\ndraining shard processes")
    cluster.stop(graceful=True)
    return 0


def _cmd_figures(_args):
    from repro.sim import run_all_figures

    failures = 0
    for outcome in run_all_figures():
        status = "consistent" if outcome.consistent else "STALE"
        print("{:<10} {:<21} rdbms={!r:<8} kvs={!r:<8} {}".format(
            outcome.figure, outcome.variant, outcome.rdbms_value,
            outcome.kvs_value, status,
        ))
        if outcome.variant.startswith("iq") and not outcome.consistent:
            failures += 1
    return 1 if failures else 0


def _cmd_demo(args):
    from repro.bg.actions import Technique
    from repro.bg.harness import build_bg_system
    from repro.bg.workload import HIGH_WRITE_MIX

    for leased in (False, True):
        system = build_bg_system(
            members=args.members, friends_per_member=6,
            resources_per_member=2, technique=Technique.REFRESH,
            leased=leased, mix=HIGH_WRITE_MIX,
            compute_delay=0.001, write_delay=0.001,
        )
        result = system.runner.run(
            threads=args.threads, ops_per_thread=args.ops
        )
        label = "IQ-Twemcached" if leased else "Twemcache baseline"
        print("{:<20} {:.0f} actions/s, unpredictable reads: {:.3f}%".format(
            label, result.throughput, result.unpredictable_percentage,
        ))
    return 0


def _cmd_metrics(args):
    from repro.bg.actions import Technique
    from repro.bg.harness import build_bg_system
    from repro.bg.workload import HIGH_WRITE_MIX

    system = build_bg_system(
        members=args.members, friends_per_member=6, resources_per_member=2,
        technique=Technique.INVALIDATE, mix=HIGH_WRITE_MIX,
    )
    system.runner.run(threads=args.threads, ops_per_thread=args.ops)
    # The server's cache counters and the consistency client's degraded
    # counters live in separate registries (one stats domain per server,
    # like a memcached process); render both.
    print(system.cache.stats.registry.render_prometheus(), end="")
    print(system.consistency_client.metrics.render_prometheus(), end="")
    return 0


def _cmd_trace(args):
    from repro.bg.actions import Technique
    from repro.bg.harness import build_bg_system
    from repro.bg.workload import HIGH_WRITE_MIX
    from repro.obs import IQAuditor, JSONLRecorder
    from repro.obs.trace import get_tracer

    tracer = get_tracer()
    recorder = JSONLRecorder(args.out)
    previous = tracer.set_recorder(recorder)
    auditor = IQAuditor().attach(tracer)
    try:
        system = build_bg_system(
            members=args.members, friends_per_member=6,
            resources_per_member=2, technique=Technique.INVALIDATE,
            mix=HIGH_WRITE_MIX,
        )
        system.runner.run(threads=args.threads, ops_per_thread=args.ops)
    finally:
        auditor.detach(tracer)
        tracer.set_recorder(previous)
        recorder.close()
    report = auditor.report()
    print("{} events -> {}".format(recorder.seen, args.out))
    print(report.summary())
    return 0 if report.clean else 1


def _run_mc_scenario(scenario, max_states, shrink_violations=True):
    from repro.mc import emit_script, explore, shrink

    report = explore(scenario, max_states=max_states)
    print(report.summary())
    expected = scenario.expect_violation
    if report.truncated:
        print("  state budget exhausted; raise --max-states")
        return False
    if report.violation_count == 0:
        if expected:
            print("  EXPECTED a violation (rejected/buggy semantics) but "
                  "the space explored clean")
        return not expected
    if not expected:
        for violation in report.violations[:3]:
            for message in violation.messages:
                print("  {}".format(message))
        return False
    if shrink_violations:
        result = shrink(scenario, report.violations[0].schedule)
        print(emit_script(result))
    return True


def _cmd_mc(args):
    from repro.mc import FIGURE_PAIRS, fuzz, get_scenario, scenario_names

    if args.list:
        from repro.mc import SCENARIOS

        for name in scenario_names():
            scenario = SCENARIOS[name]
            marker = "races" if scenario.expect_violation else "clean"
            print("{:<24} [{}] {:<21} {}".format(
                name, marker,
                "technique:{}".format(scenario.technique),
                scenario.description,
            ))
        return 0

    ok = True
    if args.scenario:
        names = [args.scenario]
    else:
        names = [name for pair in FIGURE_PAIRS for name in pair]
    for name in names:
        if not _run_mc_scenario(get_scenario(name), args.max_states):
            ok = False

    if args.fuzz:
        target = get_scenario(args.fuzz_scenario)
        report = fuzz(target, runs=args.fuzz, seed=args.seed)
        print(report.summary())
        if not report.ok:
            print(report.artifact())
            ok = False

    print("model checker: {}".format("OK" if ok else "FAILED"))
    return 0 if ok else 1


def _build_ring_cluster(shards, keys):
    from repro.core.iq_server import IQServer
    from repro.sharding import ShardedIQServer

    router = ShardedIQServer(
        [IQServer() for _ in range(shards)]
    )
    expected = {}
    for i in range(keys):
        key = "key{}".format(i)
        value = "value-{}".format(i).encode()
        router.shard_for(key).store.set(key, value)
        expected[key] = value
    return router, expected


def _print_ring_status(router, expected):
    spread = router.ring.view().spread(expected)
    print("epoch {}  shards {}".format(
        router.epoch, ",".join(router.shard_names)
    ))
    for name in router.shard_names:
        print("  {:<8} {:>5} keys".format(name, spread.get(name, 0)))


def _migrate_under_load(router, expected, mutate):
    """Run ``mutate`` while readers hammer the router; count stale reads."""
    import threading

    from repro.sharding import Rebalancer

    stop = threading.Event()
    stale = []

    def reader():
        keys = sorted(expected)
        index = 0
        while not stop.is_set():
            key = keys[index % len(keys)]
            index += 1
            result = router.iq_get(key)
            if result.backoff:
                continue
            if result.value is None:
                if result.token is not None:
                    # A genuine miss mid-migration: fill the expected
                    # value, exactly as a cache-augmented app would.
                    router.iq_set(key, expected[key], result.token)
            elif result.value != expected[key]:
                stale.append((key, result.value))

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        report = mutate(Rebalancer(router))
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    return report, stale


def _cmd_ring(args):
    from repro.core.iq_server import IQServer

    router, expected = _build_ring_cluster(args.shards, args.keys)
    if args.ring_action == "status":
        _print_ring_status(router, expected)
        return 0

    if args.ring_action == "add":
        name = "shard{}".format(args.shards)
        report, stale = _migrate_under_load(
            router, expected,
            lambda rebalancer: rebalancer.add_shard(name, IQServer()),
        )
    else:  # remove
        name = router.shard_names[-1]
        report, stale = _migrate_under_load(
            router, expected,
            lambda rebalancer: rebalancer.remove_shard(name),
        )
        router.detach_shard(name)

    print(report.summary())
    _print_ring_status(router, expected)
    wrong = []
    for key, value in expected.items():
        hit = router.shard_for(key).store.get(key)
        if hit is not None and hit[0] != value:
            wrong.append(key)
    print("stale reads during migration: {}".format(len(stale)))
    print("stale cached values after migration: {}".format(len(wrong)))
    ok = report.completed and not stale and not wrong
    print("ring {}: {}".format(args.ring_action, "OK" if ok else "FAILED"))
    return 0 if ok else 1


def _cmd_bench(args):
    import importlib
    import os

    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )), "benchmarks"),
    )
    modules = {
        "table1": "bench_table1_stale",
        "table6": "bench_table6_restarts",
        "table7": "bench_table7_stale_by_graph",
        "table8": "bench_table8_soar",
        "figures": "bench_figures_races",
        "ablations": "bench_ablations",
        "linkbench": "bench_linkbench",
    }
    name = modules[args.experiment]
    try:
        module = importlib.import_module(name)
    except ImportError:
        print("benchmark module {!r} not found; run from a source "
              "checkout (benchmarks/ directory required)".format(name))
        return 2
    # Each bench module is runnable as a script via its __main__ block;
    # execute the same path here.
    import runpy

    runpy.run_module(name, run_name="__main__")
    return 0


def _cmd_scenarios(args):
    import json

    from repro.scenarios import (
        by_name,
        diff_baselines,
        filter_catalogue,
        run_live,
        run_mc,
    )

    if args.diff_baselines:
        tier = "smoke" if args.smoke else "sweep"
        names = (args.headline,) if args.headline else None
        results = diff_baselines(
            names=names, tier=tier, strict_env=args.strict_env
        )
        regressions = 0
        for name in sorted(results):
            print("baseline {} ({} tier re-measurement):".format(name, tier))
            for entry in results[name]:
                print("  " + entry.summary())
                if not entry.ok:
                    regressions += 1
        print("baseline diff: {}".format(
            "OK" if regressions == 0 else
            "{} regression(s)".format(regressions)
        ))
        return 0 if regressions == 0 else 1

    filters = dict(
        technique=args.technique, transport=args.transport, tag=args.tag,
        family=args.family,
    )
    if args.list:
        for spec in filter_catalogue(**filters):
            print("{:<30} {:<10} {:<8} {:<24} [{}] {}".format(
                spec.name, spec.technique, spec.transport,
                spec.workload_label(), ",".join(spec.modes),
                spec.description.split("\n")[0],
            ))
        return 0

    if args.run:
        specs = [by_name(args.run)]
        tier = "smoke" if args.smoke else "sweep"
    elif args.sweep or args.smoke:
        tier = "smoke" if args.smoke else "sweep"
        specs = filter_catalogue(tier=tier, **filters)
    else:
        print("give one of --list, --run NAME, --sweep, or "
              "--diff-baselines (see repro scenarios --help)")
        return 2

    reports = []
    failures = 0
    for spec in specs:
        by_mode = {}
        for mode in spec.modes:
            if args.mode != "both" and mode != args.mode:
                continue
            run = run_live if mode == "live" else run_mc
            report = run(spec, sizing=tier, seed=args.seed)
            print(report.summary())
            reports.append(report)
            by_mode[mode] = report
            if not report.ok:
                failures += 1
        # A spec executing through both paths must reach one verdict.
        if len(by_mode) == 2:
            agree = by_mode["live"].ok == by_mode["mc"].ok
            print("  parity: live/mc verdicts {}".format(
                "agree" if agree else "DISAGREE"
            ))
            if not agree:
                failures += 1

    if args.out:
        with open(args.out, "w") as handle:
            json.dump([r.to_dict() for r in reports], handle, indent=2,
                      sort_keys=True)
        print("wrote {} report(s) -> {}".format(len(reports), args.out))
    print("scenarios: {} report(s), {}".format(
        len(reports),
        "all clean" if failures == 0 else "{} FAILED".format(failures),
    ))
    return 0 if failures == 0 else 1


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IQ framework reproduction: strong consistency in "
                    "cache-augmented SQL systems (Middleware 2014).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run an IQ-Twemcached TCP server")
    serve.add_argument("--port", type=int, default=11211)
    serve.add_argument("--i-ttl", type=float, default=10.0,
                       help="I lease lifetime, seconds")
    serve.add_argument("--q-ttl", type=float, default=10.0,
                       help="Q lease lifetime, seconds")
    transport = serve.add_mutually_exclusive_group()
    transport.add_argument(
        "--async", dest="transport", action="store_const", const="async",
        help="event-loop transport: one thread, every connection (default)",
    )
    transport.add_argument(
        "--threaded", dest="transport", action="store_const",
        const="threaded",
        help="thread-per-connection reference transport",
    )
    serve.add_argument(
        "--shards", type=int, default=1,
        help="N > 1 launches a process-per-shard cluster (default 1)",
    )
    serve.add_argument(
        "--max-pipeline-buffer", type=int, default=None,
        help="per-connection cap on buffered pipelined bytes",
    )
    serve.set_defaults(func=_cmd_serve, transport="async")

    figures = sub.add_parser(
        "figures", help="replay the paper's race-condition figures"
    )
    figures.set_defaults(func=_cmd_figures)

    demo = sub.add_parser(
        "demo", help="BG workload: baseline vs IQ stale percentages"
    )
    demo.add_argument("--threads", type=int, default=8)
    demo.add_argument("--ops", type=int, default=100)
    demo.add_argument("--members", type=int, default=100)
    demo.set_defaults(func=_cmd_demo)

    metrics = sub.add_parser(
        "metrics", help="run a short workload; print Prometheus metrics"
    )
    metrics.add_argument("--threads", type=int, default=4)
    metrics.add_argument("--ops", type=int, default=50)
    metrics.add_argument("--members", type=int, default=100)
    metrics.set_defaults(func=_cmd_metrics)

    trace = sub.add_parser(
        "trace", help="run a short audited workload; export JSONL trace"
    )
    trace.add_argument("--out", default="trace.jsonl",
                       help="JSONL output path (default trace.jsonl)")
    trace.add_argument("--threads", type=int, default=4)
    trace.add_argument("--ops", type=int, default=50)
    trace.add_argument("--members", type=int, default=100)
    trace.set_defaults(func=_cmd_trace)

    mc = sub.add_parser(
        "mc", help="run the schedule-exploring model checker"
    )
    mc.add_argument("--scenario", default=None,
                    help="explore one scenario instead of the figure sweep")
    mc.add_argument("--list", action="store_true",
                    help="list the scenario catalogue and exit")
    mc.add_argument("--max-states", type=int, default=500000,
                    help="cap on explored states per scenario")
    mc.add_argument("--fuzz", type=int, default=0, metavar="N",
                    help="additionally fuzz N random schedules")
    mc.add_argument("--fuzz-scenario", default="fuzz-sharded-fault",
                    help="scenario the fuzzer samples")
    mc.add_argument("--seed", type=int, default=0,
                    help="fuzzer base seed")
    mc.set_defaults(func=_cmd_mc)

    ring = sub.add_parser(
        "ring", help="online shard rebalancing demo (add/remove/status)"
    )
    ring_sub = ring.add_subparsers(dest="ring_action", required=True)
    for action, text in (
        ("status", "build a sharded cluster and print its topology"),
        ("add", "migrate onto a joining shard under live read load"),
        ("remove", "drain a leaving shard under live read load"),
    ):
        ring_action = ring_sub.add_parser(action, help=text)
        ring_action.add_argument("--shards", type=int, default=2,
                                 help="initial shard count")
        ring_action.add_argument("--keys", type=int, default=200,
                                 help="seeded key population")
        ring_action.set_defaults(func=_cmd_ring)

    bench = sub.add_parser("bench", help="run one evaluation experiment")
    bench.add_argument(
        "--experiment", required=True,
        choices=["table1", "table6", "table7", "table8", "figures",
                 "ablations", "linkbench"],
    )
    bench.set_defaults(func=_cmd_bench)

    scenarios = sub.add_parser(
        "scenarios",
        help="declarative scenario catalogue: list, run, sweep, diff",
    )
    scenarios.add_argument("--list", action="store_true",
                           help="print the (filtered) catalogue and exit")
    scenarios.add_argument("--run", metavar="NAME", default=None,
                           help="execute one catalogue entry")
    scenarios.add_argument("--sweep", action="store_true",
                           help="execute the filtered catalogue")
    scenarios.add_argument(
        "--smoke", action="store_true",
        help="smoke tier: smaller sizing and smoke-tier entries only",
    )
    scenarios.add_argument("--mode", choices=["live", "mc", "both"],
                           default="both",
                           help="execution path(s) (default both)")
    scenarios.add_argument(
        "--technique", default=None,
        choices=["invalidate", "refresh", "delta", "clock"],
        help="only entries using this consistency technique",
    )
    scenarios.add_argument(
        "--transport", default=None,
        choices=["inproc", "threaded", "async"],
        help="only entries on this transport",
    )
    scenarios.add_argument("--tag", default=None,
                           help="only entries carrying this tag")
    scenarios.add_argument(
        "--family", default=None,
        choices=["flash-crowd", "thundering-herd", "multi-tenant",
                 "zipf-sweep"],
        help="only entries of this workload family",
    )
    scenarios.add_argument("--seed", type=int, default=13,
                           help="workload seed (default 13)")
    scenarios.add_argument("--out", default=None, metavar="F",
                           help="write the reports as JSON to F")
    scenarios.add_argument(
        "--diff-baselines", action="store_true",
        help="re-measure committed BENCH_*.json headlines and diff them",
    )
    scenarios.add_argument(
        "--headline", default=None, choices=["pipeline", "clock"],
        help="diff only this baseline file",
    )
    scenarios.add_argument(
        "--strict-env", action="store_true",
        help="compare absolute throughput even off the baseline's "
             "hardware class",
    )
    scenarios.set_defaults(func=_cmd_scenarios)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
