"""Scripted reproductions of the paper's race-condition figures.

Each ``figureN_*`` function runs one scenario twice -- with the unleased
baseline (``iq=False``) and with the IQ framework (``iq=True``) -- under
the figure's exact interleaving, and reports the final RDBMS and KVS
values.  The baseline runs demonstrate the races (RDBMS and KVS diverge);
the IQ runs end consistent.

The scenarios use tiny single-row schemas so the step sequences map
one-to-one onto the paper's numbered steps.
"""

from repro.config import KVSConfig, LeaseConfig
from repro.core.iq_server import IQServer
from repro.errors import QuarantinedError
from repro.kvs.read_lease import ReadLeaseStore
from repro.sim.scheduler import Interleaver, Program
from repro.sql.engine import Database
from repro.util.clock import LogicalClock


class ScenarioOutcome:
    """Result of one scenario run."""

    def __init__(self, figure, variant, rdbms_value, kvs_value, notes=""):
        self.figure = figure
        self.variant = variant
        self.rdbms_value = rdbms_value
        self.kvs_value = kvs_value
        self.notes = notes

    @property
    def consistent(self):
        """True when the KVS either matches the RDBMS or holds nothing.

        An absent key is consistent: the next read session recomputes the
        value from the RDBMS under an I lease.
        """
        if self.kvs_value is None:
            return True
        return self.kvs_value == self.rdbms_value

    def __repr__(self):
        return (
            "ScenarioOutcome({}, {}, rdbms={!r}, kvs={!r}, consistent={})"
        ).format(
            self.figure, self.variant, self.rdbms_value, self.kvs_value,
            self.consistent,
        )


def _fresh_db(initial_value, column="val", as_text=False):
    db = Database()
    setup = db.connect()
    value_type = "TEXT" if as_text else "INTEGER"
    setup.execute(
        "CREATE TABLE items (id INTEGER PRIMARY KEY, {} {})".format(
            column, value_type
        )
    )
    setup.execute(
        "INSERT INTO items (id, {}) VALUES (?, ?)".format(column),
        (1, initial_value),
    )
    setup.close()
    return db


def _db_value(db, column="val"):
    connection = db.connect()
    try:
        return connection.query_scalar(
            "SELECT {} FROM items WHERE id = 1".format(column)
        )
    finally:
        connection.close()


def _kvs_int(store_get):
    return int(store_get[0]) if store_get is not None else None


KEY = "item1"


# ---------------------------------------------------------------------------
# Figure 2: compare-and-swap does not provide strong consistency
# ---------------------------------------------------------------------------

def figure2_cas_insufficient(iq=False):
    """Two R-M-W write sessions: S1 adds 50, S2 multiplies by 10.

    Schedule (paper): all of S2 runs between S1's RDBMS operations and
    S1's KVS operations.  Baseline: RDBMS says 1500, the KVS says 1050.
    IQ refresh: S2's QaRead aborts against S1's Q lease and retries after
    S1 releases, producing 1500 in both.
    """
    db = _fresh_db(100)
    if not iq:
        store = ReadLeaseStore()
        store.set(KEY, b"100")

        def s1():
            connection = db.connect()
            connection.begin()
            connection.execute("UPDATE items SET val = val + 50 WHERE id = 1")
            yield "S1: RDBMS +50"
            connection.commit()
            connection.close()
            yield "S1: RDBMS commit"
            value, _flags, cas_id = store.gets(KEY)
            yield "S1: KVS read"
            store.cas(KEY, str(int(value) + 50).encode(), cas_id)
            yield "S1: KVS cas"

        def s2():
            connection = db.connect()
            connection.begin()
            connection.execute("UPDATE items SET val = val * 10 WHERE id = 1")
            yield "S2: RDBMS *10"
            connection.commit()
            connection.close()
            yield "S2: RDBMS commit"
            value, _flags, cas_id = store.gets(KEY)
            yield "S2: KVS read"
            store.cas(KEY, str(int(value) * 10).encode(), cas_id)
            yield "S2: KVS cas"

        interleaver = Interleaver([Program("S1", s1), Program("S2", s2)])
        interleaver.run(
            ["S1", "S1", "S2", "S2", "S2", "S2", "S1", "S1"],
            finish_remaining=False,
        )
        return ScenarioOutcome(
            "Figure 2", "baseline-cas", _db_value(db),
            _kvs_int(store.get(KEY)),
            notes="cas succeeds on S2's value; KVS order != RDBMS order",
        )

    clock = LogicalClock()
    server = IQServer(clock=clock)
    server.store.set(KEY, b"100")

    def s1_iq():
        tid = server.gen_id()
        old = server.qaread(KEY, tid).value
        yield "S1: QaRead"
        connection = db.connect()
        connection.begin()
        connection.execute("UPDATE items SET val = val + 50 WHERE id = 1")
        yield "S1: RDBMS +50"
        connection.commit()
        connection.close()
        yield "S1: RDBMS commit"
        server.sar(KEY, str(int(old) + 50).encode(), tid)
        yield "S1: SaR"

    def s2_iq():
        while True:
            tid = server.gen_id()
            try:
                old = server.qaread(KEY, tid).value
            except QuarantinedError:
                server.abort(tid)
                yield "S2: QaRead aborted, backing off"
                continue
            yield "S2: QaRead"
            connection = db.connect()
            connection.begin()
            connection.execute("UPDATE items SET val = val * 10 WHERE id = 1")
            yield "S2: RDBMS *10"
            connection.commit()
            connection.close()
            yield "S2: RDBMS commit"
            server.sar(KEY, str(int(old) * 10).encode(), tid)
            yield "S2: SaR"
            return

    interleaver = Interleaver([Program("S1", s1_iq), Program("S2", s2_iq)])
    # S2 attempts its QaRead mid-flight (aborted), then completes after S1.
    interleaver.run(["S1", "S1", "S2", "S1", "S1", "S2", "S2", "S2", "S2"])
    return ScenarioOutcome(
        "Figure 2", "iq-refresh", _db_value(db), _kvs_int(server.store.get(KEY)),
        notes="S2 aborted against S1's Q lease and serialized after it",
    )


# ---------------------------------------------------------------------------
# Figure 3: snapshot isolation + trigger invalidate inserts stale data
# ---------------------------------------------------------------------------

def figure3_snapshot_invalidate(iq=False):
    """Write session S1 invalidates via trigger; read session S2 races.

    Baseline: S2's I lease (Facebook read lease) is granted *after* S1's
    delete, so its stale snapshot value lands in the KVS.  IQ: S1's Q
    lease makes S2 back off until S1 commits.
    """
    db = _fresh_db(0)
    if not iq:
        store = ReadLeaseStore()
        store.set(KEY, b"0")

        def s1():
            connection = db.connect()
            connection.begin()
            yield "1.1: begin Xact"
            connection.execute("UPDATE items SET val = 1 WHERE id = 1")
            yield "1.2: RDBMS update"
            store.delete(KEY)  # trigger fires inside the transaction
            yield "1.3: KVS delete (trigger)"
            connection.commit()
            connection.close()
            yield "1.4: commit Xact"

        def s2():
            result = store.lease_get(KEY)
            assert not result.is_hit and result.has_lease
            yield "2.1: KVS miss, read lease granted"
            connection = db.connect()
            stale = connection.query_scalar(
                "SELECT val FROM items WHERE id = 1"
            )
            connection.close()
            yield "2.2-2.4: RDBMS query (pre-commit snapshot)"
            store.lease_set(KEY, str(stale).encode(), result.token)
            yield "2.5: KVS set (stale)"

        interleaver = Interleaver([Program("S1", s1), Program("S2", s2)])
        interleaver.run(
            ["S1", "S1", "S1", "S2", "S2", "S1", "S2"], finish_remaining=False
        )
        return ScenarioOutcome(
            "Figure 3", "baseline-invalidate", _db_value(db),
            _kvs_int(store.get(KEY)),
            notes="read lease was granted after the delete, so it is valid",
        )

    clock = LogicalClock()
    # Eager-delete variant (optimization off) exercises the back-off path.
    server = IQServer(
        lease_config=LeaseConfig(serve_pending_versions=False), clock=clock
    )
    server.store.set(KEY, b"0")
    s2_attempts = []

    def s1_iq():
        tid = server.gen_id()
        connection = db.connect()
        connection.begin()
        yield "1.1: begin Xact"
        connection.execute("UPDATE items SET val = 1 WHERE id = 1")
        yield "1.2: RDBMS update"
        server.qar(tid, KEY)  # quarantine (and eager-delete) inside the Xact
        yield "1.3: QaR"
        connection.commit()
        connection.close()
        yield "1.4: commit Xact"
        server.dar(tid)
        yield "1.5: DaR"

    def s2_iq():
        while True:
            result = server.iq_get(KEY)
            if result.is_hit:
                s2_attempts.append("hit")
                return
            if result.backoff:
                s2_attempts.append("backoff")
                yield "2.1: miss, back off (Q pending)"
                continue
            s2_attempts.append("lease")
            yield "2.1: miss, I lease granted"
            connection = db.connect()
            value = connection.query_scalar(
                "SELECT val FROM items WHERE id = 1"
            )
            connection.close()
            yield "2.2-2.4: RDBMS query"
            server.iq_set(KEY, str(value).encode(), result.token)
            yield "2.5: IQset"
            return

    interleaver = Interleaver([Program("S1", s1_iq), Program("S2", s2_iq)])
    interleaver.run(["S1", "S1", "S1", "S2", "S1", "S1", "S2", "S2", "S2"])
    return ScenarioOutcome(
        "Figure 3", "iq-invalidate", _db_value(db),
        _kvs_int(server.store.get(KEY)),
        notes="S2 backed off {} time(s) before the I lease".format(
            sum(1 for a in s2_attempts if a == "backoff")
        ),
    )


# ---------------------------------------------------------------------------
# Figure 4: the re-arrangement window of the Section 3.3 optimization
# ---------------------------------------------------------------------------

def figure4_rearrangement_window():
    """Reads during a pending invalidation hit the old version.

    With the deferred-delete optimization, readers between QaR and DaR
    observe the pre-write value (they serialize before the writer), and
    the writer itself observes a miss on its own key.
    """
    db = _fresh_db(0)
    clock = LogicalClock()
    server = IQServer(
        lease_config=LeaseConfig(serve_pending_versions=True), clock=clock
    )
    server.store.set(KEY, b"0")

    tid = server.gen_id()
    connection = db.connect()
    connection.begin()
    connection.execute("UPDATE items SET val = 1 WHERE id = 1")
    server.qar(tid, KEY)

    window_reads = [server.iq_get(KEY).value for _ in range(3)]
    own_read = server.iq_get(KEY, session=tid)

    connection.commit()
    connection.close()
    server.dar(tid)

    after = server.iq_get(KEY)
    notes = (
        "window reads={}, writer-own-read miss={}, post-DaR miss with "
        "I lease={}"
    ).format(
        [int(v) for v in window_reads],
        not own_read.is_hit,
        after.has_lease,
    )
    return ScenarioOutcome(
        "Figure 4", "iq-optimized", _db_value(db),
        _kvs_int(server.store.get(KEY)), notes=notes,
    )


# ---------------------------------------------------------------------------
# Figure 6: dirty read with refresh when the writer aborts
# ---------------------------------------------------------------------------

def figure6_dirty_read_refresh(iq=False):
    """S1 refreshes the KVS before its RDBMS transaction aborts.

    Baseline (naive pre-commit refresh): S2 consumes the dirty value.  IQ:
    SaR only runs after a successful commit; on abort the leases are
    released and the old value remains.
    """
    db = _fresh_db(0)
    dirty_reads = []
    if not iq:
        store = ReadLeaseStore()
        store.set(KEY, b"0")

        def s1():
            connection = db.connect()
            connection.begin()
            connection.execute("UPDATE items SET val = 1 WHERE id = 1")
            yield "1.1-1.2: RDBMS update"
            store.set(KEY, b"1")  # naive: refresh before commit
            yield "1.3-1.4: KVS refresh (pre-commit)"
            connection.rollback()  # 1.5: the transaction aborts
            connection.close()
            yield "1.5: RDBMS abort"

        def s2():
            result = store.lease_get(KEY)
            dirty_reads.append(int(result.value))
            yield "2.1: KVS read"

        interleaver = Interleaver([Program("S1", s1), Program("S2", s2)])
        interleaver.run(["S1", "S1", "S2", "S1"], finish_remaining=False)
        return ScenarioOutcome(
            "Figure 6", "baseline-refresh", _db_value(db),
            _kvs_int(store.get(KEY)),
            notes="S2 observed dirty value {}".format(dirty_reads),
        )

    clock = LogicalClock()
    server = IQServer(clock=clock)
    server.store.set(KEY, b"0")

    def s1_iq():
        tid = server.gen_id()
        old = server.qaread(KEY, tid).value
        yield "1.1: QaRead"
        connection = db.connect()
        connection.begin()
        connection.execute("UPDATE items SET val = 1 WHERE id = 1")
        yield "1.2: RDBMS update"
        new_value = str(int(old) + 1).encode()
        assert new_value == b"1"
        yield "1.3: compute new value (in client memory)"
        connection.rollback()  # the transaction aborts before commit
        connection.close()
        server.abort(tid)  # Abort(TID): release Q leases, keep old value
        yield "1.5: abort -> leases released, no SaR"

    def s2_iq():
        result = server.iq_get(KEY)
        dirty_reads.append(int(result.value))
        yield "2.1: KVS read"

    interleaver = Interleaver([Program("S1", s1_iq), Program("S2", s2_iq)])
    interleaver.run(["S1", "S1", "S1", "S2", "S1"], finish_remaining=False)
    return ScenarioOutcome(
        "Figure 6", "iq-refresh", _db_value(db),
        _kvs_int(server.store.get(KEY)),
        notes="S2 observed committed value {}".format(dirty_reads),
    )


# ---------------------------------------------------------------------------
# Figure 7: a read session overwrites a writer's delta with a stale value
# ---------------------------------------------------------------------------

def figure7_stale_overwrite_delta(iq=False):
    """S1 appends 'd'; S2 repopulates from a pre-commit snapshot."""
    db = _fresh_db("x", column="body", as_text=True)
    if not iq:
        store = ReadLeaseStore()

        def s2():
            result = store.lease_get(KEY)
            assert result.has_lease
            yield "2.1: KVS miss, read lease"
            connection = db.connect()
            stale = connection.query_scalar(
                "SELECT body FROM items WHERE id = 1"
            )
            connection.close()
            yield "2.2: RDBMS query (sees pre-S1 value)"
            store.lease_set(KEY, stale.encode(), result.token)
            yield "2.3: KVS set (stale)"

        def s1():
            connection = db.connect()
            connection.begin()
            connection.execute(
                "UPDATE items SET body = body + 'd' WHERE id = 1"
            )
            yield "1.1: RDBMS append"
            store.append(KEY, b"d")  # missing key: NOT_STORED, delta lost
            yield "1.2: KVS append (delta lost on miss)"
            connection.commit()
            connection.close()
            yield "1.3: commit"

        interleaver = Interleaver([Program("S1", s1), Program("S2", s2)])
        interleaver.run(
            ["S2", "S2", "S1", "S1", "S1", "S2"], finish_remaining=False
        )
        hit = store.get(KEY)
        return ScenarioOutcome(
            "Figure 7", "baseline-delta", _db_value(db, "body"),
            hit[0].decode() if hit else None,
            notes="S2's stale snapshot overwrote the key after S1's delta",
        )

    clock = LogicalClock()
    server = IQServer(clock=clock)
    installed = []

    def s2_iq():
        result = server.iq_get(KEY)
        assert result.has_lease
        token = result.token
        yield "2.1: KVS miss, I lease"
        connection = db.connect()
        stale = connection.query_scalar("SELECT body FROM items WHERE id = 1")
        connection.close()
        yield "2.2: RDBMS query"
        installed.append(server.iq_set(KEY, stale.encode(), token))
        yield "2.3: IQset (ignored: I lease voided by S1's Q)"

    def s1_iq():
        tid = server.gen_id()
        connection = db.connect()
        connection.begin()
        connection.execute("UPDATE items SET body = body + 'd' WHERE id = 1")
        yield "1.1: RDBMS append"
        server.iq_delta(tid, KEY, "append", b"d")  # voids S2's I lease
        yield "1.2: IQ-delta"
        connection.commit()
        connection.close()
        yield "1.3: commit"
        server.commit(tid)
        yield "1.4: Commit(TID)"

    interleaver = Interleaver([Program("S1", s1_iq), Program("S2", s2_iq)])
    interleaver.run(
        ["S2", "S2", "S1", "S1", "S1", "S1", "S2"], finish_remaining=False
    )
    hit = server.store.get(KEY)
    return ScenarioOutcome(
        "Figure 7", "iq-delta", _db_value(db, "body"),
        hit[0].decode() if hit else None,
        notes="S2's IQset ignored={}; next reader recomputes".format(
            installed == [False]
        ),
    )


# ---------------------------------------------------------------------------
# Figure 8: the delta is reflected twice
# ---------------------------------------------------------------------------

def figure8_double_delta(iq=False):
    """S2 repopulates *after* S1's commit; S1's late append doubles."""
    db = _fresh_db("x", column="body", as_text=True)
    if not iq:
        store = ReadLeaseStore()

        def s1():
            connection = db.connect()
            connection.begin()
            connection.execute(
                "UPDATE items SET body = body + 'd' WHERE id = 1"
            )
            yield "1.1: RDBMS append"
            connection.commit()
            connection.close()
            yield "1.2: commit"
            store.append(KEY, b"d")
            yield "1.3: KVS append (applies on S2's fresh value)"

        def s2():
            result = store.lease_get(KEY)
            assert result.has_lease
            yield "2.1: KVS miss, read lease"
            connection = db.connect()
            fresh = connection.query_scalar(
                "SELECT body FROM items WHERE id = 1"
            )
            connection.close()
            yield "2.2: RDBMS query (sees S1's committed append)"
            store.lease_set(KEY, fresh.encode(), result.token)
            yield "2.3: KVS set"

        interleaver = Interleaver([Program("S1", s1), Program("S2", s2)])
        interleaver.run(
            ["S1", "S1", "S2", "S2", "S2", "S1"], finish_remaining=False
        )
        hit = store.get(KEY)
        return ScenarioOutcome(
            "Figure 8", "baseline-delta", _db_value(db, "body"),
            hit[0].decode() if hit else None,
            notes="append applied on top of a value that already had it",
        )

    clock = LogicalClock()
    server = IQServer(clock=clock)
    backoffs = []

    def s1_iq():
        tid = server.gen_id()
        connection = db.connect()
        connection.begin()
        connection.execute("UPDATE items SET body = body + 'd' WHERE id = 1")
        yield "1.1: RDBMS append"
        server.iq_delta(tid, KEY, "append", b"d")
        yield "1.2: IQ-delta (Q lease held)"
        connection.commit()
        connection.close()
        yield "1.3: commit"
        server.commit(tid)
        yield "1.4: Commit(TID) releases Q"

    def s2_iq():
        while True:
            result = server.iq_get(KEY)
            if result.is_hit:
                return result.value
            if result.backoff:
                backoffs.append(1)
                yield "2.1: miss, back off (Q pending)"
                continue
            yield "2.1: miss, I lease"
            connection = db.connect()
            fresh = connection.query_scalar(
                "SELECT body FROM items WHERE id = 1"
            )
            connection.close()
            yield "2.2: RDBMS query"
            server.iq_set(KEY, fresh.encode(), result.token)
            yield "2.3: IQset"
            return fresh

    interleaver = Interleaver([Program("S1", s1_iq), Program("S2", s2_iq)])
    interleaver.run(["S1", "S1", "S2", "S1", "S1", "S2", "S2", "S2"])
    hit = server.store.get(KEY)
    return ScenarioOutcome(
        "Figure 8", "iq-delta", _db_value(db, "body"),
        hit[0].decode() if hit else None,
        notes="S2 backed off {} time(s) until S1 committed".format(
            len(backoffs)
        ),
    )


def run_all_figures():
    """Run every figure scenario; returns a list of ScenarioOutcomes."""
    outcomes = [
        figure2_cas_insufficient(iq=False),
        figure2_cas_insufficient(iq=True),
        figure3_snapshot_invalidate(iq=False),
        figure3_snapshot_invalidate(iq=True),
        figure4_rearrangement_window(),
        figure6_dirty_read_refresh(iq=False),
        figure6_dirty_read_refresh(iq=True),
        figure7_stale_overwrite_delta(iq=False),
        figure7_stale_overwrite_delta(iq=True),
        figure8_double_delta(iq=False),
        figure8_double_delta(iq=True),
    ]
    return outcomes
