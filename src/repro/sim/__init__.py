"""Deterministic replay of the paper's race-condition interleavings.

:mod:`repro.sim.scheduler` runs session *programs* (generators that yield
between operations) under an explicit interleaving script, so each race in
Figures 2, 3, 6, 7 and 8 is reproduced bit-for-bit rather than
probabilistically.  :mod:`repro.sim.scripts` contains one scripted
scenario per figure, each runnable with the unleased baseline (exhibiting
the race) and with the IQ framework (race prevented).
"""

from repro.sim.scheduler import (
    Interleaver,
    Program,
    ProgramCrash,
    ScheduleError,
)
from repro.sim.scripts import (
    ScenarioOutcome,
    figure2_cas_insufficient,
    figure3_snapshot_invalidate,
    figure4_rearrangement_window,
    figure6_dirty_read_refresh,
    figure7_stale_overwrite_delta,
    figure8_double_delta,
    run_all_figures,
)

__all__ = [
    "Interleaver",
    "Program",
    "ProgramCrash",
    "ScheduleError",
    "ScenarioOutcome",
    "figure2_cas_insufficient",
    "figure3_snapshot_invalidate",
    "figure4_rearrangement_window",
    "figure6_dirty_read_refresh",
    "figure7_stale_overwrite_delta",
    "figure8_double_delta",
    "run_all_figures",
]
