"""Step-by-step interleaving of concurrent session programs.

A *program* is a generator function: it performs real operations against
the (shared) RDBMS and KVS and ``yield``s a step label after each one.
The :class:`Interleaver` advances programs in the exact order given by a
schedule -- a sequence of program names -- turning a racy concurrent
execution into a deterministic, replayable one.

This substrate reproduces the figure scenarios of the paper and also
powers exhaustive tests that enumerate *every* interleaving of two short
sessions to verify the IQ framework admits no stale outcome.
"""

from repro.errors import ReproError


class ScheduleError(ReproError):
    """The schedule referenced a finished or unknown program."""


class ProgramCrash(ScheduleError):
    """A program raised mid-step while being driven by a schedule.

    The bare exception is useless to a shrinker or fuzzer -- by the time
    it propagates, the interleaving that provoked it is gone.  This
    wrapper carries the program name, the label of the last completed
    step, and the schedule prefix executed so far, so the failure is
    replayable: re-running ``schedule_prefix`` and advancing ``program``
    once more reproduces it deterministically.
    """

    def __init__(self, program, step_label, schedule_prefix, original):
        self.program = program
        self.step_label = step_label
        self.schedule_prefix = tuple(schedule_prefix)
        self.original = original
        super().__init__(
            "program {!r} crashed after step {!r} under schedule prefix "
            "{!r}: {}: {}".format(
                program, step_label, list(self.schedule_prefix),
                type(original).__name__, original,
            )
        )


class Program:
    """A named session program."""

    def __init__(self, name, generator_fn):
        self.name = name
        self.generator_fn = generator_fn

    def __repr__(self):
        return "Program({!r})".format(self.name)


class ProgramRun:
    """Execution state of one program inside an interleaving."""

    def __init__(self, program):
        self.program = program
        self.generator = program.generator_fn()
        self.finished = False
        self.result = None
        self.error = None
        self.steps = []

    def advance(self):
        """Run the program up to its next yield (or completion).

        A mid-step exception is recorded in :attr:`error` (the program
        counts as finished -- its generator is dead) before propagating,
        so drivers can wrap it with schedule context.
        """
        if self.finished:
            raise ScheduleError(
                "program {!r} already finished".format(self.program.name)
            )
        try:
            label = next(self.generator)
            self.steps.append(label)
            return label
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            return None
        except Exception as exc:
            self.finished = True
            self.error = exc
            raise

    @property
    def last_label(self):
        """Label of the most recently completed step, or ``None``."""
        return self.steps[-1] if self.steps else None

    def run_to_completion(self):
        """Drain the remaining steps of this program."""
        while not self.finished:
            self.advance()


class Interleaver:
    """Drives a set of programs through an explicit interleaving."""

    def __init__(self, programs):
        self._runs = {}
        for program in programs:
            if program.name in self._runs:
                raise ScheduleError(
                    "duplicate program name {!r}".format(program.name)
                )
            self._runs[program.name] = ProgramRun(program)

    def run(self, schedule, finish_remaining=True, strict=True):
        """Advance programs in ``schedule`` order, one step per entry.

        When ``finish_remaining`` is true, any program with steps left
        after the schedule is exhausted runs to completion (in the order
        the programs were supplied).  With ``strict=False``, schedule
        entries for already-finished programs are skipped instead of
        raising -- useful when enumerating interleavings of programs
        whose exact step counts vary (retry loops).  Returns
        ``{name: result}``.
        """
        executed = []
        for name in schedule:
            run = self._runs.get(name)
            if run is None:
                raise ScheduleError("unknown program {!r}".format(name))
            if run.finished and not strict:
                continue
            self._advance(run, executed)
            executed.append(name)
        if finish_remaining:
            # Drain stragglers fairly (round-robin): a program spinning on
            # a lease held by another must let the holder make progress.
            while any(not run.finished for run in self._runs.values()):
                for run in self._runs.values():
                    if not run.finished:
                        self._advance(run, executed)
                        executed.append(run.program.name)
        return {name: run.result for name, run in self._runs.items()}

    def _advance(self, run, executed):
        """Advance ``run``; wrap program exceptions with schedule context."""
        try:
            run.advance()
        except ScheduleError:
            raise
        except Exception as exc:
            raise ProgramCrash(
                run.program.name, run.last_label, executed, exc
            ) from exc

    def steps_of(self, name):
        return list(self._runs[name].steps)

    def is_finished(self, name):
        return self._runs[name].finished


def all_interleavings(lengths):
    """Enumerate every interleaving of programs with the given step counts.

    ``lengths`` maps program name to its number of steps.  Yields
    schedules (tuples of names).  The count is the multinomial coefficient
    -- keep the programs short.
    """
    names = sorted(lengths)

    def _generate(remaining, prefix):
        if all(count == 0 for count in remaining.values()):
            yield tuple(prefix)
            return
        for name in names:
            if remaining[name] > 0:
                remaining[name] -= 1
                prefix.append(name)
                yield from _generate(remaining, prefix)
                prefix.pop()
                remaining[name] += 1

    yield from _generate(dict(lengths), [])
