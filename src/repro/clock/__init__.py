"""``repro.clock``: precise-clock self-invalidation, the fourth technique.

One import surface for the lease-free consistency technique after Misra
et al. ("Lightweight Inter-transaction Caching with Precise Clocks and
Dynamic Self-invalidation", see PAPERS.md).  The implementation lives
where each piece architecturally belongs -- the clock with the MVCC
engine, the interval store with the KVS, the client beside the other
techniques -- and this package re-exports the four public pieces:

* :class:`~repro.sql.clock.CommitClock` -- the database's commit
  sequence read as a logical clock, plus write-horizon promises and the
  conservative earliest-next-write interval sizing;
* :class:`~repro.kvs.store.ClockGetResult` -- the outcome of a ``cget``
  interval read (hit inside a valid interval / plain miss / lazy expiry);
* :class:`~repro.core.policies.ClockClient` -- the consistency client:
  reads promise + ``cget`` (+ ``cset`` on a miss), writes commit with
  ``clock_keys`` and never contact the cache;
* :class:`~repro.config.ClockConfig` -- interval sizing and
  dynamic-extension knobs.

The technique's wire commands (``cget``/``cset``) ride the normal
:mod:`repro.net` stack; every :class:`~repro.core.backend.LeaseBackend`
in the repository implements them, so ``ClockClient`` runs unchanged
against in-process, remote, resilient, and sharded cache tiers.
"""

from repro.config import ClockConfig
from repro.core.policies import ClockClient
from repro.kvs.store import ClockGetResult
from repro.sql.clock import CommitClock

__all__ = [
    "ClockClient",
    "ClockConfig",
    "ClockGetResult",
    "CommitClock",
]
