"""Tunable parameters shared across the reproduction.

The defaults mirror the paper's experimental setup where a concrete value is
given (lease lifetimes are only described as "finite"; memcached's historic
defaults are used where the paper is silent).
"""

from dataclasses import dataclass, field


@dataclass
class KVSConfig:
    """Configuration of the Twemcache-semantics store."""

    #: Maximum bytes of value payload the store may hold before LRU eviction.
    #: ``None`` disables eviction (useful for deterministic tests).
    memory_limit_bytes: int = None

    #: Maximum size of a single item's value (memcached default: 1 MiB).
    max_item_bytes: int = 1024 * 1024

    #: Maximum key length in characters (memcached: 250).
    max_key_length: int = 250

    #: Default item time-to-live in seconds; ``0`` means "never expires".
    default_ttl: float = 0.0

    #: Number of independently locked hash stripes the store's table is
    #: split over.  Concurrent operations on keys in different stripes
    #: never contend.  A store with ``memory_limit_bytes`` set always
    #: runs a single stripe: LRU eviction needs one global recency order
    #: to keep its guarantees exact.
    stripe_count: int = 16


@dataclass
class LeaseConfig:
    """Configuration of I/Q lease behaviour on the IQ-Server."""

    #: Lifetime of an Inhibit lease, seconds.  On expiry the lease is simply
    #: released (the reader's eventual IQset is ignored).
    i_lease_ttl: float = 10.0

    #: Lifetime of a Quarantine lease, seconds.  On expiry the IQ-Server
    #: *deletes the key-value pair* (Section 4.2 condition 3), guaranteeing
    #: safety when an application node fails while holding leases.
    q_lease_ttl: float = 10.0

    #: Section 3.3 / 4.2.2 optimization: keep the old version of a pair that
    #: is being invalidated/updated visible to other sessions until commit.
    serve_pending_versions: bool = True

    #: Number of independently locked hash stripes the lease table is
    #: split over (per-key I/Q state only ever touches its own stripe).
    stripe_count: int = 16


@dataclass
class BackoffConfig:
    """Exponential backoff used when a lease request is refused."""

    initial_delay: float = 0.001
    multiplier: float = 2.0
    max_delay: float = 0.1
    #: Add up to this fraction of the delay as jitter to avoid lockstep.
    jitter: float = 0.5
    #: Use *full jitter* (AWS style): each delay is drawn uniformly from
    #: ``[0, d]`` where ``d`` is the exponential envelope, instead of
    #: ``d`` plus a fractional jitter tail.  Full jitter de-synchronizes
    #: a thundering herd of retriers far more aggressively.
    full_jitter: bool = False
    #: Give up (raise :class:`~repro.errors.StarvationError`) after this
    #: many attempts; ``None`` retries forever.
    max_attempts: int = None


@dataclass
class NetConfig:
    """Resilient networked-client behaviour (:mod:`repro.net.resilient`)."""

    #: Seconds allowed for establishing a TCP connection.
    connect_timeout: float = 2.0

    #: Per-operation deadline, seconds.  A request/response exchange that
    #: takes longer raises :class:`~repro.errors.OperationTimeout`.
    operation_timeout: float = 5.0

    #: How many times an *idempotent* operation is retried on a fresh
    #: connection after a connection loss or timeout.  Non-idempotent
    #: operations (``qaread``, ``sar``, ``iq_delta``, storage commands)
    #: are never blindly retried.
    max_retries: int = 3

    #: Consecutive failures that trip the circuit breaker open.
    breaker_failure_threshold: int = 3

    #: Seconds the breaker stays open before letting one probe through.
    breaker_cooldown: float = 0.5

    #: Delete keys journaled during degraded operation when the circuit
    #: closes again (delete-on-recover reconciliation).
    reconcile_on_recover: bool = True

    #: Maximum live connections in the :class:`ResilientIQServer` pool.
    #: Callers beyond this many concurrent operations wait for a
    #: connection instead of dialing more sockets.
    pool_size: int = 4

    #: Per-connection cap, in bytes, on buffered pipelined data held by a
    #: wire server: unconsumed request bytes (a frame that never
    #: terminates, or an announced data block larger than this) and, on
    #: the event-loop transport, replies queued for a peer that never
    #: reads them.  A connection exceeding the cap gets an error reply
    #: and is closed (:class:`~repro.errors.PipelineOverflowError`).
    max_pipeline_buffer: int = 4 * 1024 * 1024


@dataclass
class ClockConfig:
    """Precise-clock self-invalidation (:mod:`repro.clock`).

    Intervals are in commit-clock *ticks* (commits), not seconds: the
    clock only moves when transactions commit, so a quiescent system
    serves cached intervals forever and a write-hot key ages the tier
    exactly as fast as it changes.
    """

    #: Promise length for a key with no observed write history.
    default_interval_ticks: int = 8

    #: Floor on any promise (a zero-length interval could never serve).
    min_interval_ticks: int = 1

    #: Cap on any promise.  A promise is a pledge the committer must
    #: honour -- a clock-keyed commit jumps the key's clock past its
    #: highest live horizon -- so over-promising a write-hot key makes
    #: its writes look artificially old to interval sizing; the cap
    #: bounds how far any single promise can reach.
    max_interval_ticks: int = 64

    #: Re-promise on every read and ask the server to extend a hit's
    #: expiry to the fresh horizon (Misra et al.'s dynamic
    #: self-invalidation); ``False`` serves only the fill-time interval.
    dynamic_extension: bool = True

    #: Client-side inter-transaction cache (Misra et al.'s headline
    #: trick): each client retains up to this many interval-stamped
    #: values and serves a read with **zero** round trips while the
    #: promised clock reading stays inside the local copy's interval.
    #: No cross-client purge exists or is needed -- a write jumps the
    #: key's clock, expiring every copy anywhere by arithmetic.  ``0``
    #: disables the local tier (every read consults the cache server).
    local_cache_entries: int = 1024


@dataclass
class BGConfig:
    """Parameters of the BG benchmark's social graph and SLA.

    The paper: "The social graph ... consists of M members, phi friends per
    member, and rho resources per member. ... 100 resources and 100 friends
    per member in all experiments"; SLA: 95% of actions faster than 100 ms.
    """

    members: int = 10_000
    friends_per_member: int = 100
    resources_per_member: int = 100
    #: Zipfian skew: "70% of requests referencing 20% of data
    #: (Zipfian distribution with theta = 0.27)".
    zipfian_theta: float = 0.27
    sla_percentile: float = 0.95
    sla_latency: float = 0.100
    seed: int = 42


@dataclass
class ReproConfig:
    """Aggregate configuration object."""

    kvs: KVSConfig = field(default_factory=KVSConfig)
    lease: LeaseConfig = field(default_factory=LeaseConfig)
    backoff: BackoffConfig = field(default_factory=BackoffConfig)
    net: NetConfig = field(default_factory=NetConfig)
    bg: BGConfig = field(default_factory=BGConfig)
    clock: ClockConfig = field(default_factory=ClockConfig)


DEFAULT_CONFIG = ReproConfig()
