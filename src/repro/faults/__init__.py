"""Fault-injection subsystem.

Deterministic, seedable fault injection (:mod:`repro.faults.injector`)
with hooks threaded through the wire path (``net/server.py``,
``net/protocol.py``, ``net/client.py``) and the KVS store, plus chaos
orchestration helpers (:mod:`repro.faults.chaos`) for kill-and-restart
servers and frozen lease holders.  See ``docs/FAULTS.md`` for the fault
model and the retry/degraded-mode rules that make the paper's
"fail slow, never stale" contract hold end-to-end over TCP.
"""

from repro.faults.injector import (
    ALL_SITES,
    SITE_CLIENT_AFTER_SEND,
    SITE_CLIENT_SEND,
    SITE_LEASE_VOID,
    SITE_NET_RECV,
    SITE_SERVER_REPLY,
    SITE_SERVER_REQUEST,
    SITE_STORE_DELETE,
    SITE_STORE_GET,
    SITE_STORE_SET,
    FaultAction,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultRule,
    corrupt_bytes,
)
from repro.faults.chaos import FrozenLeaseHolder, RestartableServer

__all__ = [
    "ALL_SITES",
    "SITE_CLIENT_AFTER_SEND",
    "SITE_CLIENT_SEND",
    "SITE_LEASE_VOID",
    "SITE_NET_RECV",
    "SITE_SERVER_REPLY",
    "SITE_SERVER_REQUEST",
    "SITE_STORE_DELETE",
    "SITE_STORE_GET",
    "SITE_STORE_SET",
    "FaultAction",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FrozenLeaseHolder",
    "RestartableServer",
    "corrupt_bytes",
]
