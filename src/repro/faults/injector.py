"""Deterministic fault injection for the networked cache path.

A :class:`FaultPlan` is an ordered list of :class:`FaultRule` objects.
Each rule names an injection *site* (a string constant below), the
:class:`FaultAction` to take there, and a trigger -- the nth matching
event, every-nth event, or a seeded coin flip.  A :class:`FaultInjector`
evaluates the plan: instrumented code calls :meth:`FaultInjector.decide`
at each site and interprets the returned rule (drop the connection,
truncate the reply, ...).  Generic actions (``DELAY``, ``FREEZE``) can be
executed directly with :meth:`FaultInjector.perform`.

Design constraints, verified by ``tests/faults``:

* **Deterministic** -- the same seed and plan over the same event
  sequence produce the same injected-fault history (the coin flips come
  from one seeded ``random.Random``; nth-triggers are pure counters).
* **Zero overhead when absent** -- every hook site guards with
  ``if injector is not None``; no injector object is ever created on the
  default path.

Sites (the ``site`` argument of :class:`FaultRule`):

======================  ====================================================
site                    where the hook fires
======================  ====================================================
``client.send``         before the request bytes leave ``RemoteIQServer``
``client.after_send``   after the request was sent, before the reply is
                        read (exercises ambiguous outcomes)
``net.recv``            inside :class:`~repro.net.protocol.LineReader`
                        whenever it refills from the socket
``server.request``      after the server parsed a command line, before
                        dispatch
``server.reply``        before the server writes a reply
``store.get``           :meth:`repro.kvs.store.CacheStore.get`
``store.set``           :meth:`repro.kvs.store.CacheStore.set`
``store.delete``        :meth:`repro.kvs.store.CacheStore.delete`
``server.lease.void``   :meth:`repro.core.leases.LeaseTable.request_q`,
                        at the point where a Q grant voids the key's I
                        lease; a ``SUPPRESS`` rule skips the void,
                        deliberately breaking the lease protocol so the
                        :mod:`repro.obs` auditor can be shown to catch it
======================  ====================================================
"""

import enum
import random
import threading

from repro.util.clock import SystemClock

SITE_CLIENT_SEND = "client.send"
SITE_CLIENT_AFTER_SEND = "client.after_send"
SITE_NET_RECV = "net.recv"
SITE_SERVER_REQUEST = "server.request"
SITE_SERVER_REPLY = "server.reply"
SITE_STORE_GET = "store.get"
SITE_STORE_SET = "store.set"
SITE_STORE_DELETE = "store.delete"
SITE_LEASE_VOID = "server.lease.void"

ALL_SITES = (
    SITE_CLIENT_SEND,
    SITE_CLIENT_AFTER_SEND,
    SITE_NET_RECV,
    SITE_SERVER_REQUEST,
    SITE_SERVER_REPLY,
    SITE_STORE_GET,
    SITE_STORE_SET,
    SITE_STORE_DELETE,
    SITE_LEASE_VOID,
)


class FaultAction(enum.Enum):
    """What an armed rule does at its site."""

    #: Sever the connection (client raises ConnectionLostError; the
    #: server handler closes the socket; LineReader raises
    #: ConnectionError as if the peer vanished).
    DROP_CONNECTION = "drop_connection"
    #: Sleep for ``rule.delay`` seconds before proceeding.
    DELAY = "delay"
    #: Write only the first half of the reply, then drop the connection
    #: (server.reply site only).
    TRUNCATE = "truncate"
    #: Flip bits in the frame before it is processed/sent.
    CORRUPT = "corrupt"
    #: Shut the TCP server down (server.request site only); the chaos
    #: controller decides when to restart it.
    KILL_SERVER = "kill_server"
    #: Sleep for ``rule.delay`` seconds -- semantically "the lease holder
    #: froze"; pair with a lease TTL shorter than the delay.
    FREEZE = "freeze"
    #: Skip the protected protocol step instead of performing it
    #: (``server.lease.void`` site only): the injected equivalent of a
    #: lease-manager bug, used to demonstrate the online auditor.
    SUPPRESS = "suppress"


class FaultRule:
    """One scheduled fault.

    Triggers (give exactly one; ``nth`` defaults to 1):

    * ``nth`` -- fire on the nth matching event at the site (1-based);
    * ``every`` -- fire on every multiple of ``every``;
    * ``probability`` -- fire on a seeded coin flip per matching event.

    ``count`` caps the number of firings (default 1 for ``nth``,
    unlimited otherwise).  ``match`` is an optional predicate over the
    hook's context dict (e.g. ``lambda ctx: ctx.get("command") == "sar"``)
    evaluated before the trigger counter advances, so a rule's event
    numbering only counts events it could apply to.
    """

    __slots__ = ("site", "action", "nth", "every", "probability", "count",
                 "delay", "match", "label")

    def __init__(self, site, action, nth=None, every=None, probability=None,
                 count=None, delay=0.0, match=None, label=None):
        given = sum(x is not None for x in (nth, every, probability))
        if given > 1:
            raise ValueError("give at most one of nth/every/probability")
        if given == 0:
            nth = 1
        self.site = site
        self.action = action
        self.nth = nth
        self.every = every
        self.probability = probability
        if count is None:
            count = 1 if nth is not None else None
        self.count = count
        self.delay = delay
        self.match = match
        self.label = label or "{}@{}".format(action.value, site)

    def __repr__(self):
        return "FaultRule({})".format(self.label)


class FaultPlan:
    """An ordered collection of rules; first armed rule at a site wins."""

    def __init__(self, rules=()):
        self.rules = list(rules)

    def add(self, rule):
        self.rules.append(rule)
        return self

    def __len__(self):
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    # -- convenience builders ------------------------------------------------

    @classmethod
    def drop_before_send(cls, nth=1, **kw):
        return cls([FaultRule(SITE_CLIENT_SEND, FaultAction.DROP_CONNECTION,
                              nth=nth, **kw)])

    @classmethod
    def drop_after_send(cls, nth=1, **kw):
        return cls([FaultRule(SITE_CLIENT_AFTER_SEND,
                              FaultAction.DROP_CONNECTION, nth=nth, **kw)])

    @classmethod
    def truncate_reply(cls, nth=1, **kw):
        return cls([FaultRule(SITE_SERVER_REPLY, FaultAction.TRUNCATE,
                              nth=nth, **kw)])

    @classmethod
    def corrupt_reply(cls, nth=1, **kw):
        return cls([FaultRule(SITE_SERVER_REPLY, FaultAction.CORRUPT,
                              nth=nth, **kw)])

    @classmethod
    def delay_reply(cls, delay, nth=1, **kw):
        return cls([FaultRule(SITE_SERVER_REPLY, FaultAction.DELAY,
                              nth=nth, delay=delay, **kw)])

    @classmethod
    def kill_server(cls, nth=1, **kw):
        return cls([FaultRule(SITE_SERVER_REQUEST, FaultAction.KILL_SERVER,
                              nth=nth, **kw)])

    @classmethod
    def suppress_i_void(cls, nth=1, **kw):
        """Skip the I-lease void on the nth Q grant (auditor demo)."""
        return cls([FaultRule(SITE_LEASE_VOID, FaultAction.SUPPRESS,
                              nth=nth, **kw)])


class FaultEvent:
    """One injected fault, recorded in :attr:`FaultInjector.history`."""

    __slots__ = ("seq", "site", "action", "rule", "context")

    def __init__(self, seq, site, action, rule, context):
        self.seq = seq
        self.site = site
        self.action = action
        self.rule = rule
        self.context = context

    def signature(self):
        """Hashable summary used by the determinism tests."""
        return (self.seq, self.site, self.action.value, self.rule.label,
                self.context.get("command"))

    def __repr__(self):
        return "FaultEvent(#{} {} {})".format(
            self.seq, self.site, self.action.value
        )


class _RuleState:
    __slots__ = ("events", "fired")

    def __init__(self):
        self.events = 0
        self.fired = 0


class FaultInjector:
    """Evaluates a :class:`FaultPlan` deterministically.

    Thread-safe; determinism holds whenever the sequence of hook events
    is itself deterministic (single-connection tests, or per-site event
    streams that do not interleave).
    """

    def __init__(self, plan, seed=0, clock=None):
        self.plan = plan
        self.clock = clock or SystemClock()
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._states = {id(rule): _RuleState() for rule in plan}
        self._site_events = {}
        #: every fired fault, in firing order
        self.history = []

    # -- bookkeeping ---------------------------------------------------------

    def events_at(self, site):
        """How many hook events have been observed at ``site``."""
        with self._lock:
            return self._site_events.get(site, 0)

    def fired(self, site=None):
        """Number of faults fired (optionally restricted to one site)."""
        with self._lock:
            if site is None:
                return len(self.history)
            return sum(1 for event in self.history if event.site == site)

    def signatures(self):
        with self._lock:
            return [event.signature() for event in self.history]

    # -- decision ------------------------------------------------------------

    def decide(self, site, **context):
        """Return the armed :class:`FaultRule` for this event, or ``None``.

        Exactly one rule can fire per event (the first armed one in plan
        order); the site event counter advances regardless.
        """
        with self._lock:
            self._site_events[site] = self._site_events.get(site, 0) + 1
            chosen = None
            for rule in self.plan:
                if rule.site != site:
                    continue
                if rule.match is not None and not rule.match(context):
                    continue
                state = self._states[id(rule)]
                state.events += 1
                if chosen is not None:
                    continue
                if rule.count is not None and state.fired >= rule.count:
                    continue
                if not self._triggered(rule, state):
                    continue
                state.fired += 1
                chosen = rule
                self.history.append(FaultEvent(
                    len(self.history) + 1, site, rule.action, rule, context
                ))
            return chosen

    def _triggered(self, rule, state):
        if rule.nth is not None:
            return state.events == rule.nth
        if rule.every is not None:
            return state.events % rule.every == 0
        return self._rng.random() < rule.probability

    # -- execution helpers ---------------------------------------------------

    def sleep(self, rule):
        """Execute a DELAY/FREEZE rule's sleep on the injector's clock."""
        if rule.delay > 0:
            self.clock.sleep(rule.delay)

    def perform(self, site, **context):
        """Decide and execute purely-temporal actions (DELAY, FREEZE).

        Returns the rule for any non-temporal action so the caller can
        interpret it; used at sites (the KVS store) where only temporal
        faults make sense.
        """
        rule = self.decide(site, **context)
        if rule is not None and rule.action in (FaultAction.DELAY,
                                                FaultAction.FREEZE):
            self.sleep(rule)
            return None
        return rule


def corrupt_bytes(data, rng=None):
    """Flip the low bits of a few bytes of ``data`` (never empty input)."""
    if not data:
        return data
    rng = rng or random.Random(0)
    mutable = bytearray(data)
    for _ in range(min(3, len(mutable))):
        index = rng.randrange(len(mutable))
        mutable[index] ^= 0x01
    return bytes(mutable)
