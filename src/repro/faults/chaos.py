"""Chaos orchestration: kill-and-restart servers, frozen lease holders.

:class:`RestartableServer` owns a fixed TCP port and can kill and
re-start an IQ cache server on it mid-workload -- the wire-level analogue
of the paper's restart experiment.  A restart is *cold*: the replacement
gets a fresh :class:`~repro.core.iq_server.IQServer` (empty store, empty
lease table), which models a process restart and is always safe -- an
empty cache cannot serve stale data.  TID generation restarts at a new
epoch offset so in-flight sessions created against the dead server can
never collide with sessions minted by its successor.

:class:`FrozenLeaseHolder` acquires a Q lease and then goes silent,
standing in for an application node that froze mid-write-session; the
server's Q-lease TTL must expire it (Section 4.2 condition 3) for the
workload to make progress without staleness.
"""

import socket
import threading

from repro.errors import CacheUnavailableError
from repro.net.server import server_class


#: Gap between the TID ranges of successive server incarnations.
TID_EPOCH_STRIDE = 1_000_000


class RestartableServer:
    """An IQ TCP server that can be killed and restarted on one port.

    ``transport`` selects the serving stack each incarnation runs on
    (``"threaded"`` or ``"async"``); the chaos experiments run against
    both to prove the transport parity contract holds under failures,
    not just on the happy path.
    """

    def __init__(self, iq_server_factory, host="127.0.0.1",
                 fault_injector=None, transport="threaded"):
        #: builds a fresh IQServer for each incarnation; called with the
        #: incarnation's ``tid_start``
        self._factory = iq_server_factory
        self._host = host
        self._injector = fault_injector
        self._server_class = server_class(transport)
        self.transport = transport
        self._lock = threading.Lock()
        self._server = None
        self._thread = None
        self.epoch = 0
        #: how many times the server has been killed
        self.kills = 0
        self._port = self._reserve_port()

    def _reserve_port(self):
        """Pick a free port once so every incarnation reuses it."""
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((self._host, 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    @property
    def port(self):
        return self._port

    @property
    def iq_server(self):
        with self._lock:
            return self._server.iq_server if self._server else None

    @property
    def alive(self):
        with self._lock:
            return self._server is not None

    def start(self):
        """Start (or restart) an incarnation; returns its IQServer."""
        with self._lock:
            if self._server is not None:
                raise RuntimeError("server already running")
            self.epoch += 1
            iq = self._factory(tid_start=self.epoch * TID_EPOCH_STRIDE + 1)
            server = self._server_class(
                (self._host, self._port), iq,
                fault_injector=self._injector,
            )
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            self._server = server
            self._thread = thread
            return iq

    def kill(self):
        """Shut the current incarnation down abruptly."""
        with self._lock:
            server, thread = self._server, self._thread
            self._server = self._thread = None
        if server is None:
            return
        self.kills += 1
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def restart(self):
        """Kill (if alive) and bring up a cold replacement."""
        self.kill()
        return self.start()

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.kill()
        return False


class FrozenLeaseHolder:
    """A write session that acquires Q leases and then freezes forever.

    ``freeze(keys)`` grabs an exclusive Q lease (via ``qaread``) on each
    key and never completes the session.  Other sessions must abort
    against those keys until the server's Q TTL expires and deletes them,
    after which the system recovers with zero staleness.
    """

    def __init__(self, server):
        #: anything with the IQ command surface (IQServer / RemoteIQServer)
        self.server = server
        self.tid = None
        self.frozen_keys = []

    def freeze(self, keys):
        self.tid = self.server.gen_id()
        for key in keys:
            try:
                self.server.qaread(key, self.tid)
            except CacheUnavailableError:
                break
            self.frozen_keys.append(key)
        return self.frozen_keys

    def zombie_commit(self):
        """The frozen node wakes up after its leases expired and commits.

        The server must treat this as a no-op for every expired lease;
        returns without raising even if the connection is gone.
        """
        if self.tid is None:
            return
        try:
            self.server.commit(self.tid)
        except CacheUnavailableError:
            pass
