"""Transport-independent command dispatch for the wire servers.

Both wire transports -- the thread-per-connection
:class:`~repro.net.server.IQTCPServer` and the event-loop
:class:`~repro.net.async_server.AsyncIQServer` -- serve the same
protocol against the same :class:`~repro.core.iq_server.IQServer`.  The
*transport parity contract* (docs/ARCHITECTURE.md §12) demands that the
two produce byte-identical replies for any request stream; the only way
to keep that true as commands are added is for exactly one dispatcher
to exist.  This module is that dispatcher: a pure function from
``(iq, command, args, data)`` to reply bytes, plus the error-to-reply
mapping both transports share.

Nothing here touches a socket; framing (reading the command line,
consuming the announced data block) stays in each transport, because
that is where the transports legitimately differ.
"""

from repro.errors import (
    BadValueError,
    KeyFormatError,
    ProtocolError,
    QuarantinedError,
    ReproError,
    ValueTooLargeError,
)
from repro.kvs.store import StoreResult
from repro.net.protocol import CRLF, error_response, value_response

STORE_REPLIES = {
    StoreResult.STORED: b"STORED",
    StoreResult.NOT_STORED: b"NOT_STORED",
    StoreResult.EXISTS: b"EXISTS",
    StoreResult.NOT_FOUND: b"NOT_FOUND",
}

QAREG_WORDS = {
    "granted": "GRANTED",
    "abort": "ABORT",
    "unavailable": "UNAVAIL",
}


def exception_reply(exc):
    """Map a dispatch-time exception to its reply bytes, or re-raise.

    The classification mirrors memcached: protocol violations and
    malformed arguments keep the connection usable (any data block was
    consumed before dispatch), server-side errors are reported as
    ``SERVER_ERROR``.  Exceptions outside the taxonomy propagate.
    """
    if isinstance(exc, ProtocolError):
        return error_response(str(exc))
    if isinstance(exc, (BadValueError, KeyFormatError, ValueTooLargeError)):
        return "CLIENT_ERROR {}".format(exc).encode()
    if isinstance(exc, ReproError):
        return error_response(str(exc))
    if isinstance(exc, (ValueError, IndexError)):
        # Malformed arguments (non-integer token/tid, missing fields).
        return "CLIENT_ERROR bad command arguments: {}".format(exc).encode()
    raise exc


def dispatch(iq, command, args, data):
    """Execute one parsed command against ``iq``; return the reply bytes.

    ``args`` must already have its trailing ``@t``/``@s`` tokens intact
    except the trace token (stripped by the caller, which owns the trace
    context).  Raises the dispatch-time exceptions listed in
    :func:`exception_reply`; the transports funnel them through it so
    both reply identically.
    """
    store = iq.store
    if command == "get" or command == "gets":
        return _retrieve(store, args, with_cas=command == "gets")
    if command in ("set", "add", "replace"):
        key, flags, exptime = args[0], int(args[1]), float(args[2])
        ttl = exptime if exptime > 0 else None
        result = getattr(store, command)(key, data, int(flags), ttl)
        return STORE_REPLIES[result]
    if command in ("append", "prepend"):
        result = getattr(store, command)(args[0], data)
        return STORE_REPLIES[result]
    if command == "cas":
        key, flags, exptime, _size, cas_id = args[:5]
        ttl = float(exptime) if float(exptime) > 0 else None
        result = store.cas(key, data, int(cas_id), int(flags), ttl)
        return STORE_REPLIES[result]
    if command == "delete":
        return b"DELETED" if store.delete(args[0]) else b"NOT_FOUND"
    if command in ("incr", "decr"):
        new = getattr(store, command)(args[0], int(args[1]))
        if new is None:
            return b"NOT_FOUND"
        return str(new).encode()
    if command == "touch":
        return b"TOUCHED" if store.touch(args[0], float(args[1])) else b"NOT_FOUND"
    if command == "flush_all":
        iq.flush_all()
        return b"OK"
    if command == "stats":
        lines = [
            "STAT {} {}".format(name, value).encode()
            for name, value in sorted(iq.stats.snapshot().items())
        ]
        return CRLF.join(lines + [b"END"])
    if command == "version":
        return b"VERSION repro-iq-twemcached 1.0"

    # -- IQ extensions ---------------------------------------------------
    if command == "genid":
        return "ID {}".format(iq.gen_id()).encode()
    if command == "iqget":
        session = int(args[1]) if len(args) > 1 else None
        result = iq.iq_get(args[0], session=session)
        if result.is_hit:
            return value_response(args[0], result.value)[:-2]
        if result.has_lease:
            return "LEASE {}".format(result.token).encode()
        return b"BACKOFF" if result.backoff else b"MISS"
    if command == "iqset":
        stored = iq.iq_set(args[0], data, int(args[1]))
        return b"STORED" if stored else b"IGNORED"
    if command == "releasei":
        iq.release_i(args[0], int(args[1]))
        return b"OK"
    if command == "qaread":
        try:
            result = iq.qaread(args[0], int(args[1]))
        except QuarantinedError:
            return b"ABORT"
        if result.value is None:
            return b"MISS"
        return value_response(args[0], result.value)[:-2]
    if command == "sar":
        stored = iq.sar(args[0], data, int(args[1]))
        if data is None:
            return b"RELEASED"
        return b"STORED" if stored else b"IGNORED"
    if command == "qar":
        try:
            iq.qar(int(args[0]), args[1])
        except QuarantinedError:
            return b"ABORT"
        return b"GRANTED"
    if command == "dar":
        iq.dar(int(args[0]))
        return b"OK"
    if command == "iqdelta":
        try:
            iq.iq_delta(int(args[0]), args[1], args[2], data)
        except QuarantinedError:
            return b"ABORT"
        return b"GRANTED"
    if command == "commit":
        iq.commit(int(args[0]))
        return b"OK"
    if command == "abort":
        iq.abort(int(args[0]))
        return b"OK"

    # -- precise-clock extensions (repro.clock) --------------------------
    if command == "cget":
        extend = int(args[2]) if len(args) > 2 else None
        result = iq.cget(args[0], int(args[1]), extend=extend)
        if result.is_hit:
            header = "CVALUE {} {} {} {} {}".format(
                args[0],
                result.flags,
                result.valid_from,
                result.valid_until,
                len(result.value),
            )
            return header.encode() + CRLF + result.value + CRLF + b"END"
        return b"EXPIRED" if result.expired else b"MISS"
    if command == "cset":
        stored = iq.cset(args[0], data, int(args[1]), int(args[2]))
        return b"STORED" if stored else b"IGNORED"

    # -- multi-key extensions --------------------------------------------
    if command == "iqmget":
        from repro.net.protocol import split_session_token

        keys, session = split_session_token(args)
        chunks = []
        for key, result in iq.iq_mget(keys, session=session).items():
            if result.is_hit:
                header = "VALUE {} 0 {}".format(key, len(result.value))
                chunks.append(header.encode() + CRLF + result.value)
            elif result.has_lease:
                chunks.append(
                    "LEASE {} {}".format(key, result.token).encode()
                )
            elif result.backoff:
                chunks.append("BACKOFF {}".format(key).encode())
            else:
                chunks.append("MISS {}".format(key).encode())
        chunks.append(b"END")
        return CRLF.join(chunks)
    if command == "qareg":
        results = iq.qar_many(int(args[0]), args[1:])
        chunks = [
            "{} {}".format(QAREG_WORDS[status], key).encode()
            for key, status in results.items()
        ]
        chunks.append(b"END")
        return CRLF.join(chunks)
    if command == "mdelete":
        hits = sum(1 for key in args if store.delete(key))
        return "DELETED {}".format(hits).encode()
    if command == "keysnap":
        chunks = [
            "KEY {}".format(key).encode() for key in sorted(store.keys())
        ]
        chunks.append(b"END")
        return CRLF.join(chunks)
    raise ProtocolError("unknown command {!r}".format(command))


def _retrieve(store, keys, with_cas):
    chunks = []
    for key in keys:
        if with_cas:
            hit = store.gets(key)
            if hit is not None:
                value, flags, cas_id = hit
                header = "VALUE {} {} {} {}".format(
                    key, flags, len(value), cas_id
                )
                chunks.append(header.encode() + CRLF + value)
        else:
            hit = store.get(key)
            if hit is not None:
                value, flags = hit
                header = "VALUE {} {} {}".format(key, flags, len(value))
                chunks.append(header.encode() + CRLF + value)
    chunks.append(b"END")
    return CRLF.join(chunks)


def bump_stat(iq, name, amount=1):
    """Increment a server-side counter if the stats object supports it.

    Both transports report serving-layer counters (``pipelined_commands``,
    the event loop's per-loop metrics) through the IQ server's stats
    registry so ``stats`` exposes them over the wire; shards wrapping a
    stats-less backend simply skip the count.
    """
    stats = getattr(iq, "stats", None)
    if stats is not None and callable(getattr(stats, "incr", None)):
        stats.incr(name, amount)
