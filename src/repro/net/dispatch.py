"""Transport-independent command dispatch for the wire servers.

Both wire transports -- the thread-per-connection
:class:`~repro.net.server.IQTCPServer` and the event-loop
:class:`~repro.net.async_server.AsyncIQServer` -- serve the same
protocol against the same :class:`~repro.core.iq_server.IQServer`.  The
*transport parity contract* (docs/ARCHITECTURE.md §12) demands that the
two produce byte-identical replies for any request stream; the only way
to keep that true as commands are added is for exactly one dispatcher
to exist.  This module is that dispatcher: a pure function from
``(iq, command, args, data)`` to reply bytes, plus the error-to-reply
mapping both transports share.

Dispatch is a precomputed table (:data:`_HANDLERS`) of per-command
functions rather than an if-chain: one dict probe replaces up to ~30
string comparisons for the commands at the chain's tail, and each
handler assembles its reply with ``bytes`` %-formatting (PEP 461) in a
single buffer instead of ``str.format().encode()`` -- same bytes on the
wire (the parity corpus pins this), fewer intermediate objects per
request.

Nothing here touches a socket; framing (reading the command line,
consuming the announced data block) stays in each transport, because
that is where the transports legitimately differ.
"""

from repro.errors import (
    BadValueError,
    KeyFormatError,
    ProtocolError,
    QuarantinedError,
    ReproError,
    ValueTooLargeError,
)
from repro.kvs.store import StoreResult
from repro.net.protocol import (
    CRLF,
    error_response,
    split_session_token,
    value_block,
    value_response,
)

STORE_REPLIES = {
    StoreResult.STORED: b"STORED",
    StoreResult.NOT_STORED: b"NOT_STORED",
    StoreResult.EXISTS: b"EXISTS",
    StoreResult.NOT_FOUND: b"NOT_FOUND",
}

QAREG_WORDS = {
    "granted": "GRANTED",
    "abort": "ABORT",
    "unavailable": "UNAVAIL",
}


def exception_reply(exc):
    """Map a dispatch-time exception to its reply bytes, or re-raise.

    The classification mirrors memcached: protocol violations and
    malformed arguments keep the connection usable (any data block was
    consumed before dispatch), server-side errors are reported as
    ``SERVER_ERROR``.  Exceptions outside the taxonomy propagate.
    """
    if isinstance(exc, ProtocolError):
        return error_response(str(exc))
    if isinstance(exc, (BadValueError, KeyFormatError, ValueTooLargeError)):
        return "CLIENT_ERROR {}".format(exc).encode()
    if isinstance(exc, ReproError):
        return error_response(str(exc))
    if isinstance(exc, (ValueError, IndexError)):
        # Malformed arguments (non-integer token/tid, missing fields).
        return "CLIENT_ERROR bad command arguments: {}".format(exc).encode()
    raise exc


# -- memcached base commands -------------------------------------------------

def _h_get(iq, args, data):
    return _retrieve(iq.store, args, with_cas=False)


def _h_gets(iq, args, data):
    return _retrieve(iq.store, args, with_cas=True)


def _store_handler(name):
    def handle(iq, args, data):
        key, flags, exptime = args[0], int(args[1]), float(args[2])
        ttl = exptime if exptime > 0 else None
        result = getattr(iq.store, name)(key, data, int(flags), ttl)
        return STORE_REPLIES[result]
    return handle


def _concat_handler(name):
    def handle(iq, args, data):
        return STORE_REPLIES[getattr(iq.store, name)(args[0], data)]
    return handle


def _h_cas(iq, args, data):
    key, flags, exptime, _size, cas_id = args[:5]
    ttl = float(exptime) if float(exptime) > 0 else None
    result = iq.store.cas(key, data, int(cas_id), int(flags), ttl)
    return STORE_REPLIES[result]


def _h_delete(iq, args, data):
    return b"DELETED" if iq.store.delete(args[0]) else b"NOT_FOUND"


def _delta_handler(name):
    def handle(iq, args, data):
        new = getattr(iq.store, name)(args[0], int(args[1]))
        if new is None:
            return b"NOT_FOUND"
        return b"%d" % new
    return handle


def _h_touch(iq, args, data):
    if iq.store.touch(args[0], float(args[1])):
        return b"TOUCHED"
    return b"NOT_FOUND"


def _h_flush_all(iq, args, data):
    iq.flush_all()
    return b"OK"


def _h_stats(iq, args, data):
    lines = [
        "STAT {} {}".format(name, value).encode()
        for name, value in sorted(iq.stats.snapshot().items())
    ]
    return CRLF.join(lines + [b"END"])


def _h_version(iq, args, data):
    return b"VERSION repro-iq-twemcached 1.0"


# -- IQ extensions -----------------------------------------------------------

def _h_genid(iq, args, data):
    return b"ID %d" % iq.gen_id()


def _h_iqget(iq, args, data):
    session = int(args[1]) if len(args) > 1 else None
    result = iq.iq_get(args[0], session=session)
    if result.is_hit:
        return value_block(args[0], result.value)
    if result.has_lease:
        return b"LEASE %d" % result.token
    return b"BACKOFF" if result.backoff else b"MISS"


def _h_iqset(iq, args, data):
    return b"STORED" if iq.iq_set(args[0], data, int(args[1])) else b"IGNORED"


def _h_releasei(iq, args, data):
    iq.release_i(args[0], int(args[1]))
    return b"OK"


def _h_qaread(iq, args, data):
    try:
        result = iq.qaread(args[0], int(args[1]))
    except QuarantinedError:
        return b"ABORT"
    if result.value is None:
        return b"MISS"
    return value_block(args[0], result.value)


def _h_sar(iq, args, data):
    stored = iq.sar(args[0], data, int(args[1]))
    if data is None:
        return b"RELEASED"
    return b"STORED" if stored else b"IGNORED"


def _h_qar(iq, args, data):
    try:
        iq.qar(int(args[0]), args[1])
    except QuarantinedError:
        return b"ABORT"
    return b"GRANTED"


def _h_dar(iq, args, data):
    iq.dar(int(args[0]))
    return b"OK"


def _h_iqdelta(iq, args, data):
    try:
        iq.iq_delta(int(args[0]), args[1], args[2], data)
    except QuarantinedError:
        return b"ABORT"
    return b"GRANTED"


def _h_commit(iq, args, data):
    iq.commit(int(args[0]))
    return b"OK"


def _h_abort(iq, args, data):
    iq.abort(int(args[0]))
    return b"OK"


# -- precise-clock extensions (repro.clock) ----------------------------------

def _h_cget(iq, args, data):
    extend = int(args[2]) if len(args) > 2 else None
    result = iq.cget(args[0], int(args[1]), extend=extend)
    if result.is_hit:
        return b"CVALUE %s %d %d %d %d\r\n%s\r\nEND" % (
            args[0].encode(),
            result.flags,
            result.valid_from,
            result.valid_until,
            len(result.value),
            result.value,
        )
    return b"EXPIRED" if result.expired else b"MISS"


def _h_cset(iq, args, data):
    stored = iq.cset(args[0], data, int(args[1]), int(args[2]))
    return b"STORED" if stored else b"IGNORED"


# -- multi-key extensions ----------------------------------------------------

def _h_iqmget(iq, args, data):
    keys, session = split_session_token(args)
    chunks = []
    for key, result in iq.iq_mget(keys, session=session).items():
        if result.is_hit:
            chunks.append(b"VALUE %s 0 %d\r\n%s" % (
                key.encode(), len(result.value), result.value))
        elif result.has_lease:
            chunks.append(b"LEASE %s %d" % (key.encode(), result.token))
        elif result.backoff:
            chunks.append(b"BACKOFF %s" % key.encode())
        else:
            chunks.append(b"MISS %s" % key.encode())
    chunks.append(b"END")
    return CRLF.join(chunks)


def _h_qareg(iq, args, data):
    results = iq.qar_many(int(args[0]), args[1:])
    chunks = [
        "{} {}".format(QAREG_WORDS[status], key).encode()
        for key, status in results.items()
    ]
    chunks.append(b"END")
    return CRLF.join(chunks)


def _h_mdelete(iq, args, data):
    hits = sum(1 for key in args if iq.store.delete(key))
    return b"DELETED %d" % hits


def _h_keysnap(iq, args, data):
    chunks = [
        "KEY {}".format(key).encode() for key in sorted(iq.store.keys())
    ]
    chunks.append(b"END")
    return CRLF.join(chunks)


#: Command name -> handler ``(iq, args, data) -> reply bytes``.  Built
#: once at import; :func:`dispatch` is a single dict probe.
_HANDLERS = {
    "get": _h_get,
    "gets": _h_gets,
    "set": _store_handler("set"),
    "add": _store_handler("add"),
    "replace": _store_handler("replace"),
    "append": _concat_handler("append"),
    "prepend": _concat_handler("prepend"),
    "cas": _h_cas,
    "delete": _h_delete,
    "incr": _delta_handler("incr"),
    "decr": _delta_handler("decr"),
    "touch": _h_touch,
    "flush_all": _h_flush_all,
    "stats": _h_stats,
    "version": _h_version,
    "genid": _h_genid,
    "iqget": _h_iqget,
    "iqset": _h_iqset,
    "releasei": _h_releasei,
    "qaread": _h_qaread,
    "sar": _h_sar,
    "qar": _h_qar,
    "dar": _h_dar,
    "iqdelta": _h_iqdelta,
    "commit": _h_commit,
    "abort": _h_abort,
    "cget": _h_cget,
    "cset": _h_cset,
    "iqmget": _h_iqmget,
    "qareg": _h_qareg,
    "mdelete": _h_mdelete,
    "keysnap": _h_keysnap,
}


def dispatch(iq, command, args, data):
    """Execute one parsed command against ``iq``; return the reply bytes.

    ``args`` must already have its trailing ``@t``/``@s`` tokens intact
    except the trace token (stripped by the caller, which owns the trace
    context).  Raises the dispatch-time exceptions listed in
    :func:`exception_reply`; the transports funnel them through it so
    both reply identically.
    """
    handler = _HANDLERS.get(command)
    if handler is None:
        raise ProtocolError("unknown command {!r}".format(command))
    return handler(iq, args, data)


def _retrieve(store, keys, with_cas):
    chunks = []
    if with_cas:
        for key in keys:
            hit = store.gets(key)
            if hit is not None:
                value, flags, cas_id = hit
                chunks.append(b"VALUE %s %d %d %d\r\n%s" % (
                    key.encode(), flags, len(value), cas_id, value))
    else:
        for key in keys:
            hit = store.get(key)
            if hit is not None:
                value, flags = hit
                chunks.append(b"VALUE %s %d %d\r\n%s" % (
                    key.encode(), flags, len(value), value))
    chunks.append(b"END")
    return CRLF.join(chunks)


def bump_stat(iq, name, amount=1):
    """Increment a server-side counter if the stats object supports it.

    Both transports report serving-layer counters (``pipelined_commands``,
    the event loop's per-loop metrics) through the IQ server's stats
    registry so ``stats`` exposes them over the wire; shards wrapping a
    stats-less backend simply skip the count.

    This does a ``getattr`` probe per call; hot loops should resolve a
    counter handle once via :func:`stat_handle` instead.
    """
    stats = getattr(iq, "stats", None)
    if stats is not None and callable(getattr(stats, "incr", None)):
        stats.incr(name, amount)


def stat_handle(iq, name):
    """Resolve ``name`` to a bound ``inc(amount=1)`` callable, or ``None``.

    The returned handle skips the per-call reflection *and* the stats
    view's per-call dict lookup -- it is the underlying registry
    counter's ``inc`` method, safe to call from any thread.  ``None``
    means the backend has no such counter (same condition under which
    :func:`bump_stat` silently skips).
    """
    stats = getattr(iq, "stats", None)
    if stats is None:
        return None
    counter = getattr(stats, "counter", None)
    if callable(counter):
        try:
            return counter(name).inc
        except KeyError:
            return None
    if callable(getattr(stats, "incr", None)):
        def inc(amount=1, _incr=stats.incr, _name=name):
            _incr(_name, amount)
        return inc
    return None
