"""Process-per-shard deployment: supervised worker processes + router.

A single Python process cannot scale the cache tier past one core -- the
GIL serializes every shard hosted in it, so an in-process
:class:`~repro.sharding.router.ShardedIQServer` buys key-space
partitioning but no CPU parallelism.  This module adds the deployment
tier the paper actually measures against (a *fleet* of IQ-Twemcached
processes):

* :class:`ShardProcess` -- one cache shard as a supervised OS process
  (:mod:`repro.net.shard_worker`), with bound-port handshake, graceful
  SIGTERM drain, hard kill, and restart on the same port;
* :class:`IQCluster` -- N shard processes behind one
  :class:`~repro.sharding.router.ShardedIQServer` whose per-shard
  backends are :class:`~repro.net.resilient.ResilientIQServer` clients,
  plus a monitor thread doing liveness polls and wire-level health
  checks, restarting crashed shards automatically.

Failure semantics are inherited, not invented: a dead shard's client
raises the :class:`~repro.errors.CacheUnavailableError` taxonomy, the
router confines the degradation to that shard's key range (journaling
its keys for delete-on-recover), and the restarted worker comes back
*empty*, which Section 4.2's lease-expiry rules already make safe.  The
supervisor restores capacity; correctness never depended on it.
"""

import os
import select
import subprocess
import sys
import threading
import time

from repro.errors import CacheUnavailableError, ReproError


class ClusterError(ReproError):
    """A shard process could not be started or supervised."""


def _worker_pythonpath():
    """PYTHONPATH for a worker: this package's source root first."""
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__
    )))
    existing = os.environ.get("PYTHONPATH")
    if existing:
        return os.pathsep.join([src_root, existing])
    return src_root


class ShardProcess:
    """One cache shard running as a supervised child process.

    The handshake is one line: the worker prints ``PORT <n>`` once its
    listening socket is bound, so :meth:`start` never returns a shard
    that cannot yet be dialed.  The first bound port is remembered and
    re-used by :meth:`restart`, so clients keep dialing one stable
    address across crashes (both transports bind with ``SO_REUSEADDR``).
    """

    def __init__(self, name, transport="async", host="127.0.0.1", port=0,
                 i_ttl=10.0, q_ttl=10.0, max_pipeline_buffer=None,
                 startup_timeout=10.0):
        self.name = name
        self.transport = transport
        self.host = host
        self.port = port  # 0 until the first start pins it
        self.i_ttl = i_ttl
        self.q_ttl = q_ttl
        self.max_pipeline_buffer = max_pipeline_buffer
        self.startup_timeout = startup_timeout
        self.proc = None
        self.restarts = 0

    def _command(self):
        cmd = [
            sys.executable, "-m", "repro.net.shard_worker",
            "--host", self.host,
            "--port", str(self.port),
            "--transport", self.transport,
            "--i-ttl", str(self.i_ttl),
            "--q-ttl", str(self.q_ttl),
        ]
        if self.max_pipeline_buffer is not None:
            cmd += ["--max-pipeline-buffer", str(self.max_pipeline_buffer)]
        return cmd

    def start(self):
        """Spawn the worker and wait for its bound-port handshake."""
        if self.alive:
            raise ClusterError("shard {!r} is already running".format(
                self.name
            ))
        env = dict(os.environ, PYTHONPATH=_worker_pythonpath())
        self.proc = subprocess.Popen(
            self._command(), stdout=subprocess.PIPE, env=env,
        )
        self.port = self._read_port()
        return self

    def _read_port(self):
        deadline = time.monotonic() + self.startup_timeout
        stdout = self.proc.stdout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.kill()
                raise ClusterError(
                    "shard {!r} did not report its port within {}s".format(
                        self.name, self.startup_timeout
                    )
                )
            ready, _, _ = select.select([stdout], [], [], min(remaining, 0.5))
            if not ready:
                if self.proc.poll() is not None:
                    raise ClusterError(
                        "shard {!r} exited with status {} before "
                        "binding".format(self.name, self.proc.returncode)
                    )
                continue
            line = stdout.readline()
            if not line:
                raise ClusterError(
                    "shard {!r} closed stdout before reporting its "
                    "port (exit status {})".format(
                        self.name, self.proc.poll()
                    )
                )
            text = line.decode("ascii", "replace").strip()
            if text.startswith("PORT "):
                return int(text.split(None, 1)[1])

    @property
    def alive(self):
        return self.proc is not None and self.proc.poll() is None

    @property
    def address(self):
        return (self.host, self.port)

    def poll(self):
        """Exit status, or ``None`` while the worker runs (or never ran)."""
        return None if self.proc is None else self.proc.poll()

    def stop(self, graceful=True, timeout=5.0):
        """Stop the worker: SIGTERM drain by default, SIGKILL fallback."""
        if self.proc is None:
            return
        if self.proc.poll() is None:
            try:
                if graceful:
                    self.proc.terminate()  # SIGTERM -> worker drains
                else:
                    self.proc.kill()
            except OSError:
                pass
            try:
                self.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=timeout)
        if self.proc.stdout is not None:
            self.proc.stdout.close()

    def kill(self):
        """Hard-kill the worker (the chaos path: no drain, no goodbye)."""
        self.stop(graceful=False)

    def restart(self):
        """Start a replacement worker on the same port."""
        self.stop(graceful=False)
        self.restarts += 1
        return self.start()


class IQCluster:
    """N shard processes behind one consistent-hash router.

    ``cluster.router`` is a :class:`~repro.sharding.router.
    ShardedIQServer` whose backends are
    :class:`~repro.net.resilient.ResilientIQServer` clients -- so every
    consistency client, write session, and benchmark built on the
    :class:`~repro.core.backend.LeaseBackend` surface runs unchanged
    against real processes.

    A monitor thread polls each worker.  A worker that exited without
    being asked (crash, OOM-kill, chaos) is restarted on its original
    port when ``restart_on_crash`` is set; its resilient client redials
    and closes its circuit on the next successful probe.  :meth:`health`
    reports, per shard, both liveness (process running) and
    serviceability (a wire-level ``version`` ping answered within the
    probe timeout) -- a hung worker is alive but not serviceable, and
    counts as unhealthy.
    """

    def __init__(self, shards=4, transport="async", restart_on_crash=True,
                 monitor_interval=0.25, net_config=None, i_ttl=10.0,
                 q_ttl=10.0, fanout_workers=None, probe_timeout=2.0):
        if shards < 1:
            raise ValueError("a cluster needs at least one shard")
        self.transport = transport
        self.restart_on_crash = restart_on_crash
        self.monitor_interval = monitor_interval
        self.net_config = net_config
        self.probe_timeout = probe_timeout
        self._fanout_workers = fanout_workers
        self.processes = [
            ShardProcess(
                "shard{}".format(i), transport=transport,
                i_ttl=i_ttl, q_ttl=q_ttl,
                max_pipeline_buffer=(
                    net_config.max_pipeline_buffer
                    if net_config is not None else None
                ),
            )
            for i in range(shards)
        ]
        self.clients = []
        self.router = None
        self._monitor = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Start every worker, build the router, begin supervision."""
        from repro.net.resilient import ResilientIQServer
        from repro.sharding import ShardedIQServer

        started = []
        try:
            for proc in self.processes:
                proc.start()
                started.append(proc)
        except Exception:
            for proc in started:
                proc.kill()
            raise
        self.clients = [
            ResilientIQServer(proc.host, proc.port, config=self.net_config)
            for proc in self.processes
        ]
        self.router = ShardedIQServer(
            self.clients,
            names=[proc.name for proc in self.processes],
            fanout_workers=self._fanout_workers,
        )
        self._stop.clear()
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         daemon=True)
        self._monitor.start()
        return self

    def stop(self, graceful=True):
        """Drain and stop the whole cluster (supervision first)."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5)
            self._monitor = None
        for client in self.clients:
            try:
                client.close()
            except Exception:
                pass
        for proc in self.processes:
            proc.stop(graceful=graceful)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()

    # -- supervision ---------------------------------------------------------

    @property
    def total_restarts(self):
        return sum(proc.restarts for proc in self.processes)

    @property
    def ports(self):
        return [proc.port for proc in self.processes]

    def _monitor_loop(self):
        while not self._stop.wait(self.monitor_interval):
            for proc in self.processes:
                if self._stop.is_set():
                    return
                if proc.poll() is not None and self.restart_on_crash:
                    with self._lock:
                        if proc.poll() is None or self._stop.is_set():
                            continue
                        try:
                            proc.restart()
                        except ClusterError:
                            # Startup failed; retried next tick.
                            continue

    def kill_shard(self, index):
        """Chaos helper: SIGKILL one worker (the monitor restarts it)."""
        self.processes[index].kill()

    def wait_healthy(self, timeout=10.0):
        """Block until every shard answers a wire ping (or time out)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if all(self.health().values()):
                return True
            time.sleep(0.05)
        return False

    def health(self):
        """Per-shard health: process alive *and* answering on the wire."""
        report = {}
        for proc in self.processes:
            report[proc.name] = proc.alive and self._ping(proc)
        return report

    def _ping(self, proc):
        from repro.net.client import RemoteIQServer

        try:
            client = RemoteIQServer(proc.host, proc.port,
                                    timeout=self.probe_timeout)
        except CacheUnavailableError:
            return False
        try:
            client.version()
            return True
        except (CacheUnavailableError, ReproError):
            return False
        finally:
            client.close()
