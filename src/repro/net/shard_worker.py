"""One cache shard as an OS process: ``python -m repro.net.shard_worker``.

A :class:`~repro.sharding.router.ShardedIQServer` ring escapes the GIL
only if each shard's serving loop runs in its own process.  This module
is that process: it hosts one :class:`~repro.core.iq_server.IQServer`
behind the requested wire transport (event loop by default) and speaks a
tiny supervision contract with its parent
(:class:`repro.net.cluster.ShardProcess`):

* on startup it prints ``PORT <n>`` on stdout (and flushes) once the
  listening socket is bound, so the parent can dial it without racing
  the bind -- passing ``--port 0`` lets the OS pick;
* ``SIGTERM`` / ``SIGINT`` trigger a *graceful drain*: the serving loop
  stops accepting, flushes every connection's buffered replies, closes
  the listening socket, then exits 0.  Replies already earned by
  executed commands are never dropped by an orderly shutdown;
* any other exit (crash, ``SIGKILL``) is the supervisor's cue to
  restart the shard -- clients experience it as
  :class:`~repro.errors.ConnectionLostError` and degrade per the PR 1
  fault taxonomy until the replacement binds.

The worker is deliberately stateless across restarts (the paper's
Section 4.2 failure contract: a restarted cache comes back *empty* and
correctness never depends on cache contents), so the supervisor only
has to re-bind the port, never to recover state.
"""

import argparse
import signal
import sys
import threading


def build_worker(args):
    """Construct the (server, iq) pair for parsed ``args``."""
    from repro.config import LeaseConfig, NetConfig
    from repro.core.iq_server import IQServer
    from repro.net.server import server_class

    iq = IQServer(lease_config=LeaseConfig(
        i_lease_ttl=args.i_ttl, q_lease_ttl=args.q_ttl,
    ))
    net_config = NetConfig()
    if args.max_pipeline_buffer is not None:
        net_config.max_pipeline_buffer = args.max_pipeline_buffer
    server = server_class(args.transport)(
        (args.host, args.port), iq, net_config=net_config,
    )
    return server, iq


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-shard-worker",
        description="Serve one IQ cache shard in this process.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = let the OS pick)")
    parser.add_argument("--transport", choices=("async", "threaded"),
                        default="async")
    parser.add_argument("--i-ttl", type=float, default=10.0)
    parser.add_argument("--q-ttl", type=float, default=10.0)
    parser.add_argument("--max-pipeline-buffer", type=int, default=None,
                        help="per-connection buffered-bytes cap")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    server, _iq = build_worker(args)

    draining = threading.Event()

    def _drain(_signum, _frame):
        if draining.is_set():
            return
        draining.set()
        # shutdown() must not run on the signal-handling (main) thread
        # for the threaded transport -- it blocks until serve_forever
        # exits, and serve_forever is running on this very thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    # Handlers go in BEFORE the port handshake: the parent may SIGTERM
    # the instant it learns the address, and a drain signal must never
    # hit the default (abrupt-kill) disposition.
    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)

    # The parent reads this exact line to learn where to dial; anything
    # else the worker prints must go to stderr.
    sys.stdout.write("PORT {}\n".format(server.port))
    sys.stdout.flush()

    try:
        server.serve_forever()
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
