"""Framing helpers for the memcached text protocol and IQ extensions.

Requests and responses are CRLF-delimited command lines, optionally
followed by a data block of a byte length announced on the command line
(exactly as in the memcached ASCII protocol).  Every IQ extension follows
the same discipline so a protocol trace reads like a Twemcache trace.

Extension command grammar (server replies in parentheses)::

    genid                                    (ID <tid>)
    iqget <key> [<tid>]                      (VALUE .../END | LEASE <token> | MISS | BACKOFF)
    iqset <key> <token> <nbytes> + data      (STORED | IGNORED)
    releasei <key> <token>                   (OK)
    qaread <key> <tid>                       (VALUE .../END | MISS | ABORT)
    sar <key> <tid> <nbytes> + data          (STORED | RELEASED | IGNORED)
    sar <key> <tid> -1                       (RELEASED | IGNORED)   # null value
    qar <tid> <key>                          (GRANTED | ABORT)
    dar <tid>                                (OK)
    iqdelta <tid> <key> <op> <nbytes> + data (GRANTED | ABORT)
    commit <tid>                             (OK)
    abort <tid>                              (OK)

Any request line may carry a trailing ``@t<trace-id>`` token
(``qar 7 user:1 @t42``).  It propagates the caller's trace id so
server-side events join the client's trace; servers strip it before
dispatch and ignore unparseable tokens.  The token rides at the *end* of
the line, after every positional field, so the ``<nbytes>`` indices in
:data:`DATA_COMMANDS` (counted from the front) are unaffected.  Keys
never start with ``@`` in this codebase, so the token is unambiguous.
"""

from repro.errors import ProtocolError

CRLF = b"\r\n"

#: Commands whose request carries a data block; value is the index of the
#: <nbytes> field on the command line (0 = command name itself).
DATA_COMMANDS = {
    "set": 4,
    "add": 4,
    "replace": 4,
    "append": 4,
    "prepend": 4,
    "cas": 4,
    "iqset": 3,
    "sar": 3,
    "iqdelta": 4,
}


class LineReader:
    """Incremental reader over a socket-like object with ``recv``.

    ``injector`` is an optional :class:`repro.faults.FaultInjector`; when
    installed, every refill fires the ``net.recv`` site, which can drop
    the connection, delay, or corrupt the incoming chunk.  The default
    path carries only a ``None`` check.
    """

    def __init__(self, sock, chunk_size=65536, injector=None):
        self._sock = sock
        self._buffer = b""
        self._chunk_size = chunk_size
        self._injector = injector

    def _fill(self):
        if self._injector is not None:
            self._inject_recv()
        chunk = self._sock.recv(self._chunk_size)
        if not chunk:
            raise ConnectionError("peer closed the connection")
        if self._injector is not None and self._corrupt_armed:
            from repro.faults.injector import corrupt_bytes

            chunk = corrupt_bytes(chunk)
            self._corrupt_armed = False
        self._buffer += chunk

    _corrupt_armed = False

    def _inject_recv(self):
        from repro.faults.injector import SITE_NET_RECV, FaultAction

        rule = self._injector.perform(SITE_NET_RECV)
        if rule is None:
            return
        if rule.action is FaultAction.DROP_CONNECTION:
            try:
                self._sock.close()
            except OSError:
                pass
            raise ConnectionError("injected connection drop (net.recv)")
        if rule.action is FaultAction.CORRUPT:
            self._corrupt_armed = True

    def read_line(self):
        """Read one CRLF-terminated line (returned without the CRLF)."""
        while CRLF not in self._buffer:
            self._fill()
        line, self._buffer = self._buffer.split(CRLF, 1)
        return line

    def read_bytes(self, count):
        """Read exactly ``count`` bytes plus the trailing CRLF."""
        needed = count + len(CRLF)
        while len(self._buffer) < needed:
            self._fill()
        data = self._buffer[:count]
        if self._buffer[count:needed] != CRLF:
            raise ProtocolError("data block not terminated by CRLF")
        self._buffer = self._buffer[needed:]
        return data


#: Prefix of the optional trailing trace token on a request line.
TRACE_TOKEN_PREFIX = "@t"


def split_trace_token(args):
    """Pop a trailing ``@t<id>`` trace token from parsed ``args``.

    Returns ``(args, trace_id)`` where ``trace_id`` is ``None`` when no
    (well-formed) token is present.  A malformed token is left in place
    for the dispatcher to reject as a bad argument.
    """
    if args and args[-1].startswith(TRACE_TOKEN_PREFIX):
        try:
            trace_id = int(args[-1][len(TRACE_TOKEN_PREFIX):])
        except ValueError:
            return args, None
        return args[:-1], trace_id
    return args, None


def parse_command_line(line):
    """Split a request line into (command, args).  Command is lowercased."""
    if not line:
        raise ProtocolError("empty command line")
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError:
        raise ProtocolError("command line is not valid UTF-8")
    parts = text.split()
    if not parts:
        raise ProtocolError("blank command line")
    return parts[0].lower(), parts[1:]


def data_block_size(command, args):
    """Return the announced data-block size for ``command`` or ``None``.

    A negative announced size means "no data block follows" (the ``sar``
    null-value form).
    """
    index = DATA_COMMANDS.get(command)
    if index is None:
        return None
    if len(args) < index:
        raise ProtocolError(
            "command {!r} is missing its size field".format(command)
        )
    try:
        size = int(args[index - 1])
    except ValueError:
        raise ProtocolError("bad data size {!r}".format(args[index - 1]))
    if size < 0:
        return None
    return size


def value_response(key, value, flags=0, cas_id=None):
    """Build a ``VALUE``...``END`` retrieval response."""
    if cas_id is None:
        header = "VALUE {} {} {}".format(key, flags, len(value))
    else:
        header = "VALUE {} {} {} {}".format(key, flags, len(value), cas_id)
    return header.encode() + CRLF + value + CRLF + b"END" + CRLF


def simple_response(word):
    return word.encode() if isinstance(word, str) else word


def error_response(message):
    return "SERVER_ERROR {}".format(message).encode()
