"""Framing helpers for the memcached text protocol and IQ extensions.

Requests and responses are CRLF-delimited command lines, optionally
followed by a data block of a byte length announced on the command line
(exactly as in the memcached ASCII protocol).  Every IQ extension follows
the same discipline so a protocol trace reads like a Twemcache trace.

Extension command grammar (server replies in parentheses)::

    genid                                    (ID <tid>)
    iqget <key> [<tid>]                      (VALUE .../END | LEASE <token> | MISS | BACKOFF)
    iqset <key> <token> <nbytes> + data      (STORED | IGNORED)
    releasei <key> <token>                   (OK)
    qaread <key> <tid>                       (VALUE .../END | MISS | ABORT)
    sar <key> <tid> <nbytes> + data          (STORED | RELEASED | IGNORED)
    sar <key> <tid> -1                       (RELEASED | IGNORED)   # null value
    qar <tid> <key>                          (GRANTED | ABORT)
    dar <tid>                                (OK)
    iqdelta <tid> <key> <op> <nbytes> + data (GRANTED | ABORT)
    commit <tid>                             (OK)
    abort <tid>                              (OK)

Precise-clock commands (lease-free reads, ``repro.clock``)::

    cget <key> <now> [<extend>]        (CVALUE <key> <flags> <start> <until>
                                        <nbytes> + data, terminated by END
                                        | MISS | EXPIRED)
    cset <key> <start> <until> <nbytes> + data   (STORED | IGNORED)

``cget`` reads at commit-clock value ``<now>``: a hit is served only
while the entry's validity interval ``[<start>, <until>)`` covers
``<now>``; an interval the clock has passed answers ``EXPIRED`` (and the
entry is dropped), an absent or unstamped entry answers ``MISS``.  The
optional ``<extend>`` carries the reader's freshly promised bound so a
re-read can lengthen the stored interval in the same round trip.
``cset`` installs a value stamped with its validity interval; the server
answers ``IGNORED`` when it already holds an interval at least as
long-lived (or the proposed interval is empty).

Multi-key commands amortize the per-command round trip (one request
line, one multi-line reply)::

    iqmget <key>... [@s<tid>]   (per key: VALUE <key> <flags> <nbytes> + data
                                 | LEASE <key> <token> | MISS <key>
                                 | BACKOFF <key>; terminated by END)
    qareg <tid> <key>...        (per key: GRANTED <key> | ABORT <key>
                                 | UNAVAIL <key>; terminated by END)
    mdelete <key>...            (DELETED <n-hits>)
    keysnap                     (KEY <key> per cached key; terminated by END)

``keysnap`` is the migration enumerator: a point-in-time listing of
every cached key, used by the rebalancer to compute which key ranges a
topology change moves.

``qareg`` acquires invalidation-mode (Fig. 5a shared) Q leases in key
order and stops at the first reject, exactly like a sequential run of
``qar`` -- keys after the rejected one are not attempted and are absent
from the reply.  ``UNAVAIL`` marks a key whose owning shard was
unreachable (sharded deployments only); the caller degrades that key
individually.

Any request line may carry a trailing ``@t<trace-id>`` token
(``qar 7 user:1 @t42``).  It propagates the caller's trace id so
server-side events join the client's trace; servers strip it before
dispatch and ignore unparseable tokens.  ``iqmget`` similarly carries
its optional session TID as a trailing ``@s<tid>`` token (keys would be
ambiguous with a positional TID).  Tokens ride at the *end* of the
line, after every positional field, so the ``<nbytes>`` indices in
:data:`DATA_COMMANDS` (counted from the front) are unaffected.  Keys
never start with ``@`` in this codebase, so the tokens are unambiguous.

**Pipelining.**  Commands may be pipelined: a client may write N
request frames back-to-back and then read the N replies, which the
server produces in request order on each connection.  Framing is
unchanged -- each request is a complete line (plus announced data
block), each reply is a complete line or ``END``-terminated block -- so
a pipelined stream is byte-identical to the same commands issued one at
a time.
"""

from repro.errors import PipelineOverflowError, ProtocolError

CRLF = b"\r\n"

#: Commands whose request carries a data block; value is the index of the
#: <nbytes> field on the command line (0 = command name itself).
DATA_COMMANDS = {
    "set": 4,
    "add": 4,
    "replace": 4,
    "append": 4,
    "prepend": 4,
    "cas": 4,
    "iqset": 3,
    "sar": 3,
    "iqdelta": 4,
    "cset": 4,
}


class LineReader:
    """Incremental reader over a socket-like object with ``recv``.

    Bytes are received in large chunks into one growing buffer and
    consumed by advancing a read offset, so draining a pipelined burst
    of N frames costs one ``recv`` plus N slice-outs -- the historical
    implementation re-copied the unconsumed remainder on every line,
    which is quadratic exactly when pipelining makes the buffer deep.
    The consumed prefix is compacted away only once it is large and
    dominates the buffer.

    ``injector`` is an optional :class:`repro.faults.FaultInjector`; when
    installed, every refill fires the ``net.recv`` site, which can drop
    the connection, delay, or corrupt the incoming chunk.  The default
    path carries only a ``None`` check.

    ``max_buffer`` bounds the *unconsumed* bytes the reader will hold
    (``NetConfig.max_pipeline_buffer`` on the servers; ``None`` = no
    limit, the client default).  A line that never terminates, or a data
    block whose announced size exceeds the bound, raises
    :class:`~repro.errors.PipelineOverflowError` before the flooding
    bytes are buffered -- the server replies with an error and closes
    instead of growing without limit.
    """

    #: Compact the buffer once this many consumed bytes accumulate.
    _COMPACT_THRESHOLD = 65536

    def __init__(self, sock, chunk_size=65536, injector=None,
                 max_buffer=None):
        self._sock = sock
        self._buffer = bytearray()
        self._pos = 0
        self._chunk_size = chunk_size
        self._injector = injector
        self._max_buffer = max_buffer

    def _fill(self):
        if self._injector is not None:
            self._inject_recv()
        chunk = self._sock.recv(self._chunk_size)
        if not chunk:
            raise ConnectionError("peer closed the connection")
        if self._injector is not None and self._corrupt_armed:
            from repro.faults.injector import corrupt_bytes

            chunk = corrupt_bytes(chunk)
            self._corrupt_armed = False
        if self._pos and self._pos == len(self._buffer):
            # Everything was consumed: restart the buffer for free.
            del self._buffer[:]
            self._pos = 0
        self._buffer += chunk

    _corrupt_armed = False

    def _inject_recv(self):
        from repro.faults.injector import SITE_NET_RECV, FaultAction

        rule = self._injector.perform(SITE_NET_RECV)
        if rule is None:
            return
        if rule.action is FaultAction.DROP_CONNECTION:
            try:
                self._sock.close()
            except OSError:
                pass
            raise ConnectionError("injected connection drop (net.recv)")
        if rule.action is FaultAction.CORRUPT:
            self._corrupt_armed = True

    def _compact(self):
        if (self._pos >= self._COMPACT_THRESHOLD
                and self._pos * 2 >= len(self._buffer)):
            del self._buffer[:self._pos]
            self._pos = 0

    def pending(self):
        """True when a complete line is already buffered (no blocking).

        The server's dispatch loop uses this to keep draining pipelined
        commands before flushing its replies.
        """
        return self._buffer.find(CRLF, self._pos) != -1

    def _check_limit(self, pending):
        if self._max_buffer is not None and pending > self._max_buffer:
            raise PipelineOverflowError(
                "connection buffered {} bytes, limit {}".format(
                    pending, self._max_buffer
                )
            )

    def read_line(self):
        """Read one CRLF-terminated line (returned without the CRLF)."""
        while True:
            end = self._buffer.find(CRLF, self._pos)
            if end != -1:
                break
            self._check_limit(len(self._buffer) - self._pos)
            self._fill()
        # Slice out through a memoryview: one copy into the result,
        # where a bytearray slice would copy twice (slice, then bytes).
        # The view is a same-expression temporary, released before any
        # buffer mutation (an exported view pins a bytearray's size).
        line = bytes(memoryview(self._buffer)[self._pos:end])
        self._pos = end + len(CRLF)
        self._compact()
        return line

    def read_bytes(self, count):
        """Read exactly ``count`` bytes plus the trailing CRLF."""
        self._check_limit(count + len(CRLF))
        # Compare *available* bytes, not absolute buffer length: _fill()
        # may compact the consumed prefix away (resetting _pos), so any
        # absolute index computed before the loop would go stale.
        while len(self._buffer) - self._pos < count + len(CRLF):
            self._fill()
        start = self._pos
        data = bytes(memoryview(self._buffer)[start:start + count])
        # Indexing a bytearray yields ints -- the terminator check costs
        # no allocation at all (CRLF is 0x0d 0x0a).
        if (self._buffer[start + count] != 0x0D
                or self._buffer[start + count + 1] != 0x0A):
            raise ProtocolError("data block not terminated by CRLF")
        self._pos = start + count + len(CRLF)
        self._compact()
        return data


#: Prefix of the optional trailing trace token on a request line.
TRACE_TOKEN_PREFIX = "@t"

#: Prefix of the optional trailing session-TID token (``iqmget`` only).
SESSION_TOKEN_PREFIX = "@s"


def split_session_token(args):
    """Pop a trailing ``@s<tid>`` session token from parsed ``args``.

    Returns ``(args, tid)`` where ``tid`` is ``None`` when no well-formed
    token is present.  Mirrors :func:`split_trace_token`; when both tokens
    ride one line the trace token comes last, so strip it first.
    """
    if args and args[-1].startswith(SESSION_TOKEN_PREFIX):
        try:
            tid = int(args[-1][len(SESSION_TOKEN_PREFIX):])
        except ValueError:
            return args, None
        return args[:-1], tid
    return args, None


def split_trace_token(args):
    """Pop a trailing ``@t<id>`` trace token from parsed ``args``.

    Returns ``(args, trace_id)`` where ``trace_id`` is ``None`` when no
    (well-formed) token is present.  A malformed token is left in place
    for the dispatcher to reject as a bad argument.
    """
    if args and args[-1].startswith(TRACE_TOKEN_PREFIX):
        try:
            trace_id = int(args[-1][len(TRACE_TOKEN_PREFIX):])
        except ValueError:
            return args, None
        return args[:-1], trace_id
    return args, None


def parse_command_line(line):
    """Split a request line into (command, args).  Command is lowercased."""
    if not line:
        raise ProtocolError("empty command line")
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError:
        raise ProtocolError("command line is not valid UTF-8")
    parts = text.split()
    if not parts:
        raise ProtocolError("blank command line")
    return parts[0].lower(), parts[1:]


def data_block_size(command, args):
    """Return the announced data-block size for ``command`` or ``None``.

    A negative announced size means "no data block follows" (the ``sar``
    null-value form).
    """
    index = DATA_COMMANDS.get(command)
    if index is None:
        return None
    if len(args) < index:
        raise ProtocolError(
            "command {!r} is missing its size field".format(command)
        )
    try:
        size = int(args[index - 1])
    except ValueError:
        raise ProtocolError("bad data size {!r}".format(args[index - 1]))
    if size < 0:
        return None
    return size


def value_block(key, value, flags=0, cas_id=None):
    """A ``VALUE``...``END`` retrieval block *without* the trailing CRLF.

    One %-formatted buffer (PEP 461) instead of a format/encode/concat
    chain; the dispatcher appends the per-reply CRLF itself, so this is
    the shape its handlers want.
    """
    if cas_id is None:
        return b"VALUE %s %d %d\r\n%s\r\nEND" % (
            key.encode(), flags, len(value), value)
    return b"VALUE %s %d %d %d\r\n%s\r\nEND" % (
        key.encode(), flags, len(value), cas_id, value)


def value_response(key, value, flags=0, cas_id=None):
    """Build a ``VALUE``...``END`` retrieval response."""
    return value_block(key, value, flags=flags, cas_id=cas_id) + CRLF


def simple_response(word):
    return word.encode() if isinstance(word, str) else word


def error_response(message):
    return "SERVER_ERROR {}".format(message).encode()
