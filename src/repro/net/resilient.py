"""ResilientIQServer: fault-tolerant networked IQ command surface.

Wraps :class:`~repro.net.client.RemoteIQServer` with the robustness layer
the paper's degradation contract needs end-to-end over TCP:

* **per-operation timeouts** -- every exchange runs against a socket
  deadline (``NetConfig.operation_timeout``);
* **automatic reconnect** -- a poisoned connection is discarded and the
  next call dials a fresh one, pacing attempts with the existing
  :mod:`repro.util.backoff` policies;
* **idempotency-aware retry** -- operations whose duplicate execution is
  harmless (``iq_get``, ``get``, ``delete``, ``release_i``, ``dar``,
  ``commit``, ``abort``, ...) are retried on a fresh connection after a
  connection loss; operations that are *not* idempotent (``qaread``,
  ``sar``, ``iq_delta``, ``qar``, the storage commands) are never blindly
  retried -- an ambiguous outcome surfaces as a typed error and safety
  rests on the server's finite Q-lease lifetime (an interrupted write
  session's leases expire and the key is deleted, Section 4.2);
* **circuit breaker** -- after ``breaker_failure_threshold`` consecutive
  failures the circuit opens and calls fail fast with
  :class:`~repro.errors.CircuitOpenError` (no network I/O), which the
  consistency clients translate into *degraded mode*: reads served from
  the SQL engine, writes applied to SQL only with their keys journaled;
* **delete-on-recover reconciliation** -- keys written while degraded are
  recorded in :attr:`journal`; before the first operation of a recovered
  circuit executes, those keys are deleted from the cache (one ``mdelete``
  round trip) so a stale pre-partition value can never be served again;
* **connection pooling** -- up to ``NetConfig.pool_size`` connections are
  kept live, so concurrent callers run their exchanges in parallel
  instead of serializing on one socket; :meth:`pipeline` checks a pooled
  connection out for a whole batched exchange.

The class exposes the full IQ + memcached method surface, so
``IQClient`` and everything above it run unchanged.
"""

import threading

from repro.config import BackoffConfig, NetConfig
from repro.errors import (
    CircuitOpenError,
    ConnectionLostError,
    OperationTimeout,
    ProtocolError,
)
from repro.core.backend import LeaseBackend
from repro.net.client import Pipeline, RemoteIQServer
from repro.obs.trace import get_tracer
from repro.util.backoff import ExponentialBackoff
from repro.util.clock import SystemClock


class CircuitState:
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Classic three-state breaker on consecutive failures.

    CLOSED -> (``failure_threshold`` consecutive failures) -> OPEN ->
    (``cooldown`` elapses, one probe allowed) -> HALF_OPEN ->
    success -> CLOSED / failure -> OPEN again.
    """

    def __init__(self, failure_threshold=3, cooldown=0.5, clock=None):
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.clock = clock or SystemClock()
        self._lock = threading.Lock()
        self._state = CircuitState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = None
        self._tracer = get_tracer()
        #: lifetime counters for reporting
        self.times_opened = 0
        self.times_recovered = 0

    @property
    def state(self):
        with self._lock:
            return self._state

    def allow(self):
        """Gate one call attempt.

        Raises :class:`CircuitOpenError` while the circuit is open and
        cooling down.  After the cooldown, transitions to HALF_OPEN and
        lets the caller through as the probe.
        """
        with self._lock:
            if self._state == CircuitState.OPEN:
                if self.clock.now() - self._opened_at < self.cooldown:
                    raise CircuitOpenError(
                        "circuit open after {} consecutive failures".format(
                            self._consecutive_failures
                        )
                    )
                self._state = CircuitState.HALF_OPEN
                if self._tracer.active:
                    self._tracer.emit("net.breaker.halfopen")

    def record_failure(self):
        with self._lock:
            self._consecutive_failures += 1
            tripped = (
                self._state == CircuitState.HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            )
            if tripped and self._state != CircuitState.OPEN:
                self._state = CircuitState.OPEN
                self.times_opened += 1
                if self._tracer.active:
                    self._tracer.emit(
                        "net.breaker.open",
                        failures=self._consecutive_failures,
                    )
            if self._state == CircuitState.OPEN:
                self._opened_at = self.clock.now()

    def record_success(self):
        """Note a successful call; returns True when this closed a
        previously-open circuit (the recovery moment)."""
        with self._lock:
            recovered = self._state != CircuitState.CLOSED
            self._state = CircuitState.CLOSED
            self._consecutive_failures = 0
            self._opened_at = None
            if recovered:
                self.times_recovered += 1
                if self._tracer.active:
                    self._tracer.emit("net.breaker.close")
            return recovered


class ReconciliationJournal:
    """Keys whose cached value may be stale after degraded-mode writes.

    Thread-safe set semantics; :meth:`drain` atomically empties it so the
    recovery path can delete the keys, re-adding any it fails to reach.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._keys = set()
        self.total_journaled = 0
        self.total_reconciled = 0

    def add(self, keys):
        with self._lock:
            for key in keys:
                if key not in self._keys:
                    self._keys.add(key)
                    self.total_journaled += 1

    def drain(self):
        with self._lock:
            keys = sorted(self._keys)
            self._keys.clear()
            return keys

    def peek(self):
        with self._lock:
            return sorted(self._keys)

    def mark_reconciled(self, count):
        with self._lock:
            self.total_reconciled += count

    def remove(self, keys):
        """Forget ``keys`` (they were confirmed deleted from the cache)."""
        with self._lock:
            self._keys.difference_update(keys)

    def __len__(self):
        with self._lock:
            return len(self._keys)

    def __bool__(self):
        return len(self) > 0


#: Operations whose duplicate execution cannot violate consistency.
#: ``dar``/``commit``/``abort`` are idempotent because the server pops the
#: session state on first application (a replay is a no-op); ``delete`` is
#: naturally idempotent; ``iq_get`` re-issues at worst a fresh lease.
#: ``cget`` is a pure read; a replayed ``cset`` re-proposes the same
#: validity interval, which the server arbitrates identically (keep the
#: longer-lived interval), so both precise-clock commands retry safely.
_IDEMPOTENT = frozenset({
    "gen_id", "iq_get", "iq_mget", "release_i", "dar", "commit", "abort",
    "get", "gets", "delete", "mdelete", "touch", "flush_all", "stats",
    "version", "key_snapshot", "cget", "cset",
})

#: Never blind-retried: replaying would double-apply a change (``sar``,
#: ``iq_delta``, storage commands) or re-register work under an outcome
#: the client cannot see (``qar``, ``qar_many``, ``qaread``).
_NON_IDEMPOTENT = frozenset({
    "qar", "qar_many", "qaread", "sar", "iq_set", "iq_delta",
    "propose_refresh",
    "set", "add", "replace", "append", "prepend", "cas", "incr", "decr",
})


class ConnectionPool:
    """Bounded, thread-safe pool of :class:`RemoteIQServer` connections.

    ``dial`` is a zero-argument factory; ``max_size`` bounds the number
    of live connections.  ``acquire`` hands out an idle connection,
    dials a new one while under the bound, or blocks until a peer
    releases.  Broken (poisoned) connections are closed and shed on
    release, so the pool only ever hands out connections that were
    healthy when last seen.

    Slot accounting is defended against double settlement: every live
    connection is tracked in ``_known``, and :meth:`release` /
    :meth:`discard` of a connection the pool no longer owns are no-ops.
    Without this, a connection settled twice (e.g. discarded by a retry
    path and again by a pipeline teardown during a shard death) would
    corrupt ``_total`` -- either leaking slots until every ``acquire``
    blocks forever on an empty pool, or double-listing a connection so
    two callers share one socket.  A pool whose every connection was
    discarded simply re-dials lazily on the next ``acquire``.
    """

    def __init__(self, dial, max_size):
        self._dial = dial
        self._max = max(1, max_size)
        self._cond = threading.Condition()
        self._idle = []
        #: every connection the pool currently owns (idle or checked out)
        self._known = set()
        self._total = 0
        self._closed = False

    @property
    def live_connections(self):
        with self._cond:
            return self._total

    def acquire(self):
        stale = []
        try:
            with self._cond:
                while True:
                    if self._closed:
                        raise ConnectionLostError(
                            "connection pool is closed"
                        )
                    if self._idle:
                        conn = self._idle.pop()
                        if conn.broken:
                            self._total -= 1
                            self._known.discard(conn)
                            stale.append(conn)
                            continue
                        return conn
                    if self._total < self._max:
                        self._total += 1
                        break
                    self._cond.wait()
        finally:
            for conn in stale:
                self._close_quietly(conn)
        try:
            conn = self._dial()
        except BaseException:
            with self._cond:
                self._total -= 1
                self._cond.notify()
            raise
        with self._cond:
            self._known.add(conn)
        return conn

    def release(self, conn):
        """Return a connection; a broken one is closed and its slot freed.

        Releasing a connection the pool no longer owns (already
        discarded, or already sitting idle) is a no-op.
        """
        with self._cond:
            if conn not in self._known:
                return
            if any(idle is conn for idle in self._idle):
                return
            if conn.broken or self._closed:
                self._known.discard(conn)
                self._total -= 1
            else:
                self._idle.append(conn)
                conn = None
            self._cond.notify()
        if conn is not None:
            self._close_quietly(conn)

    def discard(self, conn):
        """Drop a connection the caller saw fail (frees its slot).

        Idempotent: a second discard of the same connection leaves the
        accounting untouched.
        """
        with self._cond:
            if conn not in self._known:
                return
            self._known.discard(conn)
            self._idle = [idle for idle in self._idle if idle is not conn]
            self._total -= 1
            self._cond.notify()
        self._close_quietly(conn)

    def close(self):
        with self._cond:
            self._closed = True
            idle, self._idle = self._idle, []
            for conn in idle:
                self._known.discard(conn)
            self._total -= len(idle)
            self._cond.notify_all()
        for conn in idle:
            self._close_quietly(conn)

    @staticmethod
    def _close_quietly(conn):
        try:
            conn.close()
        except OSError:
            pass


class ResilientIQServer(LeaseBackend):
    """Self-healing drop-in for :class:`RemoteIQServer`."""

    def __init__(self, host="127.0.0.1", port=11211, config=None,
                 backoff_config=None, clock=None, injector=None):
        self.host = host
        self.port = port
        self.config = config or NetConfig()
        self.clock = clock or SystemClock()
        self._injector = injector
        self._backoff = ExponentialBackoff(
            backoff_config or BackoffConfig(
                initial_delay=0.01, max_delay=0.2, max_attempts=None
            )
        )
        self.circuit = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown=self.config.breaker_cooldown,
            clock=self.clock,
        )
        self.journal = ReconciliationJournal()
        self._pool = ConnectionPool(self._dial, self.config.pool_size)
        self._reconcile_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._tracer = get_tracer()
        #: lifetime counters for reporting
        self.reconnects = 0
        self.retries = 0
        self.failures = 0
        self.promotions = 0

    # -- connection management ----------------------------------------------

    def _dial(self):
        """Connection factory for the pool."""
        conn = RemoteIQServer(
            self.host, self.port,
            timeout=self.config.operation_timeout,
            injector=self._injector,
        )
        with self._counter_lock:
            self.reconnects += 1
            count = self.reconnects
        if self._tracer.active:
            self._tracer.emit("net.reconnect", count=count)
        return conn

    def promote_standby(self, host=None, port=None):
        """Dial over to a warm standby address for this shard.

        Swaps the target endpoint, retires the old connection pool, and
        resets the breaker so the first call probes the standby
        immediately.  The reconciliation journal is deliberately kept:
        the standby may have mirrored values that degraded-mode writes
        made stale, and :meth:`_ensure_reconciled` replays the
        delete-on-recover pass against the new address before any
        regular operation reaches it.
        """
        old_pool = self._pool
        if host is not None:
            self.host = host
        if port is not None:
            self.port = port
        self._pool = ConnectionPool(self._dial, self.config.pool_size)
        old_pool.close()
        self.circuit.record_success()
        with self._counter_lock:
            self.promotions += 1
        if self._tracer.active:
            self._tracer.emit("net.failover", host=self.host, port=self.port)

    def close(self):
        self._pool.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- the resilient call path ---------------------------------------------

    def _note_failure(self):
        self.circuit.record_failure()
        with self._counter_lock:
            self.failures += 1

    def _call(self, name, *args):
        """Run one operation with timeout/reconnect/retry/breaker logic.

        Each attempt checks a connection out of the pool, so concurrent
        callers no longer serialize on one socket; only reconciliation
        after a recovery is a (brief) global critical section.
        """
        retriable = name in _IDEMPOTENT
        attempts_left = self.config.max_retries if retriable else 0
        delays = None
        while True:
            self.circuit.allow()
            conn = None
            try:
                conn = self._pool.acquire()
                self._ensure_reconciled(conn)
                result = getattr(conn, name)(*args)
            except (ConnectionLostError, OperationTimeout):
                if conn is not None:
                    self._pool.discard(conn)
                self._note_failure()
                if attempts_left <= 0:
                    raise
                attempts_left -= 1
                with self._counter_lock:
                    self.retries += 1
                if self._tracer.active:
                    self._tracer.emit("net.retry", op=name,
                                      attempts_left=attempts_left)
                if delays is None:
                    delays = self._backoff.delays()
                self.clock.sleep(next(delays))
                continue
            except BaseException:
                # Semantic errors (QuarantinedError ...) leave the
                # connection healthy; a framing error poisoned it and
                # release() sheds it.
                if conn is not None:
                    self._pool.release(conn)
                raise
            self._pool.release(conn)
            self.circuit.record_success()
            return result

    def _ensure_reconciled(self, conn):
        """Delete-on-recover: purge keys written while the cache was
        unreachable *before* any regular operation touches it.

        Keys stay journaled until the ``mdelete`` confirms, and every
        operation that sees a non-empty journal waits on the lock -- so
        no concurrent caller can read a possibly-stale journaled key
        while reconciliation is still in flight.  Runs on the raw
        connection so a reconciliation failure surfaces as the current
        call's connection failure (breaker accounting included) rather
        than recursing through :meth:`_call`.
        """
        if not self.config.reconcile_on_recover or not self.journal:
            return
        with self._reconcile_lock:
            keys = self.journal.peek()
            if not keys:
                return
            if self._tracer.active:
                self._tracer.emit("net.reconcile", keys=len(keys))
            # One pipelined round trip; on failure the keys were never
            # removed from the journal (deletes are idempotent, so the
            # next recovery simply re-deletes them all).
            conn.mdelete(keys)
            self.journal.remove(keys)
            self.journal.mark_reconciled(len(keys))

    # -- pipelined batches -----------------------------------------------------

    def pipeline(self):
        """Check a pooled connection out and return a batch context.

        The connection is returned to the pool when the pipeline
        executes (or its ``with`` block exits); a transport failure
        anywhere in the batch discards the connection and trips the
        breaker accounting, exactly like a single failed call.
        """
        self.circuit.allow()
        conn = self._pool.acquire()
        try:
            self._ensure_reconciled(conn)
        except BaseException:
            self._pool.discard(conn)
            self._note_failure()
            raise
        return _PooledPipeline(self, conn)

    # -- IQ command surface ---------------------------------------------------

    def gen_id(self):
        return self._call("gen_id")

    def iq_get(self, key, session=None):
        return self._call("iq_get", key, session)

    def iq_set(self, key, value, token):
        # An unstored IQset is always safe (the server ignores sets whose
        # lease was voided; the reader still returns its computed value),
        # so a connection failure degrades to "not cached" instead of
        # failing the read session.
        try:
            return self._call("iq_set", key, value, token)
        except (ConnectionLostError, OperationTimeout, CircuitOpenError):
            return False

    def release_i(self, key, token):
        # Best-effort: an unreleased I lease simply expires server-side.
        try:
            return self._call("release_i", key, token)
        except (ConnectionLostError, OperationTimeout, CircuitOpenError):
            return False

    def qaread(self, key, tid):
        return self._call("qaread", key, tid)

    def sar(self, key, value, tid):
        return self._call("sar", key, value, tid)

    def propose_refresh(self, key, value, tid):
        return self._call("propose_refresh", key, value, tid)

    def qar(self, tid, key):
        return self._call("qar", tid, key)

    def dar(self, tid):
        return self._call("dar", tid)

    def iq_delta(self, tid, key, op, operand):
        return self._call("iq_delta", tid, key, op, operand)

    def commit(self, tid):
        return self._call("commit", tid)

    def abort(self, tid):
        return self._call("abort", tid)

    # -- precise-clock commands ------------------------------------------------

    def cget(self, key, clock_now, extend=None):
        return self._call("cget", key, clock_now, extend)

    def cset(self, key, value, valid_from, valid_until):
        # Like iq_set: an uninstalled cset is always safe (the reader
        # still returns its computed value), so a connection failure
        # degrades to "not cached" instead of failing the read.
        try:
            return self._call("cset", key, value, valid_from, valid_until)
        except (ConnectionLostError, OperationTimeout, CircuitOpenError):
            return False

    # -- multi-key commands ----------------------------------------------------

    def iq_mget(self, keys, session=None):
        return self._call("iq_mget", list(keys), session)

    def qar_many(self, tid, keys):
        return self._call("qar_many", tid, list(keys))

    def mdelete(self, keys):
        return self._call("mdelete", list(keys))

    def key_snapshot(self):
        return self._call("key_snapshot")

    # -- memcached command surface --------------------------------------------

    def get(self, key):
        return self._call("get", key)

    def gets(self, key):
        return self._call("gets", key)

    def set(self, key, value, flags=0, ttl=None):
        return self._call("set", key, value, flags, ttl)

    def add(self, key, value, flags=0, ttl=None):
        return self._call("add", key, value, flags, ttl)

    def replace(self, key, value, flags=0, ttl=None):
        return self._call("replace", key, value, flags, ttl)

    def append(self, key, suffix):
        return self._call("append", key, suffix)

    def prepend(self, key, prefix):
        return self._call("prepend", key, prefix)

    def cas(self, key, value, cas_id, flags=0, ttl=None):
        return self._call("cas", key, value, cas_id, flags, ttl)

    def delete(self, key):
        return self._call("delete", key)

    def incr(self, key, delta=1):
        return self._call("incr", key, delta)

    def decr(self, key, delta=1):
        return self._call("decr", key, delta)

    def touch(self, key, ttl):
        return self._call("touch", key, ttl)

    def flush_all(self):
        return self._call("flush_all")

    def stats(self):
        return self._call("stats")

    def version(self):
        return self._call("version")


class _PooledPipeline(Pipeline):
    """A :class:`~repro.net.client.Pipeline` over a pooled connection.

    Settles the connection back into (or out of) the owner's pool when
    the batch completes, with the same breaker accounting as
    ``ResilientIQServer._call``.  Pipelines are never blindly retried:
    a batch typically mixes idempotent and non-idempotent commands, so
    an interrupted batch surfaces its typed error and the caller decides.
    """

    def __init__(self, owner, conn):
        super().__init__(conn)
        self._owner = owner
        self._settled = False

    def _settle(self, failed):
        if self._settled:
            return
        self._settled = True
        if failed:
            self._owner._pool.discard(self._conn)
            self._owner._note_failure()
        else:
            self._owner._pool.release(self._conn)
            self._owner.circuit.record_success()

    def execute(self):
        try:
            results = super().execute()
        except (ConnectionLostError, OperationTimeout, ProtocolError):
            self._settle(failed=True)
            raise
        self._settle(failed=False)
        return results

    def __exit__(self, exc_type, exc, tb):
        try:
            return super().__exit__(exc_type, exc, tb)
        finally:
            # Covers the not-executed paths (exception inside the with
            # body); a clean exit already settled via execute().
            self._settle(failed=self._conn.broken)
