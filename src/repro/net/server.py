"""Threaded TCP server exposing an IQ-Server over the text protocol."""

import socketserver
import threading

from repro.core.iq_server import IQServer
from repro.errors import (
    BadValueError,
    KeyFormatError,
    ProtocolError,
    QuarantinedError,
    ReproError,
    ValueTooLargeError,
)
from repro.kvs.store import StoreResult
from repro.net.protocol import (
    CRLF,
    LineReader,
    data_block_size,
    error_response,
    parse_command_line,
    value_response,
)

_STORE_REPLIES = {
    StoreResult.STORED: b"STORED",
    StoreResult.NOT_STORED: b"NOT_STORED",
    StoreResult.EXISTS: b"EXISTS",
    StoreResult.NOT_FOUND: b"NOT_FOUND",
}


class _Handler(socketserver.BaseRequestHandler):
    """One connection: a loop of request line -> optional data -> reply."""

    def handle(self):
        reader = LineReader(self.request)
        iq = self.server.iq_server
        while True:
            try:
                line = reader.read_line()
            except ConnectionError:
                return
            try:
                command, args = parse_command_line(line)
                if command == "quit":
                    return
                size = data_block_size(command, args)
                data = reader.read_bytes(size) if size is not None else None
                reply = self._dispatch(iq, command, args, data)
            except ProtocolError as exc:
                reply = error_response(str(exc))
            except (BadValueError, KeyFormatError, ValueTooLargeError) as exc:
                reply = "CLIENT_ERROR {}".format(exc).encode()
            except ReproError as exc:
                reply = error_response(str(exc))
            try:
                self.request.sendall(reply + CRLF)
            except OSError:
                return

    # -- command dispatch ----------------------------------------------------

    def _dispatch(self, iq, command, args, data):
        store = iq.store
        if command == "get" or command == "gets":
            return self._retrieve(store, args, with_cas=command == "gets")
        if command in ("set", "add", "replace"):
            key, flags, exptime = args[0], int(args[1]), float(args[2])
            ttl = exptime if exptime > 0 else None
            result = getattr(store, command)(key, data, int(flags), ttl)
            return _STORE_REPLIES[result]
        if command in ("append", "prepend"):
            result = getattr(store, command)(args[0], data)
            return _STORE_REPLIES[result]
        if command == "cas":
            key, flags, exptime, _size, cas_id = args[:5]
            ttl = float(exptime) if float(exptime) > 0 else None
            result = store.cas(key, data, int(cas_id), int(flags), ttl)
            return _STORE_REPLIES[result]
        if command == "delete":
            return b"DELETED" if store.delete(args[0]) else b"NOT_FOUND"
        if command in ("incr", "decr"):
            new = getattr(store, command)(args[0], int(args[1]))
            if new is None:
                return b"NOT_FOUND"
            return str(new).encode()
        if command == "touch":
            return b"TOUCHED" if store.touch(args[0], float(args[1])) else b"NOT_FOUND"
        if command == "flush_all":
            iq.flush_all()
            return b"OK"
        if command == "stats":
            lines = [
                "STAT {} {}".format(name, value).encode()
                for name, value in sorted(iq.stats.snapshot().items())
            ]
            return CRLF.join(lines + [b"END"])
        if command == "version":
            return b"VERSION repro-iq-twemcached 1.0"

        # -- IQ extensions ---------------------------------------------------
        if command == "genid":
            return "ID {}".format(iq.gen_id()).encode()
        if command == "iqget":
            session = int(args[1]) if len(args) > 1 else None
            result = iq.iq_get(args[0], session=session)
            if result.is_hit:
                return value_response(args[0], result.value)[:-2]
            if result.has_lease:
                return "LEASE {}".format(result.token).encode()
            return b"BACKOFF" if result.backoff else b"MISS"
        if command == "iqset":
            stored = iq.iq_set(args[0], data, int(args[1]))
            return b"STORED" if stored else b"IGNORED"
        if command == "releasei":
            iq.release_i(args[0], int(args[1]))
            return b"OK"
        if command == "qaread":
            try:
                result = iq.qaread(args[0], int(args[1]))
            except QuarantinedError:
                return b"ABORT"
            if result.value is None:
                return b"MISS"
            return value_response(args[0], result.value)[:-2]
        if command == "sar":
            stored = iq.sar(args[0], data, int(args[1]))
            if data is None:
                return b"RELEASED"
            return b"STORED" if stored else b"IGNORED"
        if command == "qar":
            try:
                iq.qar(int(args[0]), args[1])
            except QuarantinedError:
                return b"ABORT"
            return b"GRANTED"
        if command == "dar":
            iq.dar(int(args[0]))
            return b"OK"
        if command == "iqdelta":
            try:
                iq.iq_delta(int(args[0]), args[1], args[2], data)
            except QuarantinedError:
                return b"ABORT"
            return b"GRANTED"
        if command == "commit":
            iq.commit(int(args[0]))
            return b"OK"
        if command == "abort":
            iq.abort(int(args[0]))
            return b"OK"
        raise ProtocolError("unknown command {!r}".format(command))

    def _retrieve(self, store, keys, with_cas):
        chunks = []
        for key in keys:
            if with_cas:
                hit = store.gets(key)
                if hit is not None:
                    value, flags, cas_id = hit
                    header = "VALUE {} {} {} {}".format(
                        key, flags, len(value), cas_id
                    )
                    chunks.append(header.encode() + CRLF + value)
            else:
                hit = store.get(key)
                if hit is not None:
                    value, flags = hit
                    header = "VALUE {} {} {}".format(key, flags, len(value))
                    chunks.append(header.encode() + CRLF + value)
        chunks.append(b"END")
        return CRLF.join(chunks)


class IQTCPServer(socketserver.ThreadingTCPServer):
    """TCP front end for an :class:`IQServer`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address=("127.0.0.1", 0), iq_server=None):
        super().__init__(address, _Handler)
        self.iq_server = iq_server or IQServer()

    @property
    def port(self):
        return self.server_address[1]


def serve_background(iq_server=None, address=("127.0.0.1", 0)):
    """Start an :class:`IQTCPServer` on a daemon thread.

    Returns ``(server, thread)``; call ``server.shutdown()`` to stop.
    """
    server = IQTCPServer(address, iq_server)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread
