"""Threaded TCP server exposing an IQ-Server over the text protocol.

This is the *reference* transport: one OS thread per connection,
blocking sockets, the obvious control flow.  The event-loop transport
(:mod:`repro.net.async_server`) multiplexes thousands of connections on
one thread and must behave byte-identically; both funnel every parsed
command through :mod:`repro.net.dispatch`, and the transport-parity
suite (``tests/net/test_transport_parity.py``) runs the adversarial
client corpus against each.  Pick the transport with
``serve_background(transport=...)`` or ``repro serve
--threaded/--async``.
"""

import socket
import socketserver
import threading

from repro.core.iq_server import IQServer
from repro.errors import PipelineOverflowError, ProtocolError
from repro.net.dispatch import bump_stat, dispatch, exception_reply
from repro.net.protocol import (
    CRLF,
    LineReader,
    data_block_size,
    error_response,
    parse_command_line,
    split_trace_token,
)
from repro.obs.trace import trace_context


class _Handler(socketserver.BaseRequestHandler):
    """One connection: a loop of request line -> optional data -> reply.

    Framing discipline: once a command line announces a data block, those
    bytes are consumed from the stream *before* the command is validated
    or dispatched, so one bad command cannot leave its payload behind to
    be misparsed as the next command line.  Only when the size field
    itself is unparseable -- the byte count is unknowable and the stream
    cannot be resynchronized -- does the handler reply with an error and
    close the connection, exactly as memcached does.

    Pipelining: replies are buffered while more complete request frames
    are already readable, and flushed in one write just before the
    handler would block on ``recv`` -- so a client that wrote N frames
    back-to-back gets N replies in one segment, in request order.  Every
    early-exit path flushes the buffer first so no acknowledged command's
    reply is ever lost.

    Buffering is bounded by ``max_pipeline_buffer``: a frame that never
    terminates (or announces a data block beyond the cap) draws an error
    reply and a close instead of growing the read buffer without limit,
    and a reply backlog past the cap forces a (blocking) flush so a
    flooding client exerts backpressure instead of exhausting memory.
    """

    def handle(self):
        self.server._track(self.request)
        try:
            self._serve()
        finally:
            self.server._untrack(self.request)

    def _serve(self):
        injector = self.server.fault_injector
        reader = LineReader(
            self.request, injector=injector,
            max_buffer=self.server.max_pipeline_buffer,
        )
        iq = self.server.iq_server
        self._out = bytearray()
        self._batch = 0
        while True:
            # Drain every buffered pipelined command before flushing: only
            # flush when the next read would block, or the reply backlog
            # hit the buffering cap (backpressure on a flooding client).
            if self._out and (
                not reader.pending()
                or len(self._out) >= self.server.max_pipeline_buffer
            ):
                if not self._flush(iq):
                    return
            try:
                line = reader.read_line()
            except PipelineOverflowError as exc:
                # The peer flooded an unterminated frame past the cap;
                # the stream cannot be resynchronized.
                self._flush(iq)
                self._reply(error_response(str(exc)))
                return
            except (ConnectionError, OSError):
                return
            try:
                command, args = parse_command_line(line)
                # A trailing @t<id> token joins this request to the
                # caller's trace; strip it before the arg-count-sensitive
                # dispatch below.
                args, trace_id = split_trace_token(args)
                if command == "quit":
                    self._flush(iq)
                    return
                try:
                    size = data_block_size(command, args)
                except ProtocolError:
                    # The announced size is unusable: we cannot know how
                    # many payload bytes follow, so the stream is beyond
                    # repair.  Report and hang up rather than desync.
                    self._flush(iq)
                    self._reply(error_response("bad data block size"))
                    return
                if size is not None:
                    try:
                        data = reader.read_bytes(size)
                    except ProtocolError as exc:
                        # Payload not CRLF-terminated (or beyond the
                        # buffering cap): framing is broken.
                        self._flush(iq)
                        self._reply(error_response(str(exc)))
                        return
                else:
                    data = None
                if injector is not None:
                    if self._inject_request(injector, command):
                        return
                if trace_id is not None:
                    with trace_context(trace_id):
                        reply = dispatch(iq, command, args, data)
                else:
                    reply = dispatch(iq, command, args, data)
            except Exception as exc:
                reply = exception_reply(exc)
            if injector is not None:
                # Reply faults must hit the wire in request order, so the
                # buffer is flushed before this reply is doctored/dropped.
                if not self._flush(iq):
                    return
                reply = self._inject_reply(injector, command, reply)
                if reply is None:
                    return
            self._out += reply + CRLF
            self._batch += 1

    def _flush(self, iq):
        """Write out the buffered replies; count batches of more than one."""
        if not self._out:
            return True
        out, batch = self._out, self._batch
        self._out = bytearray()
        self._batch = 0
        try:
            # sendall takes any buffer; no need to copy the bytearray.
            self.request.sendall(out)
        except OSError:
            return False
        if batch > 1:
            bump_stat(iq, "pipelined_commands", batch)
        return True

    def _reply(self, reply):
        try:
            self.request.sendall(reply + CRLF)
            return True
        except OSError:
            return False

    # -- fault hooks ---------------------------------------------------------

    def _inject_request(self, injector, command):
        """Fire ``server.request``; returns True when the connection dies."""
        from repro.faults.injector import SITE_SERVER_REQUEST, FaultAction

        rule = injector.perform(SITE_SERVER_REQUEST, command=command)
        if rule is None:
            return False
        if rule.action is FaultAction.DROP_CONNECTION:
            return True
        if rule.action is FaultAction.KILL_SERVER:
            self.server.initiate_kill()
            return True
        return False

    def _inject_reply(self, injector, command, reply):
        """Fire ``server.reply``; returns the (possibly doctored) reply,
        or ``None`` when the connection must be dropped."""
        from repro.faults.injector import SITE_SERVER_REPLY, FaultAction
        from repro.faults.injector import corrupt_bytes

        rule = injector.perform(SITE_SERVER_REPLY, command=command)
        if rule is None:
            return reply
        if rule.action is FaultAction.DROP_CONNECTION:
            return None
        if rule.action is FaultAction.TRUNCATE:
            try:
                self.request.sendall(reply[: max(1, len(reply) // 2)])
            except OSError:
                pass
            return None
        if rule.action is FaultAction.CORRUPT:
            return corrupt_bytes(reply)
        return reply


class IQTCPServer(socketserver.ThreadingTCPServer):
    """TCP front end for an :class:`IQServer`.

    ``fault_injector`` (a :class:`repro.faults.FaultInjector`) arms the
    ``server.request``, ``server.reply``, and ``net.recv`` hook sites on
    every connection; leave it ``None`` for the zero-overhead default.
    ``on_kill`` is called (on a background thread) after a KILL_SERVER
    fault shuts the listener down -- a chaos controller hooks this to
    schedule the restart.  ``net_config`` supplies the per-connection
    ``max_pipeline_buffer`` cap (``None`` uses the NetConfig default).
    """

    allow_reuse_address = True
    daemon_threads = True
    # socketserver's default backlog of 5 drops SYNs when hundreds of
    # clients connect at once; match the event-loop listener so both
    # transports accept high-connection-count sweeps.
    request_queue_size = 1024

    def __init__(self, address=("127.0.0.1", 0), iq_server=None,
                 fault_injector=None, net_config=None):
        super().__init__(address, _Handler)
        from repro.config import NetConfig

        self.iq_server = iq_server or IQServer()
        self.fault_injector = fault_injector
        self.max_pipeline_buffer = (
            net_config or NetConfig()
        ).max_pipeline_buffer
        self.on_kill = None
        self._kill_started = False
        self._kill_lock = threading.Lock()
        self._active = set()
        self._active_lock = threading.Lock()

    @property
    def port(self):
        return self.server_address[1]

    def _track(self, sock):
        with self._active_lock:
            self._active.add(sock)

    def _untrack(self, sock):
        with self._active_lock:
            self._active.discard(sock)

    def close_all_connections(self):
        """Sever every live client connection, as a process death would.

        Handler threads blocked in ``recv`` wake with an ``OSError`` and
        exit; clients see the peer reset mid-stream.
        """
        with self._active_lock:
            conns = list(self._active)
            self._active.clear()
        for sock in conns:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def server_close(self):
        super().server_close()
        self.close_all_connections()

    def initiate_kill(self):
        """Shut the server down from a handler thread (KILL_SERVER fault).

        ``shutdown()`` blocks until ``serve_forever`` exits, so it must
        not run on the handler thread itself; a helper thread does the
        teardown and then notifies ``on_kill``.
        """
        with self._kill_lock:
            if self._kill_started:
                return
            self._kill_started = True

        def _teardown():
            self.shutdown()
            self.server_close()
            if self.on_kill is not None:
                self.on_kill()

        threading.Thread(target=_teardown, daemon=True).start()


#: Transport name -> server class; resolved lazily for ``async`` to keep
#: the reference transport importable on its own.
def server_class(transport):
    """Resolve a transport name (``"threaded"``/``"async"``) to its class."""
    if transport == "threaded":
        return IQTCPServer
    if transport == "async":
        from repro.net.async_server import AsyncIQServer

        return AsyncIQServer
    raise ValueError("unknown transport {!r}".format(transport))


def serve_background(iq_server=None, address=("127.0.0.1", 0),
                     fault_injector=None, transport="threaded",
                     net_config=None):
    """Start a wire server on a daemon thread.

    Returns ``(server, thread)``; call ``server.shutdown()`` to stop.
    ``transport`` selects the serving stack: ``"threaded"`` (reference,
    thread-per-connection) or ``"async"`` (event loop).
    """
    cls = server_class(transport)
    server = cls(address, iq_server, fault_injector=fault_injector,
                 net_config=net_config)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread
