"""Threaded TCP server exposing an IQ-Server over the text protocol."""

import socket
import socketserver
import threading

from repro.core.iq_server import IQServer
from repro.errors import (
    BadValueError,
    KeyFormatError,
    ProtocolError,
    QuarantinedError,
    ReproError,
    ValueTooLargeError,
)
from repro.kvs.store import StoreResult
from repro.net.protocol import (
    CRLF,
    LineReader,
    data_block_size,
    error_response,
    parse_command_line,
    split_session_token,
    split_trace_token,
    value_response,
)
from repro.obs.trace import trace_context

_STORE_REPLIES = {
    StoreResult.STORED: b"STORED",
    StoreResult.NOT_STORED: b"NOT_STORED",
    StoreResult.EXISTS: b"EXISTS",
    StoreResult.NOT_FOUND: b"NOT_FOUND",
}

_QAREG_WORDS = {
    "granted": "GRANTED",
    "abort": "ABORT",
    "unavailable": "UNAVAIL",
}


class _Handler(socketserver.BaseRequestHandler):
    """One connection: a loop of request line -> optional data -> reply.

    Framing discipline: once a command line announces a data block, those
    bytes are consumed from the stream *before* the command is validated
    or dispatched, so one bad command cannot leave its payload behind to
    be misparsed as the next command line.  Only when the size field
    itself is unparseable -- the byte count is unknowable and the stream
    cannot be resynchronized -- does the handler reply with an error and
    close the connection, exactly as memcached does.

    Pipelining: replies are buffered while more complete request frames
    are already readable, and flushed in one write just before the
    handler would block on ``recv`` -- so a client that wrote N frames
    back-to-back gets N replies in one segment, in request order.  Every
    early-exit path flushes the buffer first so no acknowledged command's
    reply is ever lost.
    """

    def handle(self):
        self.server._track(self.request)
        try:
            self._serve()
        finally:
            self.server._untrack(self.request)

    def _serve(self):
        injector = self.server.fault_injector
        reader = LineReader(self.request, injector=injector)
        iq = self.server.iq_server
        self._out = bytearray()
        self._batch = 0
        while True:
            # Drain every buffered pipelined command before flushing: only
            # flush when the next read would block.
            if self._out and not reader.pending():
                if not self._flush(iq):
                    return
            try:
                line = reader.read_line()
            except (ConnectionError, OSError):
                return
            try:
                command, args = parse_command_line(line)
                # A trailing @t<id> token joins this request to the
                # caller's trace; strip it before the arg-count-sensitive
                # dispatch below.
                args, trace_id = split_trace_token(args)
                if command == "quit":
                    self._flush(iq)
                    return
                try:
                    size = data_block_size(command, args)
                except ProtocolError:
                    # The announced size is unusable: we cannot know how
                    # many payload bytes follow, so the stream is beyond
                    # repair.  Report and hang up rather than desync.
                    self._flush(iq)
                    self._reply(error_response("bad data block size"))
                    return
                if size is not None:
                    try:
                        data = reader.read_bytes(size)
                    except ProtocolError as exc:
                        # Payload not CRLF-terminated: framing is broken.
                        self._flush(iq)
                        self._reply(error_response(str(exc)))
                        return
                else:
                    data = None
                if injector is not None:
                    if self._inject_request(injector, command):
                        return
                if trace_id is not None:
                    with trace_context(trace_id):
                        reply = self._dispatch(iq, command, args, data)
                else:
                    reply = self._dispatch(iq, command, args, data)
            except ProtocolError as exc:
                reply = error_response(str(exc))
            except (BadValueError, KeyFormatError, ValueTooLargeError) as exc:
                reply = "CLIENT_ERROR {}".format(exc).encode()
            except ReproError as exc:
                reply = error_response(str(exc))
            except (ValueError, IndexError) as exc:
                # Malformed arguments (non-integer token/tid, missing
                # fields).  Any data block was already consumed above, so
                # the connection remains usable.
                reply = "CLIENT_ERROR bad command arguments: {}".format(
                    exc
                ).encode()
            if injector is not None:
                # Reply faults must hit the wire in request order, so the
                # buffer is flushed before this reply is doctored/dropped.
                if not self._flush(iq):
                    return
                reply = self._inject_reply(injector, command, reply)
                if reply is None:
                    return
            self._out += reply + CRLF
            self._batch += 1

    def _flush(self, iq):
        """Write out the buffered replies; count batches of more than one."""
        if not self._out:
            return True
        out, batch = self._out, self._batch
        self._out = bytearray()
        self._batch = 0
        try:
            self.request.sendall(bytes(out))
        except OSError:
            return False
        if batch > 1:
            stats = getattr(iq, "stats", None)
            if stats is not None and callable(getattr(stats, "incr", None)):
                stats.incr("pipelined_commands", batch)
        return True

    def _reply(self, reply):
        try:
            self.request.sendall(reply + CRLF)
            return True
        except OSError:
            return False

    # -- fault hooks ---------------------------------------------------------

    def _inject_request(self, injector, command):
        """Fire ``server.request``; returns True when the connection dies."""
        from repro.faults.injector import SITE_SERVER_REQUEST, FaultAction

        rule = injector.perform(SITE_SERVER_REQUEST, command=command)
        if rule is None:
            return False
        if rule.action is FaultAction.DROP_CONNECTION:
            return True
        if rule.action is FaultAction.KILL_SERVER:
            self.server.initiate_kill()
            return True
        return False

    def _inject_reply(self, injector, command, reply):
        """Fire ``server.reply``; returns the (possibly doctored) reply,
        or ``None`` when the connection must be dropped."""
        from repro.faults.injector import SITE_SERVER_REPLY, FaultAction
        from repro.faults.injector import corrupt_bytes

        rule = injector.perform(SITE_SERVER_REPLY, command=command)
        if rule is None:
            return reply
        if rule.action is FaultAction.DROP_CONNECTION:
            return None
        if rule.action is FaultAction.TRUNCATE:
            try:
                self.request.sendall(reply[: max(1, len(reply) // 2)])
            except OSError:
                pass
            return None
        if rule.action is FaultAction.CORRUPT:
            return corrupt_bytes(reply)
        return reply

    # -- command dispatch ----------------------------------------------------

    def _dispatch(self, iq, command, args, data):
        store = iq.store
        if command == "get" or command == "gets":
            return self._retrieve(store, args, with_cas=command == "gets")
        if command in ("set", "add", "replace"):
            key, flags, exptime = args[0], int(args[1]), float(args[2])
            ttl = exptime if exptime > 0 else None
            result = getattr(store, command)(key, data, int(flags), ttl)
            return _STORE_REPLIES[result]
        if command in ("append", "prepend"):
            result = getattr(store, command)(args[0], data)
            return _STORE_REPLIES[result]
        if command == "cas":
            key, flags, exptime, _size, cas_id = args[:5]
            ttl = float(exptime) if float(exptime) > 0 else None
            result = store.cas(key, data, int(cas_id), int(flags), ttl)
            return _STORE_REPLIES[result]
        if command == "delete":
            return b"DELETED" if store.delete(args[0]) else b"NOT_FOUND"
        if command in ("incr", "decr"):
            new = getattr(store, command)(args[0], int(args[1]))
            if new is None:
                return b"NOT_FOUND"
            return str(new).encode()
        if command == "touch":
            return b"TOUCHED" if store.touch(args[0], float(args[1])) else b"NOT_FOUND"
        if command == "flush_all":
            iq.flush_all()
            return b"OK"
        if command == "stats":
            lines = [
                "STAT {} {}".format(name, value).encode()
                for name, value in sorted(iq.stats.snapshot().items())
            ]
            return CRLF.join(lines + [b"END"])
        if command == "version":
            return b"VERSION repro-iq-twemcached 1.0"

        # -- IQ extensions ---------------------------------------------------
        if command == "genid":
            return "ID {}".format(iq.gen_id()).encode()
        if command == "iqget":
            session = int(args[1]) if len(args) > 1 else None
            result = iq.iq_get(args[0], session=session)
            if result.is_hit:
                return value_response(args[0], result.value)[:-2]
            if result.has_lease:
                return "LEASE {}".format(result.token).encode()
            return b"BACKOFF" if result.backoff else b"MISS"
        if command == "iqset":
            stored = iq.iq_set(args[0], data, int(args[1]))
            return b"STORED" if stored else b"IGNORED"
        if command == "releasei":
            iq.release_i(args[0], int(args[1]))
            return b"OK"
        if command == "qaread":
            try:
                result = iq.qaread(args[0], int(args[1]))
            except QuarantinedError:
                return b"ABORT"
            if result.value is None:
                return b"MISS"
            return value_response(args[0], result.value)[:-2]
        if command == "sar":
            stored = iq.sar(args[0], data, int(args[1]))
            if data is None:
                return b"RELEASED"
            return b"STORED" if stored else b"IGNORED"
        if command == "qar":
            try:
                iq.qar(int(args[0]), args[1])
            except QuarantinedError:
                return b"ABORT"
            return b"GRANTED"
        if command == "dar":
            iq.dar(int(args[0]))
            return b"OK"
        if command == "iqdelta":
            try:
                iq.iq_delta(int(args[0]), args[1], args[2], data)
            except QuarantinedError:
                return b"ABORT"
            return b"GRANTED"
        if command == "commit":
            iq.commit(int(args[0]))
            return b"OK"
        if command == "abort":
            iq.abort(int(args[0]))
            return b"OK"

        # -- multi-key extensions --------------------------------------------
        if command == "iqmget":
            keys, session = split_session_token(args)
            chunks = []
            for key, result in iq.iq_mget(keys, session=session).items():
                if result.is_hit:
                    header = "VALUE {} 0 {}".format(key, len(result.value))
                    chunks.append(header.encode() + CRLF + result.value)
                elif result.has_lease:
                    chunks.append(
                        "LEASE {} {}".format(key, result.token).encode()
                    )
                elif result.backoff:
                    chunks.append("BACKOFF {}".format(key).encode())
                else:
                    chunks.append("MISS {}".format(key).encode())
            chunks.append(b"END")
            return CRLF.join(chunks)
        if command == "qareg":
            results = iq.qar_many(int(args[0]), args[1:])
            chunks = [
                "{} {}".format(_QAREG_WORDS[status], key).encode()
                for key, status in results.items()
            ]
            chunks.append(b"END")
            return CRLF.join(chunks)
        if command == "mdelete":
            hits = sum(1 for key in args if store.delete(key))
            return "DELETED {}".format(hits).encode()
        if command == "keysnap":
            chunks = [
                "KEY {}".format(key).encode() for key in sorted(store.keys())
            ]
            chunks.append(b"END")
            return CRLF.join(chunks)
        raise ProtocolError("unknown command {!r}".format(command))

    def _retrieve(self, store, keys, with_cas):
        chunks = []
        for key in keys:
            if with_cas:
                hit = store.gets(key)
                if hit is not None:
                    value, flags, cas_id = hit
                    header = "VALUE {} {} {} {}".format(
                        key, flags, len(value), cas_id
                    )
                    chunks.append(header.encode() + CRLF + value)
            else:
                hit = store.get(key)
                if hit is not None:
                    value, flags = hit
                    header = "VALUE {} {} {}".format(key, flags, len(value))
                    chunks.append(header.encode() + CRLF + value)
        chunks.append(b"END")
        return CRLF.join(chunks)


class IQTCPServer(socketserver.ThreadingTCPServer):
    """TCP front end for an :class:`IQServer`.

    ``fault_injector`` (a :class:`repro.faults.FaultInjector`) arms the
    ``server.request``, ``server.reply``, and ``net.recv`` hook sites on
    every connection; leave it ``None`` for the zero-overhead default.
    ``on_kill`` is called (on a background thread) after a KILL_SERVER
    fault shuts the listener down -- a chaos controller hooks this to
    schedule the restart.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address=("127.0.0.1", 0), iq_server=None,
                 fault_injector=None):
        super().__init__(address, _Handler)
        self.iq_server = iq_server or IQServer()
        self.fault_injector = fault_injector
        self.on_kill = None
        self._kill_started = False
        self._kill_lock = threading.Lock()
        self._active = set()
        self._active_lock = threading.Lock()

    @property
    def port(self):
        return self.server_address[1]

    def _track(self, sock):
        with self._active_lock:
            self._active.add(sock)

    def _untrack(self, sock):
        with self._active_lock:
            self._active.discard(sock)

    def close_all_connections(self):
        """Sever every live client connection, as a process death would.

        Handler threads blocked in ``recv`` wake with an ``OSError`` and
        exit; clients see the peer reset mid-stream.
        """
        with self._active_lock:
            conns = list(self._active)
            self._active.clear()
        for sock in conns:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def server_close(self):
        super().server_close()
        self.close_all_connections()

    def initiate_kill(self):
        """Shut the server down from a handler thread (KILL_SERVER fault).

        ``shutdown()`` blocks until ``serve_forever`` exits, so it must
        not run on the handler thread itself; a helper thread does the
        teardown and then notifies ``on_kill``.
        """
        with self._kill_lock:
            if self._kill_started:
                return
            self._kill_started = True

        def _teardown():
            self.shutdown()
            self.server_close()
            if self.on_kill is not None:
                self.on_kill()

        threading.Thread(target=_teardown, daemon=True).start()


def serve_background(iq_server=None, address=("127.0.0.1", 0),
                     fault_injector=None):
    """Start an :class:`IQTCPServer` on a daemon thread.

    Returns ``(server, thread)``; call ``server.shutdown()`` to stop.
    """
    server = IQTCPServer(address, iq_server, fault_injector=fault_injector)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread
