"""RemoteIQServer: the IQ command surface over a TCP connection.

Implements the exact method surface of the in-process
:class:`~repro.core.iq_server.IQServer`, so application code --
:class:`~repro.core.iq_client.IQClient`, the consistency clients, the BG
actions -- runs unchanged against a networked cache.  One instance wraps
one socket; it is protected by a lock so several threads may share it
(each request/response exchange is atomic), though one connection per
thread performs better (see :class:`repro.net.resilient.ResilientIQServer`,
which pools connections).

Every command is factored into a *builder* (produces the request line,
optional data block, and a receiver) and a *receiver* (parses exactly one
reply off the stream).  The single-command path sends one frame and runs
one receiver; :class:`Pipeline` queues many builders, sends all frames in
one write, then runs the receivers in request order -- N commands for one
round trip.
"""

import socket
import threading

from repro.errors import (
    ConnectionLostError,
    OperationTimeout,
    ProtocolError,
    QuarantinedError,
)
from repro.core.backend import LeaseBackend
from repro.core.iq_server import IQGetResult, QaReadResult
from repro.kvs.store import ClockGetResult, StoreResult
from repro.net.protocol import (
    CRLF,
    SESSION_TOKEN_PREFIX,
    TRACE_TOKEN_PREFIX,
    LineReader,
)
from repro.obs.trace import current_trace_id, get_tracer


class RemoteIQServer(LeaseBackend):
    """Client-side stub for a networked IQ-Twemcached.

    A socket error or timeout mid-exchange leaves the framed stream
    desynchronized -- the bytes a later caller would read could belong to
    the interrupted reply.  The connection is therefore *poisoned* on the
    first such failure: the socket is closed, the typed error
    (:class:`~repro.errors.ConnectionLostError` /
    :class:`~repro.errors.OperationTimeout`) is raised, and every
    subsequent call fails immediately with :class:`ConnectionLostError`
    until the caller builds a fresh connection (see
    :class:`repro.net.resilient.ResilientIQServer`, which does exactly
    that automatically).  The same discipline covers pipelines: a failure
    anywhere in a pipelined exchange poisons the whole connection --
    later commands never resynchronize onto an earlier command's reply.
    """

    def __init__(self, host="127.0.0.1", port=11211, timeout=10.0,
                 injector=None):
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
        except socket.timeout as exc:
            raise OperationTimeout(
                "connect to {}:{} timed out".format(host, port)
            ) from exc
        except OSError as exc:
            raise ConnectionLostError(
                "cannot connect to {}:{}: {}".format(host, port, exc)
            ) from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = LineReader(self._sock, injector=injector)
        self._lock = threading.Lock()
        self._injector = injector
        self._broken = False
        self._tracer = get_tracer()

    @property
    def broken(self):
        """True once the connection is poisoned and must be replaced."""
        return self._broken

    def close(self):
        if not self._broken:
            try:
                self._sock.sendall(b"quit" + CRLF)
            except OSError:
                pass
        self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- plumbing ------------------------------------------------------------

    def _poison(self, exc, doing):
        """Mark the connection dead and raise the typed failure."""
        self._broken = True
        try:
            self._sock.close()
        except OSError:
            pass
        if self._tracer.active:
            self._tracer.emit("net.poison", command=doing,
                              error=type(exc).__name__)
        if isinstance(exc, socket.timeout):
            raise OperationTimeout(
                "timed out while {}".format(doing)
            ) from exc
        raise ConnectionLostError(
            "connection lost while {}: {}".format(doing, exc)
        ) from exc

    def _mark_broken(self):
        """Poison without raising (the caller raises its own error)."""
        self._broken = True
        try:
            self._sock.close()
        except OSError:
            pass

    def _check_usable(self):
        if self._broken:
            raise ConnectionLostError(
                "connection is poisoned by an earlier failure; reconnect"
            )

    def _inject_send(self, doing):
        from repro.faults.injector import (
            SITE_CLIENT_SEND,
            FaultAction,
        )

        rule = self._injector.perform(SITE_CLIENT_SEND, command=doing)
        if rule is not None and rule.action is FaultAction.DROP_CONNECTION:
            self._poison(
                ConnectionResetError("injected drop before send"), "sending"
            )

    def _inject_after_send(self, doing):
        from repro.faults.injector import (
            SITE_CLIENT_AFTER_SEND,
            FaultAction,
        )

        rule = self._injector.perform(SITE_CLIENT_AFTER_SEND, command=doing)
        if rule is not None and rule.action is FaultAction.DROP_CONNECTION:
            self._poison(
                ConnectionResetError("injected drop after send"),
                "awaiting reply",
            )

    def _send(self, payload, doing):
        """Send request bytes (fault sites fire around the write)."""
        self._check_usable()
        if self._injector is not None:
            self._inject_send(doing)
        try:
            self._sock.sendall(payload)
        except OSError as exc:
            self._poison(exc, doing)
        if self._injector is not None:
            self._inject_after_send(doing)

    def _read_line(self, doing):
        try:
            return self._reader.read_line()
        except (OSError, ConnectionError) as exc:
            self._poison(exc, doing)

    def _read_bytes(self, count, doing):
        try:
            return self._reader.read_bytes(count)
        except ProtocolError:
            # The stream is desynchronized; nobody may read from it again.
            self._mark_broken()
            raise
        except (OSError, ConnectionError) as exc:
            self._poison(exc, doing)

    def _trace_suffix(self):
        """Trailing ``@t<id>`` token, or ``""`` outside any trace.

        Appended after every positional field so the server's data-block
        size indices (counted from the front) keep working untouched.
        """
        if not self._tracer.active:
            return ""
        trace_id = current_trace_id()
        if trace_id is None:
            return ""
        return " {}{}".format(TRACE_TOKEN_PREFIX, trace_id)

    def _frame(self, line, data):
        """Encode one request frame (command line + optional data block)."""
        payload = (line + self._trace_suffix()).encode() + CRLF
        if data is not None:
            payload += data + CRLF
        return payload

    def _execute(self, line, data, receiver):
        """Send one command frame and parse its one reply."""
        payload = self._frame(line, data)
        doing = line.split(" ", 1)[0]
        with self._lock:
            self._send(payload, doing)
            return receiver(doing)

    def _execute_pipeline(self, ops):
        """Send every queued frame in one write, then run the receivers.

        ``ops`` is a list of ``(payload, doing, receiver)``.  Replies come
        back in request order (the server guarantees per-connection
        ordering).  A semantic ``QuarantinedError`` consumes its reply
        completely, so it is stored in the result slot and reading
        continues; any transport or framing failure poisons the whole
        connection and propagates -- the remaining replies are
        unrecoverable by construction, never resynchronized onto.
        """
        with self._lock:
            self._check_usable()
            if self._injector is not None:
                for _payload, doing, _receiver in ops:
                    self._inject_send(doing)
            try:
                self._sock.sendall(b"".join(op[0] for op in ops))
            except OSError as exc:
                self._poison(exc, "pipeline")
            if self._injector is not None:
                self._inject_after_send("pipeline")
            results = []
            for _payload, doing, receiver in ops:
                try:
                    results.append(receiver(doing))
                except QuarantinedError as exc:
                    results.append(exc)
                except ProtocolError:
                    if not self._broken:
                        self._mark_broken()
                    raise
            return results

    def pipeline(self):
        """Return a :class:`Pipeline` batch context over this connection."""
        return Pipeline(self)

    # -- reply receivers -----------------------------------------------------
    #
    # Each receiver parses exactly one command's reply off the stream.
    # Closure-returning receivers bind per-command context (the key for a
    # QuarantinedError, the expected success word).

    def _recv_value_block(self, doing):
        """First line plus, for ``VALUE`` replies, the data (END-checked)."""
        first = self._read_line(doing)
        if not first.startswith(b"VALUE "):
            return first, None
        parts = first.split()
        size = int(parts[3])
        value = self._read_bytes(size, doing)
        end = self._read_line(doing)
        if end != b"END":
            self._mark_broken()
            raise ProtocolError("missing END after VALUE block")
        return first, value

    def _recv_word(self, word):
        def receive(doing):
            return self._read_line(doing) == word
        return receive

    def _recv_store_result(self, doing):
        return StoreResult(self._read_line(doing).decode())

    def _recv_genid(self, doing):
        reply = self._read_line(doing)
        if not reply.startswith(b"ID "):
            raise ProtocolError("bad genid reply {!r}".format(reply))
        return int(reply.split()[1])

    def _recv_iq_get(self, doing):
        reply, value = self._recv_value_block(doing)
        if value is not None:
            return IQGetResult(value=value)
        if reply.startswith(b"LEASE "):
            return IQGetResult(token=int(reply.split()[1]))
        if reply == b"BACKOFF":
            return IQGetResult(backoff=True)
        if reply == b"MISS":
            return IQGetResult()
        raise ProtocolError("bad iqget reply {!r}".format(reply))

    def _recv_qaread(self, key):
        def receive(doing):
            reply, value = self._recv_value_block(doing)
            if reply == b"ABORT":
                raise QuarantinedError(key)
            if value is not None:
                return QaReadResult(value)
            if reply == b"MISS":
                return QaReadResult(None)
            raise ProtocolError("bad qaread reply {!r}".format(reply))
        return receive

    def _recv_lease_grant(self, key):
        """GRANTED-or-ABORT replies (``qar``, ``iqdelta``)."""
        def receive(doing):
            if self._read_line(doing) == b"ABORT":
                raise QuarantinedError(key)
            return True
        return receive

    def _recv_iq_mget(self, doing):
        results = {}
        while True:
            line = self._read_line(doing)
            if line == b"END":
                return results
            parts = line.split()
            if len(parts) < 2:
                raise ProtocolError("bad iqmget reply line {!r}".format(line))
            word, key = parts[0], parts[1].decode()
            if word == b"VALUE":
                size = int(parts[3])
                results[key] = IQGetResult(
                    value=self._read_bytes(size, doing)
                )
            elif word == b"LEASE":
                results[key] = IQGetResult(token=int(parts[2]))
            elif word == b"MISS":
                results[key] = IQGetResult()
            elif word == b"BACKOFF":
                results[key] = IQGetResult(backoff=True)
            else:
                raise ProtocolError("bad iqmget reply line {!r}".format(line))

    def _recv_cget(self, doing):
        first = self._read_line(doing)
        if first.startswith(b"CVALUE "):
            parts = first.split()
            size = int(parts[5])
            value = self._read_bytes(size, doing)
            end = self._read_line(doing)
            if end != b"END":
                self._mark_broken()
                raise ProtocolError("missing END after CVALUE block")
            return ClockGetResult(
                value=value,
                flags=int(parts[2]),
                valid_from=int(parts[3]),
                valid_until=int(parts[4]),
            )
        if first == b"EXPIRED":
            return ClockGetResult(expired=True)
        if first == b"MISS":
            return ClockGetResult()
        raise ProtocolError("bad cget reply {!r}".format(first))

    _QAREG_STATUS = {
        b"GRANTED": "granted",
        b"ABORT": "abort",
        b"UNAVAIL": "unavailable",
    }

    def _recv_qar_many(self, doing):
        results = {}
        while True:
            line = self._read_line(doing)
            if line == b"END":
                return results
            parts = line.split()
            status = self._QAREG_STATUS.get(parts[0])
            if status is None or len(parts) != 2:
                raise ProtocolError("bad qareg reply line {!r}".format(line))
            results[parts[1].decode()] = status

    def _recv_mdelete(self, doing):
        reply = self._read_line(doing)
        if not reply.startswith(b"DELETED "):
            raise ProtocolError("bad mdelete reply {!r}".format(reply))
        return int(reply.split()[1])

    def _recv_key_snapshot(self, doing):
        keys = []
        while True:
            line = self._read_line(doing)
            if line == b"END":
                return keys
            parts = line.split()
            if len(parts) != 2 or parts[0] != b"KEY":
                raise ProtocolError(
                    "bad keysnap reply line {!r}".format(line)
                )
            keys.append(parts[1].decode())

    def _recv_get(self, doing):
        reply, value = self._recv_value_block(doing)
        if value is None:
            return None
        flags = int(reply.split()[2])
        return value, flags

    def _recv_gets(self, doing):
        reply, value = self._recv_value_block(doing)
        if value is None:
            return None
        parts = reply.split()
        return value, int(parts[2]), int(parts[4])

    def _recv_numeric(self, doing):
        reply = self._read_line(doing)
        return None if reply == b"NOT_FOUND" else int(reply)

    def _recv_stats(self, doing):
        result = {}
        while True:
            line = self._read_line(doing)
            if line == b"END":
                return result
            _stat, name, value = line.decode().split()
            result[name] = int(value)

    def _recv_version(self, doing):
        return self._read_line(doing).decode().split(" ", 1)[1]

    # -- command builders ----------------------------------------------------
    #
    # Each returns (line, data, receiver); the public methods execute one,
    # Pipeline queues many.

    def _cmd_gen_id(self):
        return "genid", None, self._recv_genid

    def _cmd_iq_get(self, key, session=None):
        line = "iqget {}".format(key)
        if session is not None:
            line += " {}".format(session)
        return line, None, self._recv_iq_get

    def _cmd_iq_set(self, key, value, token):
        line = "iqset {} {} {}".format(key, token, len(value))
        return line, value, self._recv_word(b"STORED")

    def _cmd_release_i(self, key, token):
        line = "releasei {} {}".format(key, token)
        return line, None, self._recv_word(b"OK")

    def _cmd_qaread(self, key, tid):
        return "qaread {} {}".format(key, tid), None, self._recv_qaread(key)

    def _cmd_sar(self, key, value, tid):
        if value is None:
            line = "sar {} {} -1".format(key, tid)
            return line, None, self._recv_word(b"RELEASED")
        line = "sar {} {} {}".format(key, tid, len(value))
        return line, value, self._recv_word(b"STORED")

    def _cmd_qar(self, tid, key):
        line = "qar {} {}".format(tid, key)
        return line, None, self._recv_lease_grant(key)

    def _cmd_dar(self, tid):
        return "dar {}".format(tid), None, self._recv_word(b"OK")

    def _cmd_iq_delta(self, tid, key, op, operand):
        # incr/decr operands arrive as ints from the in-process API; the
        # wire carries them as an ASCII data block, like memcached does.
        if not isinstance(operand, bytes):
            operand = str(operand).encode()
        line = "iqdelta {} {} {} {}".format(tid, key, op, len(operand))
        return line, operand, self._recv_lease_grant(key)

    def _cmd_commit(self, tid):
        return "commit {}".format(tid), None, self._recv_word(b"OK")

    def _cmd_abort(self, tid):
        return "abort {}".format(tid), None, self._recv_word(b"OK")

    def _cmd_cget(self, key, clock_now, extend=None):
        line = "cget {} {}".format(key, clock_now)
        if extend is not None:
            line += " {}".format(extend)
        return line, None, self._recv_cget

    def _cmd_cset(self, key, value, valid_from, valid_until):
        line = "cset {} {} {} {}".format(
            key, valid_from, valid_until, len(value)
        )
        return line, value, self._recv_word(b"STORED")

    def _cmd_iq_mget(self, keys, session=None):
        line = "iqmget {}".format(" ".join(keys))
        if session is not None:
            line += " {}{}".format(SESSION_TOKEN_PREFIX, session)
        return line, None, self._recv_iq_mget

    def _cmd_qar_many(self, tid, keys):
        line = "qareg {} {}".format(tid, " ".join(keys))
        return line, None, self._recv_qar_many

    def _cmd_mdelete(self, keys):
        return "mdelete {}".format(" ".join(keys)), None, self._recv_mdelete

    def _cmd_key_snapshot(self):
        return "keysnap", None, self._recv_key_snapshot

    def _cmd_get(self, key):
        return "get {}".format(key), None, self._recv_get

    def _cmd_gets(self, key):
        return "gets {}".format(key), None, self._recv_gets

    def _cmd_store(self, verb, key, value, flags, ttl):
        line = "{} {} {} {} {}".format(verb, key, flags, ttl or 0, len(value))
        return line, value, self._recv_store_result

    def _cmd_delete(self, key):
        return "delete {}".format(key), None, self._recv_word(b"DELETED")

    # -- IQ command surface ------------------------------------------------------

    def gen_id(self):
        return self._execute(*self._cmd_gen_id())

    def iq_get(self, key, session=None):
        return self._execute(*self._cmd_iq_get(key, session))

    def iq_set(self, key, value, token):
        return self._execute(*self._cmd_iq_set(key, value, token))

    def release_i(self, key, token):
        return self._execute(*self._cmd_release_i(key, token))

    def qaread(self, key, tid):
        return self._execute(*self._cmd_qaread(key, tid))

    def sar(self, key, value, tid):
        return self._execute(*self._cmd_sar(key, value, tid))

    def propose_refresh(self, key, value, tid):
        raise NotImplementedError(
            "propose_refresh is an in-process optimization hook; the wire "
            "protocol uses qaread/sar"
        )

    def qar(self, tid, key):
        return self._execute(*self._cmd_qar(tid, key))

    def dar(self, tid):
        return self._execute(*self._cmd_dar(tid))

    def iq_delta(self, tid, key, op, operand):
        return self._execute(*self._cmd_iq_delta(tid, key, op, operand))

    def commit(self, tid):
        return self._execute(*self._cmd_commit(tid))

    def abort(self, tid):
        return self._execute(*self._cmd_abort(tid))

    # -- precise-clock commands --------------------------------------------------

    def cget(self, key, clock_now, extend=None):
        """Interval read at commit-clock value ``clock_now`` (``cget``)."""
        return self._execute(*self._cmd_cget(key, clock_now, extend))

    def cset(self, key, value, valid_from, valid_until):
        """Install ``value`` stamped ``[valid_from, valid_until)`` (``cset``)."""
        return self._execute(
            *self._cmd_cset(key, value, valid_from, valid_until)
        )

    # -- multi-key commands ------------------------------------------------------

    def iq_mget(self, keys, session=None):
        """Bulk ``iq_get`` in one round trip (wire command ``iqmget``)."""
        keys = list(keys)
        if not keys:
            return {}
        return self._execute(*self._cmd_iq_mget(keys, session))

    def qar_many(self, tid, keys):
        """Bulk invalidation ``qar`` in one round trip (``qareg``).

        Returns the ordered key -> ``"granted"``/``"abort"``/
        ``"unavailable"`` dict of :meth:`LeaseBackend.qar_many`; the
        server stops at the first reject exactly like sequential ``qar``.
        """
        keys = list(keys)
        if not keys:
            return {}
        return self._execute(*self._cmd_qar_many(tid, keys))

    def mdelete(self, keys):
        """Delete many keys in one round trip; returns the hit count."""
        keys = list(keys)
        if not keys:
            return 0
        return self._execute(*self._cmd_mdelete(keys))

    def key_snapshot(self):
        """Every key currently cached on the server (``keysnap``).

        A point-in-time listing for migration enumeration -- keys may of
        course appear or vanish the moment the reply is framed.
        """
        return self._execute(*self._cmd_key_snapshot())

    # -- standard memcached commands ---------------------------------------------

    def get(self, key):
        return self._execute(*self._cmd_get(key))

    def gets(self, key):
        return self._execute(*self._cmd_gets(key))

    def set(self, key, value, flags=0, ttl=None):
        return self._execute(*self._cmd_store("set", key, value, flags, ttl))

    def add(self, key, value, flags=0, ttl=None):
        return self._execute(*self._cmd_store("add", key, value, flags, ttl))

    def replace(self, key, value, flags=0, ttl=None):
        return self._execute(
            *self._cmd_store("replace", key, value, flags, ttl)
        )

    def append(self, key, suffix):
        return self._execute(
            *self._cmd_store("append", key, suffix, 0, 0)
        )

    def prepend(self, key, prefix):
        return self._execute(
            *self._cmd_store("prepend", key, prefix, 0, 0)
        )

    def cas(self, key, value, cas_id, flags=0, ttl=None):
        line = "cas {} {} {} {} {}".format(
            key, flags, ttl or 0, len(value), cas_id
        )
        return self._execute(line, value, self._recv_store_result)

    def delete(self, key):
        return self._execute(*self._cmd_delete(key))

    def incr(self, key, delta=1):
        return self._execute(
            "incr {} {}".format(key, delta), None, self._recv_numeric
        )

    def decr(self, key, delta=1):
        return self._execute(
            "decr {} {}".format(key, delta), None, self._recv_numeric
        )

    def touch(self, key, ttl):
        return self._execute(
            "touch {} {}".format(key, ttl), None, self._recv_word(b"TOUCHED")
        )

    def flush_all(self):
        return self._execute("flush_all", None, self._recv_word(b"OK"))

    def stats(self):
        return self._execute("stats", None, self._recv_stats)

    def version(self):
        return self._execute("version", None, self._recv_version)


class Pipeline:
    """Batch context: queue commands, send them as one write, read all
    replies in order.

    ::

        with server.pipeline() as pipe:
            pipe.qar(tid, "k1").qar(tid, "k2").commit(tid)
        granted_k1, granted_k2, committed = pipe.results

    Queue methods mirror the single-command surface and return ``self``
    for chaining.  ``execute()`` (called automatically on clean ``with``
    exit) returns the per-command results in request order.  A command
    rejected with :class:`~repro.errors.QuarantinedError` places the
    *exception instance* in its result slot (its reply was fully
    consumed, so later replies still parse); a transport or framing
    failure raises and poisons the whole connection -- partial results
    are never returned and the stream is never resynchronized.

    The trace token for each command is captured when it is queued, so a
    pipeline built inside a traced session tags every frame.
    """

    def __init__(self, conn):
        self._conn = conn
        self._ops = []
        self._executed = False
        #: per-command results after :meth:`execute`, in request order
        self.results = None

    def __len__(self):
        return len(self._ops)

    def _queue(self, line, data, receiver):
        if self._executed:
            raise RuntimeError("pipeline already executed")
        payload = self._conn._frame(line, data)
        self._ops.append((payload, line.split(" ", 1)[0], receiver))
        return self

    def execute(self):
        """Send all queued frames, return all results in request order."""
        if self._executed:
            raise RuntimeError("pipeline already executed")
        self._executed = True
        if not self._ops:
            self.results = []
            return self.results
        self.results = self._conn._execute_pipeline(self._ops)
        return self.results

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None and not self._executed:
            self.execute()
        return False

    # -- queueing surface ----------------------------------------------------

    def gen_id(self):
        return self._queue(*self._conn._cmd_gen_id())

    def iq_get(self, key, session=None):
        return self._queue(*self._conn._cmd_iq_get(key, session))

    def iq_set(self, key, value, token):
        return self._queue(*self._conn._cmd_iq_set(key, value, token))

    def release_i(self, key, token):
        return self._queue(*self._conn._cmd_release_i(key, token))

    def qaread(self, key, tid):
        return self._queue(*self._conn._cmd_qaread(key, tid))

    def sar(self, key, value, tid):
        return self._queue(*self._conn._cmd_sar(key, value, tid))

    def qar(self, tid, key):
        return self._queue(*self._conn._cmd_qar(tid, key))

    def dar(self, tid):
        return self._queue(*self._conn._cmd_dar(tid))

    def iq_delta(self, tid, key, op, operand):
        return self._queue(*self._conn._cmd_iq_delta(tid, key, op, operand))

    def commit(self, tid):
        return self._queue(*self._conn._cmd_commit(tid))

    def abort(self, tid):
        return self._queue(*self._conn._cmd_abort(tid))

    def cget(self, key, clock_now, extend=None):
        return self._queue(*self._conn._cmd_cget(key, clock_now, extend))

    def cset(self, key, value, valid_from, valid_until):
        return self._queue(
            *self._conn._cmd_cset(key, value, valid_from, valid_until)
        )

    def iq_mget(self, keys, session=None):
        return self._queue(*self._conn._cmd_iq_mget(list(keys), session))

    def qar_many(self, tid, keys):
        return self._queue(*self._conn._cmd_qar_many(tid, list(keys)))

    def mdelete(self, keys):
        return self._queue(*self._conn._cmd_mdelete(list(keys)))

    def key_snapshot(self):
        return self._queue(*self._conn._cmd_key_snapshot())

    def get(self, key):
        return self._queue(*self._conn._cmd_get(key))

    def gets(self, key):
        return self._queue(*self._conn._cmd_gets(key))

    def set(self, key, value, flags=0, ttl=None):
        return self._queue(
            *self._conn._cmd_store("set", key, value, flags, ttl)
        )

    def delete(self, key):
        return self._queue(*self._conn._cmd_delete(key))
