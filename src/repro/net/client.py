"""RemoteIQServer: the IQ command surface over a TCP connection.

Implements the exact method surface of the in-process
:class:`~repro.core.iq_server.IQServer`, so application code --
:class:`~repro.core.iq_client.IQClient`, the consistency clients, the BG
actions -- runs unchanged against a networked cache.  One instance wraps
one socket; it is protected by a lock so several threads may share it
(each request/response exchange is atomic), though one connection per
thread performs better.
"""

import socket
import threading

from repro.errors import (
    ConnectionLostError,
    OperationTimeout,
    ProtocolError,
    QuarantinedError,
)
from repro.core.backend import LeaseBackend
from repro.core.iq_server import IQGetResult, QaReadResult
from repro.kvs.store import StoreResult
from repro.net.protocol import CRLF, TRACE_TOKEN_PREFIX, LineReader
from repro.obs.trace import current_trace_id, get_tracer


class RemoteIQServer(LeaseBackend):
    """Client-side stub for a networked IQ-Twemcached.

    A socket error or timeout mid-exchange leaves the framed stream
    desynchronized -- the bytes a later caller would read could belong to
    the interrupted reply.  The connection is therefore *poisoned* on the
    first such failure: the socket is closed, the typed error
    (:class:`~repro.errors.ConnectionLostError` /
    :class:`~repro.errors.OperationTimeout`) is raised, and every
    subsequent call fails immediately with :class:`ConnectionLostError`
    until the caller builds a fresh connection (see
    :class:`repro.net.resilient.ResilientIQServer`, which does exactly
    that automatically).
    """

    def __init__(self, host="127.0.0.1", port=11211, timeout=10.0,
                 injector=None):
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
        except socket.timeout as exc:
            raise OperationTimeout(
                "connect to {}:{} timed out".format(host, port)
            ) from exc
        except OSError as exc:
            raise ConnectionLostError(
                "cannot connect to {}:{}: {}".format(host, port, exc)
            ) from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = LineReader(self._sock, injector=injector)
        self._lock = threading.Lock()
        self._injector = injector
        self._broken = False
        self._tracer = get_tracer()

    @property
    def broken(self):
        """True once the connection is poisoned and must be replaced."""
        return self._broken

    def close(self):
        if not self._broken:
            try:
                self._sock.sendall(b"quit" + CRLF)
            except OSError:
                pass
        self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- plumbing ------------------------------------------------------------

    def _poison(self, exc, doing):
        """Mark the connection dead and raise the typed failure."""
        self._broken = True
        try:
            self._sock.close()
        except OSError:
            pass
        if self._tracer.active:
            self._tracer.emit("net.poison", command=doing,
                              error=type(exc).__name__)
        if isinstance(exc, socket.timeout):
            raise OperationTimeout(
                "timed out while {}".format(doing)
            ) from exc
        raise ConnectionLostError(
            "connection lost while {}: {}".format(doing, exc)
        ) from exc

    def _check_usable(self):
        if self._broken:
            raise ConnectionLostError(
                "connection is poisoned by an earlier failure; reconnect"
            )

    def _inject_send(self, doing):
        from repro.faults.injector import (
            SITE_CLIENT_SEND,
            FaultAction,
        )

        rule = self._injector.perform(SITE_CLIENT_SEND, command=doing)
        if rule is not None and rule.action is FaultAction.DROP_CONNECTION:
            self._poison(
                ConnectionResetError("injected drop before send"), "sending"
            )

    def _inject_after_send(self, doing):
        from repro.faults.injector import (
            SITE_CLIENT_AFTER_SEND,
            FaultAction,
        )

        rule = self._injector.perform(SITE_CLIENT_AFTER_SEND, command=doing)
        if rule is not None and rule.action is FaultAction.DROP_CONNECTION:
            self._poison(
                ConnectionResetError("injected drop after send"),
                "awaiting reply",
            )

    def _exchange(self, payload, doing):
        """Send the request bytes and return the first reply line."""
        self._check_usable()
        if self._injector is not None:
            self._inject_send(doing)
        try:
            self._sock.sendall(payload)
        except OSError as exc:
            self._poison(exc, doing)
        if self._injector is not None:
            self._inject_after_send(doing)
        return self._read_line(doing)

    def _read_line(self, doing):
        try:
            return self._reader.read_line()
        except (OSError, ConnectionError) as exc:
            self._poison(exc, doing)

    def _read_bytes(self, count, doing):
        try:
            return self._reader.read_bytes(count)
        except ProtocolError:
            # The stream is desynchronized; nobody may read from it again.
            self._broken = True
            self._sock.close()
            raise
        except (OSError, ConnectionError) as exc:
            self._poison(exc, doing)

    def _trace_suffix(self):
        """Trailing ``@t<id>`` token, or ``""`` outside any trace.

        Appended after every positional field so the server's data-block
        size indices (counted from the front) keep working untouched.
        """
        if not self._tracer.active:
            return ""
        trace_id = current_trace_id()
        if trace_id is None:
            return ""
        return " {}{}".format(TRACE_TOKEN_PREFIX, trace_id)

    def _roundtrip(self, line, data=None):
        """Send one command (optionally with a data block); read one line."""
        payload = (line + self._trace_suffix()).encode() + CRLF
        if data is not None:
            payload += data + CRLF
        with self._lock:
            return self._exchange(payload, line.split(" ", 1)[0])

    def _roundtrip_value(self, line, data=None):
        """Round trip for commands that may reply ``VALUE``...``END``."""
        payload = (line + self._trace_suffix()).encode() + CRLF
        if data is not None:
            payload += data + CRLF
        doing = line.split(" ", 1)[0]
        with self._lock:
            first = self._exchange(payload, doing)
            if not first.startswith(b"VALUE "):
                return first, None
            parts = first.split()
            size = int(parts[3])
            value = self._read_bytes(size, doing)
            end = self._read_line(doing)
            if end != b"END":
                self._broken = True
                self._sock.close()
                raise ProtocolError("missing END after VALUE block")
            return first, value

    # -- IQ command surface ------------------------------------------------------

    def gen_id(self):
        reply = self._roundtrip("genid")
        if not reply.startswith(b"ID "):
            raise ProtocolError("bad genid reply {!r}".format(reply))
        return int(reply.split()[1])

    def iq_get(self, key, session=None):
        line = "iqget {}".format(key)
        if session is not None:
            line += " {}".format(session)
        reply, value = self._roundtrip_value(line)
        if value is not None:
            return IQGetResult(value=value)
        if reply.startswith(b"LEASE "):
            return IQGetResult(token=int(reply.split()[1]))
        if reply == b"BACKOFF":
            return IQGetResult(backoff=True)
        if reply == b"MISS":
            return IQGetResult()
        raise ProtocolError("bad iqget reply {!r}".format(reply))

    def iq_set(self, key, value, token):
        reply = self._roundtrip(
            "iqset {} {} {}".format(key, token, len(value)), value
        )
        return reply == b"STORED"

    def release_i(self, key, token):
        return self._roundtrip("releasei {} {}".format(key, token)) == b"OK"

    def qaread(self, key, tid):
        reply, value = self._roundtrip_value("qaread {} {}".format(key, tid))
        if reply == b"ABORT":
            raise QuarantinedError(key)
        if value is not None:
            return QaReadResult(value)
        if reply == b"MISS":
            return QaReadResult(None)
        raise ProtocolError("bad qaread reply {!r}".format(reply))

    def sar(self, key, value, tid):
        if value is None:
            reply = self._roundtrip("sar {} {} -1".format(key, tid))
            return reply == b"RELEASED"
        reply = self._roundtrip(
            "sar {} {} {}".format(key, tid, len(value)), value
        )
        return reply == b"STORED"

    def propose_refresh(self, key, value, tid):
        raise NotImplementedError(
            "propose_refresh is an in-process optimization hook; the wire "
            "protocol uses qaread/sar"
        )

    def qar(self, tid, key):
        reply = self._roundtrip("qar {} {}".format(tid, key))
        if reply == b"ABORT":
            raise QuarantinedError(key)
        return True

    def dar(self, tid):
        return self._roundtrip("dar {}".format(tid)) == b"OK"

    def iq_delta(self, tid, key, op, operand):
        # incr/decr operands arrive as ints from the in-process API; the
        # wire carries them as an ASCII data block, like memcached does.
        if not isinstance(operand, bytes):
            operand = str(operand).encode()
        reply = self._roundtrip(
            "iqdelta {} {} {} {}".format(tid, key, op, len(operand)), operand
        )
        if reply == b"ABORT":
            raise QuarantinedError(key)
        return True

    def commit(self, tid):
        return self._roundtrip("commit {}".format(tid)) == b"OK"

    def abort(self, tid):
        return self._roundtrip("abort {}".format(tid)) == b"OK"

    # -- standard memcached commands ---------------------------------------------

    def get(self, key):
        reply, value = self._roundtrip_value("get {}".format(key))
        if value is None:
            return None
        flags = int(reply.split()[2])
        return value, flags

    def gets(self, key):
        reply, value = self._roundtrip_value("gets {}".format(key))
        if value is None:
            return None
        parts = reply.split()
        return value, int(parts[2]), int(parts[4])

    def set(self, key, value, flags=0, ttl=None):
        reply = self._roundtrip(
            "set {} {} {} {}".format(key, flags, ttl or 0, len(value)), value
        )
        return StoreResult(reply.decode())

    def add(self, key, value, flags=0, ttl=None):
        reply = self._roundtrip(
            "add {} {} {} {}".format(key, flags, ttl or 0, len(value)), value
        )
        return StoreResult(reply.decode())

    def replace(self, key, value, flags=0, ttl=None):
        reply = self._roundtrip(
            "replace {} {} {} {}".format(key, flags, ttl or 0, len(value)),
            value,
        )
        return StoreResult(reply.decode())

    def append(self, key, suffix):
        reply = self._roundtrip(
            "append {} 0 0 {}".format(key, len(suffix)), suffix
        )
        return StoreResult(reply.decode())

    def prepend(self, key, prefix):
        reply = self._roundtrip(
            "prepend {} 0 0 {}".format(key, len(prefix)), prefix
        )
        return StoreResult(reply.decode())

    def cas(self, key, value, cas_id, flags=0, ttl=None):
        reply = self._roundtrip(
            "cas {} {} {} {} {}".format(
                key, flags, ttl or 0, len(value), cas_id
            ),
            value,
        )
        return StoreResult(reply.decode())

    def delete(self, key):
        return self._roundtrip("delete {}".format(key)) == b"DELETED"

    def incr(self, key, delta=1):
        reply = self._roundtrip("incr {} {}".format(key, delta))
        return None if reply == b"NOT_FOUND" else int(reply)

    def decr(self, key, delta=1):
        reply = self._roundtrip("decr {} {}".format(key, delta))
        return None if reply == b"NOT_FOUND" else int(reply)

    def touch(self, key, ttl):
        return self._roundtrip("touch {} {}".format(key, ttl)) == b"TOUCHED"

    def flush_all(self):
        return self._roundtrip("flush_all") == b"OK"

    def stats(self):
        with self._lock:
            first = self._exchange(b"stats" + CRLF, "stats")
            result = {}
            line = first
            while True:
                if line == b"END":
                    return result
                _stat, name, value = line.decode().split()
                result[name] = int(value)
                line = self._read_line("stats")

    def version(self):
        reply = self._roundtrip("version")
        return reply.decode().split(" ", 1)[1]
