"""Event-loop TCP server: one thread multiplexing every connection.

The thread-per-connection reference transport
(:class:`~repro.net.server.IQTCPServer`) spends an OS thread -- stack,
scheduler slot, GIL contention -- on every connected client, which caps
a shard at a few hundred connections.  :class:`AsyncIQServer` serves the
same protocol from a single thread over non-blocking sockets and a
``selectors`` readiness loop, so one shard process multiplexes thousands
of connections and the process-per-shard launcher
(:mod:`repro.net.cluster`) can put one such loop on every core.

**Transport parity contract.**  Byte-for-byte, a request stream produces
the same reply stream on either transport:

* framing -- a command line's announced data block is consumed before
  the command is validated (PR 1 discipline), an unknowable size or a
  broken terminator draws one error reply and a close;
* pipelining -- replies are buffered while complete frames remain
  buffered and flushed in one write when the connection would otherwise
  go idle, in request order (PR 5 semantics);
* fault sites -- ``server.request``, ``server.reply``, and ``net.recv``
  fire with the same meaning, so a seeded :class:`FaultPlan` observes
  the same per-command activations on either stack;
* tracing -- a trailing ``@t<id>`` token joins dispatch to the caller's
  trace exactly as on the threaded path.

Dispatch itself is shared (:mod:`repro.net.dispatch`), so the contract
cannot drift command-by-command; only the I/O engine differs.

**Bounded buffering.**  ``NetConfig.max_pipeline_buffer`` caps both
directions per connection.  A frame that never terminates (or announces
a data block beyond the cap) draws an error reply and a close; a peer
that pipelines requests but never reads its replies is disconnected once
the reply backlog passes the cap -- an event loop cannot borrow the
thread-per-connection trick of blocking in ``sendall`` for backpressure,
so the cap is what keeps one misbehaving client from holding the loop's
memory hostage.

The loop exposes its health through the IQ server's stats registry
(``stats`` over the wire): ``evloop_connections`` accepted,
``evloop_flushes`` reply writes, ``evloop_overflow_closes`` cap
disconnects, plus the shared ``pipelined_commands`` batch counter.
"""

import selectors
import socket
import threading

from repro.core.iq_server import IQServer
from repro.errors import ProtocolError
from repro.net.dispatch import bump_stat, dispatch, exception_reply, \
    stat_handle
from repro.net.protocol import (
    CRLF,
    data_block_size,
    error_response,
    parse_command_line,
    split_trace_token,
)
from repro.obs.trace import trace_context

#: recv size per readiness event; large enough to drain a pipelined
#: burst in one syscall.
_RECV_CHUNK = 65536


class _Connection:
    """Per-connection state: read buffer, parse position, reply buffer."""

    __slots__ = (
        "sock", "inbuf", "pos", "out", "batch", "pending", "closing",
        "corrupt_armed", "registered_write", "handler",
    )

    def __init__(self, sock):
        self.sock = sock
        self.inbuf = bytearray()
        self.pos = 0
        self.out = bytearray()
        self.batch = 0
        #: a parsed command line waiting for its announced data block:
        #: (command, args, trace_id, size) -- framing state that survives
        #: a payload arriving one byte per segment.
        self.pending = None
        #: once set, the connection closes as soon as ``out`` drains.
        self.closing = False
        self.corrupt_armed = False
        self.registered_write = False
        #: the selector callback, built once at accept -- re-registering
        #: for writability reuses it instead of minting a new closure on
        #: every readiness toggle.
        self.handler = None

    def available(self):
        return len(self.inbuf) - self.pos


class AsyncIQServer:
    """Non-blocking event-loop front end for an :class:`IQServer`.

    Drop-in for :class:`~repro.net.server.IQTCPServer`: same constructor
    shape, same ``serve_forever``/``shutdown``/``server_close``/
    ``initiate_kill``/``on_kill``/``port`` surface, so
    :class:`~repro.faults.chaos.RestartableServer`, the benches, and the
    CLI run either transport behind one switch.
    """

    def __init__(self, address=("127.0.0.1", 0), iq_server=None,
                 fault_injector=None, net_config=None):
        from repro.config import NetConfig

        self.iq_server = iq_server or IQServer()
        self.fault_injector = fault_injector
        self.max_pipeline_buffer = (
            net_config or NetConfig()
        ).max_pipeline_buffer
        self.on_kill = None

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(address)
        self._listener.listen(1024)
        self._listener.setblocking(False)
        self.server_address = self._listener.getsockname()

        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ,
                                self._on_accept)
        # Cross-thread wakeup: shutdown() writes one byte so a blocked
        # select() returns immediately.
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._selector.register(self._wake_recv, selectors.EVENT_READ,
                                self._on_wakeup)

        # Counter handles resolved once: the per-flush and per-batch
        # bumps are on the loop's hottest path, where bump_stat's
        # reflective probe showed up in low-connection profiles.
        self._count_flush = stat_handle(self.iq_server, "evloop_flushes")
        self._count_pipelined = stat_handle(
            self.iq_server, "pipelined_commands")

        self._conns = {}
        self._shutdown_requested = threading.Event()
        self._loop_done = threading.Event()
        self._loop_done.set()  # not running yet
        self._closed = False
        self._kill_started = False
        self._kill_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self):
        return self.server_address[1]

    def serve_forever(self, poll_interval=0.5):
        """Run the event loop until :meth:`shutdown` (or a kill fault)."""
        self._loop_done.clear()
        try:
            while not self._shutdown_requested.is_set():
                events = self._selector.select(poll_interval)
                for key, mask in events:
                    key.data(key.fileobj, mask)
                    if self._shutdown_requested.is_set():
                        break
        finally:
            self._drain_and_close()
            self._loop_done.set()
            if self._kill_started and self.on_kill is not None:
                # Parity with the threaded initiate_kill: notify off the
                # serving thread once teardown finished.
                threading.Thread(target=self.on_kill, daemon=True).start()

    def shutdown(self):
        """Stop ``serve_forever`` and wait for its graceful drain."""
        self._shutdown_requested.set()
        try:
            self._wake_send.send(b"x")
        except OSError:
            pass
        self._loop_done.wait(timeout=10)

    def server_close(self):
        """Close the listener and every connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._selector.close()
        except (OSError, RuntimeError):
            pass
        for sock in (self._listener, self._wake_recv, self._wake_send):
            try:
                sock.close()
            except OSError:
                pass
        self.close_all_connections()

    def close_all_connections(self):
        """Sever every live client connection, as a process death would."""
        for conn in list(self._conns.values()):
            self._close_conn(conn, abrupt=True)

    def initiate_kill(self):
        """Shut the server down from inside dispatch (KILL_SERVER fault)."""
        with self._kill_lock:
            if self._kill_started:
                return
            self._kill_started = True
        self._shutdown_requested.set()
        try:
            self._wake_send.send(b"x")
        except OSError:
            pass

    def _drain_and_close(self):
        """Graceful drain: flush buffered replies, then close sockets.

        Buffered replies acknowledge commands the server already
        executed; losing them would turn an orderly SIGTERM into
        client-visible ambiguity.  Each connection gets one short
        blocking attempt to land its backlog before the socket closes.
        """
        for conn in list(self._conns.values()):
            if conn.out:
                try:
                    conn.sock.settimeout(0.5)
                    conn.sock.sendall(bytes(conn.out))
                except OSError:
                    pass
        self.server_close()

    # -- event handlers ------------------------------------------------------

    def _on_wakeup(self, sock, _mask):
        try:
            sock.recv(4096)
        except OSError:
            pass

    def _on_accept(self, listener, _mask):
        while True:
            try:
                sock, _addr = listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn = _Connection(sock)
            conn.handler = self._make_conn_handler(conn)
            self._conns[sock.fileno()] = conn
            self._selector.register(sock, selectors.EVENT_READ,
                                    conn.handler)
            bump_stat(self.iq_server, "evloop_connections")

    def _make_conn_handler(self, conn):
        def handle(_sock, mask):
            if mask & selectors.EVENT_WRITE:
                self._on_writable(conn)
            if mask & selectors.EVENT_READ and not conn.closing:
                self._on_readable(conn)
        return handle

    def _on_readable(self, conn):
        injector = self.fault_injector
        if injector is not None and not self._inject_recv(injector, conn):
            return
        try:
            chunk = conn.sock.recv(_RECV_CHUNK)
        except BlockingIOError:
            return
        except OSError:
            self._close_conn(conn, abrupt=True)
            return
        if not chunk:
            # Peer EOF mid-anything: exit quietly, like the threaded
            # handler's ConnectionError path.
            self._close_conn(conn, abrupt=True)
            return
        if conn.corrupt_armed:
            from repro.faults.injector import corrupt_bytes

            chunk = corrupt_bytes(chunk)
            conn.corrupt_armed = False
        conn.inbuf += chunk
        self._process(conn)

    def _inject_recv(self, injector, conn):
        """Fire ``net.recv`` before the read, as LineReader does on every
        refill.  Returns False when the connection was dropped."""
        from repro.faults.injector import SITE_NET_RECV, FaultAction

        rule = injector.perform(SITE_NET_RECV)
        if rule is None:
            return True
        if rule.action is FaultAction.DROP_CONNECTION:
            self._close_conn(conn, abrupt=True)
            return False
        if rule.action is FaultAction.CORRUPT:
            conn.corrupt_armed = True
        return True

    # -- frame processing ----------------------------------------------------

    def _process(self, conn):
        """Drain every complete buffered frame, then flush in one write.

        This is the loop's hottest path, so buffer state lives in locals
        and the consumed prefix is compacted once per pass rather than
        per frame -- at high connection counts the event loop's whole
        throughput claim rests on keeping per-frame overhead below the
        threaded transport's per-thread wakeup cost.
        """
        inbuf = conn.inbuf
        cap = self.max_pipeline_buffer
        while not conn.closing:
            if conn.pending is not None:
                if not self._continue_data_block(conn):
                    break
                continue
            pos = conn.pos
            end = inbuf.find(CRLF, pos)
            if end == -1:
                if len(inbuf) - pos > cap:
                    self._overflow_close(
                        conn,
                        "connection buffered {} bytes, limit {}".format(
                            len(inbuf) - pos, cap
                        ),
                    )
                break
            # memoryview slice: one copy into the line, not two (the
            # view is a same-expression temporary, released before the
            # compaction below mutates the buffer).
            line = bytes(memoryview(inbuf)[pos:end])
            conn.pos = end + len(CRLF)
            self._handle_line(conn, line)
        pos = conn.pos
        if pos:
            if pos == len(inbuf):
                del inbuf[:]
                conn.pos = 0
            elif pos >= 65536:
                del inbuf[:pos]
                conn.pos = 0
        self._flush(conn)

    def _handle_line(self, conn, line):
        try:
            command, args = parse_command_line(line)
        except ProtocolError as exc:
            self._append_reply(conn, error_response(str(exc)), command=None)
            return
        args, trace_id = split_trace_token(args)
        if command == "quit":
            conn.closing = True
            return
        try:
            size = data_block_size(command, args)
        except ProtocolError:
            # Unknowable byte count: the stream is beyond repair.
            conn.out += error_response("bad data block size") + CRLF
            conn.closing = True
            return
        if size is not None:
            if size + len(CRLF) > self.max_pipeline_buffer:
                # Same wording as LineReader.read_bytes on the threaded
                # path, so both transports reply identically.
                self._overflow_close(
                    conn,
                    "connection buffered {} bytes, limit {}".format(
                        size + len(CRLF), self.max_pipeline_buffer
                    ),
                )
                return
            conn.pending = (command, args, trace_id, size)
            return
        self._execute(conn, command, args, trace_id, None)

    def _continue_data_block(self, conn):
        """Try to complete the pending frame; False = need more bytes."""
        command, args, trace_id, size = conn.pending
        needed = size + len(CRLF)
        if conn.available() < needed:
            return False
        start = conn.pos
        data = bytes(memoryview(conn.inbuf)[start:start + size])
        # bytearray indexing yields ints: terminator check without a
        # slice allocation (CRLF is 0x0d 0x0a).
        broken = (conn.inbuf[start + size] != 0x0D
                  or conn.inbuf[start + size + 1] != 0x0A)
        conn.pos += needed
        conn.pending = None
        if broken:
            # Payload not CRLF-terminated: framing is broken (the block
            # was still consumed first, PR 1 discipline).
            conn.out += (
                error_response("data block not terminated by CRLF") + CRLF
            )
            conn.closing = True
            return False
        self._execute(conn, command, args, trace_id, data)
        return True

    def _execute(self, conn, command, args, trace_id, data):
        injector = self.fault_injector
        if injector is not None:
            if not self._inject_request(injector, conn, command):
                return
        try:
            if trace_id is not None:
                with trace_context(trace_id):
                    reply = dispatch(self.iq_server, command, args, data)
            else:
                reply = dispatch(self.iq_server, command, args, data)
        except Exception as exc:
            reply = exception_reply(exc)
        self._append_reply(conn, reply, command)

    def _append_reply(self, conn, reply, command):
        injector = self.fault_injector
        if injector is not None:
            reply = self._inject_reply(injector, conn, command, reply)
            if reply is None:
                return
        conn.out += reply + CRLF
        conn.batch += 1
        if len(conn.out) > self.max_pipeline_buffer:
            # The peer pipelines requests but never reads replies (a
            # half-open flooder).  There is no thread to block for
            # backpressure; cut the connection instead of buffering
            # replies without limit.
            self._close_conn(conn, abrupt=True)
            bump_stat(self.iq_server, "evloop_overflow_closes")

    def _overflow_close(self, conn, message):
        conn.out += error_response(message) + CRLF
        conn.closing = True
        bump_stat(self.iq_server, "evloop_overflow_closes")

    # -- fault hooks ---------------------------------------------------------

    def _inject_request(self, injector, conn, command):
        """Fire ``server.request``; False when the connection died."""
        from repro.faults.injector import SITE_SERVER_REQUEST, FaultAction

        rule = injector.perform(SITE_SERVER_REQUEST, command=command)
        if rule is None:
            return True
        if rule.action is FaultAction.DROP_CONNECTION:
            self._close_conn(conn, abrupt=True)
            return False
        if rule.action is FaultAction.KILL_SERVER:
            self.initiate_kill()
            self._close_conn(conn, abrupt=True)
            return False
        return True

    def _inject_reply(self, injector, conn, command, reply):
        """Fire ``server.reply``; returns the (doctored) reply or None.

        Parity note: buffered replies precede this one in ``conn.out``,
        so wire order matches the threaded server's flush-before-doctor.
        """
        from repro.faults.injector import SITE_SERVER_REPLY, FaultAction
        from repro.faults.injector import corrupt_bytes

        rule = injector.perform(SITE_SERVER_REPLY, command=command)
        if rule is None:
            return reply
        if rule.action is FaultAction.DROP_CONNECTION:
            conn.closing = True
            return None
        if rule.action is FaultAction.TRUNCATE:
            conn.out += reply[: max(1, len(reply) // 2)]
            conn.closing = True
            return None
        if rule.action is FaultAction.CORRUPT:
            return corrupt_bytes(reply)
        return reply

    # -- reply flushing ------------------------------------------------------

    def _flush(self, conn):
        """One write attempt for the whole reply buffer (PR 5 one-write
        flush); the unsent remainder waits for writability."""
        if conn.sock.fileno() < 0:
            return
        if conn.out:
            if conn.batch > 1 and self._count_pipelined is not None:
                self._count_pipelined(conn.batch)
            conn.batch = 0
            try:
                sent = conn.sock.send(conn.out)
            except (BlockingIOError, InterruptedError):
                sent = 0
            except OSError:
                self._close_conn(conn, abrupt=True)
                return
            del conn.out[:sent]
            if self._count_flush is not None:
                self._count_flush()
        if conn.out:
            self._want_write(conn, True)
        else:
            self._want_write(conn, False)
            if conn.closing:
                self._close_conn(conn)

    def _on_writable(self, conn):
        self._flush(conn)

    def _want_write(self, conn, want):
        if want == conn.registered_write:
            return
        conn.registered_write = want
        events = selectors.EVENT_READ
        if want:
            events |= selectors.EVENT_WRITE
        try:
            self._selector.modify(conn.sock, events, conn.handler)
        except (KeyError, ValueError, OSError):
            pass

    def _close_conn(self, conn, abrupt=False):
        self._conns.pop(conn.sock.fileno(), None)
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError, RuntimeError):
            pass
        if abrupt:
            try:
                conn.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        try:
            conn.sock.close()
        except OSError:
            pass
        conn.out = bytearray()
        conn.closing = True
