"""Memcached ASCII wire protocol with IQ lease extensions.

The paper's IQ-Twemcached is a network server spoken to by a modified
Whalin client.  This package provides the equivalent end-to-end path:

* :mod:`repro.net.protocol` -- request/response framing: the standard
  memcached text commands (``get``, ``set``, ``cas``, ``delete``,
  ``incr`` ...) plus the IQ extension commands (``iqget``, ``iqset``,
  ``qaread``, ``sar``, ``genid``, ``qar``, ``dar``, ``iqdelta``,
  ``commit``, ``abort``);
* :mod:`repro.net.server` -- a threaded TCP server exposing an
  :class:`~repro.core.iq_server.IQServer` (the reference transport);
* :mod:`repro.net.async_server` -- the event-loop transport: one thread
  multiplexing every connection over non-blocking sockets, byte-for-byte
  compatible with the threaded server (the transport parity contract);
* :mod:`repro.net.dispatch` -- the shared command dispatcher both
  transports funnel through;
* :mod:`repro.net.cluster` -- process-per-shard deployment: each shard
  of a consistent-hash ring runs in its own OS process with health
  checks, graceful drain, and restart-on-crash supervision;
* :mod:`repro.net.client` -- :class:`RemoteIQServer`, a client with the
  same method surface as the in-process server, so
  :class:`~repro.core.iq_client.IQClient` (and everything built on it)
  runs unchanged over a real socket;
* :mod:`repro.net.resilient` -- :class:`ResilientIQServer`, the
  fault-tolerant wrapper: per-operation timeouts, automatic reconnect,
  idempotency-aware retry, a circuit breaker, and delete-on-recover
  reconciliation (see ``docs/FAULTS.md``).
"""

from repro.net.client import Pipeline, RemoteIQServer
from repro.net.resilient import (
    CircuitBreaker,
    CircuitState,
    ConnectionPool,
    ReconciliationJournal,
    ResilientIQServer,
)
from repro.net.async_server import AsyncIQServer
from repro.net.server import IQTCPServer, serve_background, server_class

__all__ = [
    "AsyncIQServer",
    "CircuitBreaker",
    "CircuitState",
    "ConnectionPool",
    "IQTCPServer",
    "Pipeline",
    "ReconciliationJournal",
    "RemoteIQServer",
    "ResilientIQServer",
    "serve_background",
    "server_class",
]
