"""LinkBench's relational schema.

Mirrors the MySQL schema of Armstrong et al. (SIGMOD'13): a node store,
a typed directed link store keyed on ``(id1, link_type, id2)``, and a
denormalized per-(id1, link_type) count table -- the same shape Facebook
uses for its association lists.
"""

from repro.sql.engine import Database
from repro.sql.schema import Column, TableSchema
from repro.sql.types import INTEGER, TEXT

#: links.visibility values
VISIBILITY_DEFAULT = 1
VISIBILITY_HIDDEN = 0


def nodes_schema():
    return TableSchema(
        "nodes",
        [
            Column("id", INTEGER, nullable=False),
            Column("type", INTEGER, nullable=False),
            Column("version", INTEGER, nullable=False),
            Column("time", INTEGER, nullable=False),
            Column("data", TEXT),
        ],
        primary_key=("id",),
    )


def links_schema():
    return TableSchema(
        "links",
        [
            Column("id1", INTEGER, nullable=False),
            Column("link_type", INTEGER, nullable=False),
            Column("id2", INTEGER, nullable=False),
            Column("visibility", INTEGER, nullable=False),
            Column("time", INTEGER, nullable=False),
            Column("data", TEXT),
        ],
        primary_key=("id1", "link_type", "id2"),
    )


def counts_schema():
    return TableSchema(
        "counts",
        [
            Column("id", INTEGER, nullable=False),
            Column("link_type", INTEGER, nullable=False),
            Column("count", INTEGER, nullable=False),
        ],
        primary_key=("id", "link_type"),
    )


def create_linkbench_database(name="linkdb"):
    db = Database(name)
    db.create_table(nodes_schema())
    db.create_table(links_schema())
    db.create_table(counts_schema())
    db.create_index("links_by_source", "links", ["id1", "link_type"])
    db.create_index("counts_by_pair", "counts", ["id", "link_type"])
    return db
