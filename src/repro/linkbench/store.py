"""The LinkBench operation API as IQ-framework sessions.

Cached entities and their keys:

* ``Node<id>`` -- the node row (JSON);
* ``LinkList<id1>:<type>`` -- visible out-links of (id1, type), a sorted
  JSON list of id2 values (what ``get_link_list`` serves);
* ``LinkCount<id1>:<type>`` -- the denormalized association count, an
  ASCII integer.

Writes run through any consistency client from
:mod:`repro.core.policies`: link lists and node objects are refreshed or
invalidated; counts use ``incr``/``decr`` deltas under the
incremental-update technique, mirroring how the BG actions treat
counters.
"""

from repro.casql.codec import decode, encode
from repro.core.policies import KeyChange
from repro.linkbench.schema import VISIBILITY_DEFAULT


class LinkKeySpace:
    """Key naming for cached LinkBench entities."""

    def node(self, node_id):
        return "Node{}".format(node_id)

    def link_list(self, id1, link_type):
        return "LinkList{}:{}".format(id1, link_type)

    def link_count(self, id1, link_type):
        return "LinkCount{}:{}".format(id1, link_type)


class LinkStore:
    """LinkBench operations over a database + consistency client.

    ``technique`` selects how writes maintain the cache (and must match
    the supplied consistency client): ``"invalidate"`` deletes impacted
    keys, ``"refresh"`` read-modify-writes them, ``"delta"`` drives the
    counts with ``incr``/``decr``, extends link lists with ``append``
    (CSV encoding), and invalidates what no incremental operator can
    express.  ``log`` is an optional
    :class:`~repro.bg.validation.ValidationLog` (items:
    ``("linkcount", (id1, type))`` and ``("linklist", (id1, type))``).
    """

    def __init__(self, db, client, keys=None, log=None,
                 technique="refresh", compute_delay=0.0, write_delay=0.0):
        self.db = db
        self.client = client
        self.keys = keys or LinkKeySpace()
        self.log = log
        #: "invalidate" | "refresh" | "delta" -- must match the client
        self.technique = technique
        #: service-time stand-ins, as in repro.bg.actions (seconds)
        self.compute_delay = compute_delay
        self.write_delay = write_delay

    def _delay(self, seconds):
        if seconds > 0:
            import time

            time.sleep(seconds)

    # -- validation plumbing ----------------------------------------------------

    def _read_items(self, items):
        if self.log is None:
            return None
        return self.log.read_begin(items)

    def _validate(self, item, observed, floors, kind):
        if self.log is None or floors is None or observed is None:
            return True
        return self.log.validate(
            item, observed, floors, self.log.read_end(), kind=kind
        )

    def _record_link_state(self, session, id1, link_type):
        if self.log is None:
            return
        count = session.query_scalar(
            "SELECT count FROM counts WHERE id = ? AND link_type = ?",
            (id1, link_type),
        ) or 0
        rows = session.execute(
            "SELECT id2 FROM links WHERE id1 = ? AND link_type = ?"
            " AND visibility = ?",
            (id1, link_type, VISIBILITY_DEFAULT),
        )
        members = frozenset(r[0] for r in rows)
        log = self.log
        session.on_commit(lambda: (
            log.record(("linkcount", (id1, link_type)), int(count)),
            log.record(("linklist", (id1, link_type)), members),
        ))

    def _write(self, items, sql_body, changes):
        handle = self.log.write_begin(items) if self.log is not None else None
        try:
            return self.client.write(sql_body, changes)
        finally:
            if handle is not None:
                self.log.write_end(handle)

    # -- node operations -----------------------------------------------------------

    def add_node(self, node_id, node_type, data=""):
        def sql_body(session):
            session.execute(
                "INSERT INTO nodes (id, type, version, time, data)"
                " VALUES (?, ?, 0, 0, ?)",
                (node_id, node_type, data),
            )
            return node_id

        return self._write(
            [], sql_body, [KeyChange(self.keys.node(node_id))]
        )

    def get_node(self, node_id):
        def compute():
            connection = self.db.connect()
            try:
                row = connection.query_one(
                    "SELECT * FROM nodes WHERE id = ?", (node_id,)
                )
                self._delay(self.compute_delay)
                return None if row is None else encode(row.as_dict())
            finally:
                connection.close()

        return decode(self.client.read(self.keys.node(node_id), compute))

    def update_node(self, node_id, data):
        key = self.keys.node(node_id)

        def sql_body(session):
            session.execute(
                "UPDATE nodes SET data = ?, version = version + 1"
                " WHERE id = ?",
                (data, node_id),
            )

        def refresher(old):
            if old is None:
                return None
            node = decode(old)
            node["data"] = data
            node["version"] += 1
            return encode(node)

        if self.technique == "delta":
            # No incremental operator rewrites a JSON field: invalidate.
            change = KeyChange(key, invalidate=True)
        else:
            change = KeyChange(key, refresher=refresher)
        return self._write([], sql_body, [change])

    def delete_node(self, node_id):
        def sql_body(session):
            session.execute("DELETE FROM nodes WHERE id = ?", (node_id,))

        return self._write(
            [], sql_body, [KeyChange(self.keys.node(node_id))]
        )

    # -- link operations -----------------------------------------------------------

    def _link_changes(self, id1, link_type, id2, add):
        """KVS impact of adding/removing one link, per technique.

        * invalidate -- delete both keys;
        * refresh -- R-M-W both (JSON list; ASCII count);
        * delta -- counts via incr/decr; list addition via CSV append,
          list removal via invalidation (no incremental operator can
          remove an element), mirroring the BG actions.
        """
        list_key = self.keys.link_list(id1, link_type)
        count_key = self.keys.link_count(id1, link_type)

        if self.technique == "invalidate":
            return [KeyChange(list_key), KeyChange(count_key)]

        if self.technique == "delta":
            changes = []
            if add:
                changes.append(KeyChange(
                    list_key,
                    deltas=[("append", "{},".format(id2).encode("ascii"))],
                ))
            else:
                changes.append(KeyChange(list_key, invalidate=True))
            changes.append(KeyChange(
                count_key, deltas=[("incr" if add else "decr", 1)]
            ))
            return changes

        def list_refresher(old):
            if old is None:
                return None
            members = set(_decode_members(old))
            if add:
                members.add(id2)
            else:
                members.discard(id2)
            return encode(sorted(members))

        def count_refresher(old):
            if old is None:
                return None
            return str(max(0, int(old) + (1 if add else -1))).encode()

        return [
            KeyChange(list_key, refresher=list_refresher),
            KeyChange(count_key, refresher=count_refresher),
        ]

    def add_link(self, id1, link_type, id2, data=""):
        """Insert a link and bump the count; no-op-safe via PK check."""
        items = [
            ("linkcount", (id1, link_type)), ("linklist", (id1, link_type)),
        ]

        def sql_body(session):
            existing = session.query_one(
                "SELECT visibility FROM links"
                " WHERE id1 = ? AND link_type = ? AND id2 = ?",
                (id1, link_type, id2),
            )
            if existing is not None:
                raise _AlreadyExists()
            session.execute(
                "INSERT INTO links (id1, link_type, id2, visibility,"
                " time, data) VALUES (?, ?, ?, ?, 0, ?)",
                (id1, link_type, id2, VISIBILITY_DEFAULT, data),
            )
            updated = session.execute(
                "UPDATE counts SET count = count + 1"
                " WHERE id = ? AND link_type = ?",
                (id1, link_type),
            )
            if updated.rowcount == 0:
                session.execute(
                    "INSERT INTO counts (id, link_type, count)"
                    " VALUES (?, ?, 1)",
                    (id1, link_type),
                )
            self._record_link_state(session, id1, link_type)
            self._delay(self.write_delay)
            return True

        try:
            return self._write(
                items, sql_body,
                self._link_changes(id1, link_type, id2, add=True),
            )
        except _AlreadyExists:
            return None

    def delete_link(self, id1, link_type, id2):
        items = [
            ("linkcount", (id1, link_type)), ("linklist", (id1, link_type)),
        ]

        def sql_body(session):
            removed = session.execute(
                "DELETE FROM links"
                " WHERE id1 = ? AND link_type = ? AND id2 = ?",
                (id1, link_type, id2),
            )
            if removed.rowcount == 0:
                raise _AlreadyExists()
            session.execute(
                "UPDATE counts SET count = count - 1"
                " WHERE id = ? AND link_type = ?",
                (id1, link_type),
            )
            self._record_link_state(session, id1, link_type)
            self._delay(self.write_delay)
            return True

        try:
            return self._write(
                items, sql_body,
                self._link_changes(id1, link_type, id2, add=False),
            )
        except _AlreadyExists:
            return None

    def get_link(self, id1, link_type, id2):
        """Point lookup (uncached in LinkBench's MySQL tier too)."""
        connection = self.db.connect()
        try:
            row = connection.query_one(
                "SELECT * FROM links"
                " WHERE id1 = ? AND link_type = ? AND id2 = ?",
                (id1, link_type, id2),
            )
            return None if row is None else row.as_dict()
        finally:
            connection.close()

    def get_link_list(self, id1, link_type):
        """Cached association list; validated against the ground truth."""
        items = [("linklist", (id1, link_type))]
        floors = self._read_items(items)

        def compute():
            connection = self.db.connect()
            try:
                rows = connection.execute(
                    "SELECT id2 FROM links"
                    " WHERE id1 = ? AND link_type = ? AND visibility = ?",
                    (id1, link_type, VISIBILITY_DEFAULT),
                )
                ids = sorted(r[0] for r in rows)
                self._delay(self.compute_delay)
                if self.technique == "delta":
                    return b"".join(
                        "{},".format(i).encode("ascii") for i in ids
                    )
                return encode(ids)
            finally:
                connection.close()

        raw = self.client.read(self.keys.link_list(id1, link_type), compute)
        members = None if raw is None else frozenset(_decode_members(raw))
        self._validate(items[0], members, floors, "linklist")
        return members

    def count_links(self, id1, link_type):
        """Cached association count; validated against the ground truth."""
        items = [("linkcount", (id1, link_type))]
        floors = self._read_items(items)

        def compute():
            connection = self.db.connect()
            try:
                count = connection.query_scalar(
                    "SELECT count FROM counts"
                    " WHERE id = ? AND link_type = ?",
                    (id1, link_type),
                )
                self._delay(self.compute_delay)
                return encode(int(count or 0))
            finally:
                connection.close()

        raw = self.client.read(self.keys.link_count(id1, link_type), compute)
        count = None if raw is None else decode(raw)
        self._validate(items[0], count, floors, "linkcount")
        return count


def _decode_members(raw):
    """Decode a link list in either the JSON or CSV encoding."""
    if raw.startswith(b"j:"):
        return decode(raw)
    return [int(part) for part in raw.decode("ascii").split(",") if part]


class _AlreadyExists(Exception):
    """Internal: the link already exists / is already gone (no-op)."""
