"""A LinkBench-style social-graph-store workload (paper Section 8).

The paper's future work proposes evaluating the IQ framework with
"other benchmarks such [as] LinkBench [4] and RUBiS".  This package
implements a LinkBench-shaped workload -- Facebook's social-graph store
benchmark of typed nodes, typed directed links, and link counts -- on
top of the same CASQL machinery:

* :mod:`repro.linkbench.schema` -- the ``nodes`` / ``links`` /
  ``counts`` tables;
* :mod:`repro.linkbench.store` -- the LinkBench operation API
  (add/get/update/delete node, add/delete link, get_link,
  get_link_list, count_links) as IQ sessions with cached link lists,
  link counts, and node objects;
* :mod:`repro.linkbench.workload` -- the standard operation mix and a
  multithreaded driver with unpredictable-read validation.
"""

from repro.linkbench.schema import create_linkbench_database
from repro.linkbench.store import LinkStore
from repro.linkbench.workload import (
    LINKBENCH_MIX,
    LinkBenchRunner,
    build_linkbench_system,
)

__all__ = [
    "LINKBENCH_MIX",
    "LinkBenchRunner",
    "LinkStore",
    "build_linkbench_system",
    "create_linkbench_database",
]
