"""LinkBench workload: operation mix, graph seeding, threaded driver.

The operation mix follows the published Facebook production distribution
(Armstrong et al., SIGMOD'13, Table 2), renormalized over the operations
this store implements:

====================  ======
get_link_list         50.7%
count_links            4.9%
get_link               1.9%
get_node              12.9%
update_node            7.4%
add_node               2.6%
delete_node            1.0%
add_link               9.0%
delete_link            3.0%
update (via re-add)    6.6%  -- folded into add_link
====================  ======
"""

import random
import threading
import time

from repro.bg.metrics import BenchmarkResult
from repro.bg.validation import ValidationLog
from repro.bg.zipfian import ZipfianGenerator, exponent_for_hotspot
from repro.core.iq_client import IQClient
from repro.core.iq_server import IQServer
from repro.core.policies import (
    BaselineDeltaClient,
    BaselineInvalidateClient,
    BaselineRefreshClient,
    IQDeltaClient,
    IQInvalidateClient,
    IQRefreshClient,
)
from repro.core.session import SessionOutcome
from repro.errors import QuarantinedError, TransactionAbortedError
from repro.kvs.read_lease import ReadLeaseStore
from repro.linkbench.schema import create_linkbench_database
from repro.linkbench.store import LinkStore
from repro.util.histogram import LatencyHistogram

LINKBENCH_MIX = {
    "get_link_list": 50.7,
    "count_links": 4.9,
    "get_link": 1.9,
    "get_node": 12.9,
    "update_node": 7.4,
    "add_node": 2.6,
    "delete_node": 1.0,
    "add_link": 15.6,
    "delete_link": 3.0,
}

LINK_TYPE = 1


class LinkGraphState:
    """Driver-side ground truth of which links exist (operand selection)."""

    def __init__(self, node_count, initial_degree):
        self._lock = threading.Lock()
        self.node_count = node_count
        self._links = {
            id1: set(
                (id1 + offset + 1) % node_count
                for offset in range(initial_degree)
            )
            for id1 in range(node_count)
        }
        self._claimed = set()
        self._next_node = node_count

    def initial_links_of(self, id1):
        return frozenset(
            (id1 + offset + 1) % self.node_count
            for offset in range(len(self._links[id1]))
        )

    def claim_add(self, rng, attempts=16):
        with self._lock:
            for _ in range(attempts):
                id1 = rng.randrange(self.node_count)
                id2 = rng.randrange(self.node_count)
                if id1 == id2:
                    continue
                if id2 in self._links[id1]:
                    continue
                pair = (id1, id2)
                if pair in self._claimed:
                    continue
                self._claimed.add(pair)
                return pair
            return None

    def claim_delete(self, rng, attempts=16):
        with self._lock:
            for _ in range(attempts):
                id1 = rng.randrange(self.node_count)
                if not self._links[id1]:
                    continue
                id2 = next(iter(self._links[id1]))
                pair = (id1, id2)
                if pair in self._claimed:
                    continue
                self._claimed.add(pair)
                return pair
            return None

    def complete(self, pair, kind, succeeded):
        with self._lock:
            self._claimed.discard(pair)
            if not succeeded:
                return
            id1, id2 = pair
            if kind == "add":
                self._links[id1].add(id2)
            else:
                self._links[id1].discard(id2)

    def fresh_node_id(self):
        with self._lock:
            node_id = self._next_node
            self._next_node += 1
            return node_id


def seed_graph(db, node_count, initial_degree):
    """Load nodes, ring links, and counts deterministically."""
    connection = db.connect()
    try:
        for node_id in range(node_count):
            connection.execute(
                "INSERT INTO nodes (id, type, version, time, data)"
                " VALUES (?, 1, 0, 0, ?)",
                (node_id, "node{}".format(node_id)),
            )
        for id1 in range(node_count):
            for offset in range(initial_degree):
                id2 = (id1 + offset + 1) % node_count
                connection.execute(
                    "INSERT INTO links (id1, link_type, id2, visibility,"
                    " time, data) VALUES (?, ?, ?, 1, 0, '')",
                    (id1, LINK_TYPE, id2),
                )
            connection.execute(
                "INSERT INTO counts (id, link_type, count) VALUES (?, ?, ?)",
                (id1, LINK_TYPE, initial_degree),
            )
    finally:
        connection.close()


class LinkBenchSystem:
    """Assembled components of one LinkBench configuration."""

    def __init__(self, db, cache, store, state, log):
        self.db = db
        self.cache = cache
        self.store = store
        self.state = state
        self.log = log


def build_linkbench_system(nodes=100, initial_degree=4, leased=True,
                           technique="refresh", compute_delay=0.0,
                           write_delay=0.0, backoff=None):
    """Build a LinkBench deployment mirroring the BG harness's shape."""
    db = create_linkbench_database()
    seed_graph(db, nodes, initial_degree)
    log = ValidationLog()
    state = LinkGraphState(nodes, initial_degree)
    for id1 in range(nodes):
        log.register(("linkcount", (id1, LINK_TYPE)), initial_degree)
        log.register(
            ("linklist", (id1, LINK_TYPE)), state.initial_links_of(id1)
        )

    if leased:
        server = IQServer()
        iq_client = IQClient(server, backoff=backoff)
        client_class = {
            "invalidate": IQInvalidateClient,
            "refresh": IQRefreshClient,
            "delta": IQDeltaClient,
        }[technique]
        client = client_class(iq_client, db.connect, backoff=backoff)
        cache = server
    else:
        cache = ReadLeaseStore()
        client_class = {
            "invalidate": BaselineInvalidateClient,
            "refresh": BaselineRefreshClient,
            "delta": BaselineDeltaClient,
        }[technique]
        client = client_class(cache, db.connect, backoff=backoff)

    store = LinkStore(
        db, client, log=log, technique=technique,
        compute_delay=compute_delay, write_delay=write_delay,
    )
    return LinkBenchSystem(db, cache, store, state, log)


class LinkBenchRunner:
    """Multithreaded LinkBench driver with validation."""

    RETRIES = 20

    def __init__(self, system, mix=None, seed=99, hotspot=(0.2, 0.7)):
        self.system = system
        self.mix = dict(mix or LINKBENCH_MIX)
        self.seed = seed
        self._names = list(self.mix)
        self._weights = [self.mix[n] for n in self._names]
        self.exponent = exponent_for_hotspot(
            self.system.state.node_count, *hotspot
        )

    def _one(self, name, rng, zipf, stats):
        store = self.system.store
        state = self.system.state
        node = zipf.next()
        if name == "get_link_list":
            store.get_link_list(node, LINK_TYPE)
        elif name == "count_links":
            store.count_links(node, LINK_TYPE)
        elif name == "get_link":
            store.get_link(node, LINK_TYPE, (node + 1) % state.node_count)
        elif name == "get_node":
            store.get_node(node)
        elif name == "update_node":
            self._retrying(
                lambda: store.update_node(node, "d{}".format(rng.random())),
                stats,
            )
        elif name == "add_node":
            self._retrying(
                lambda: store.add_node(state.fresh_node_id(), 1), stats
            )
        elif name == "delete_node":
            # Deleting seeded nodes would break operand selection; delete
            # a previously added extra node when one exists.
            extra = state.fresh_node_id()
            self._retrying(lambda: store.add_node(extra, 1), stats)
            self._retrying(lambda: store.delete_node(extra), stats)
        elif name == "add_link":
            pair = state.claim_add(rng)
            if pair is None:
                store.get_link_list(node, LINK_TYPE)
                return
            ok = self._retrying(
                lambda: store.add_link(pair[0], LINK_TYPE, pair[1]), stats
            )
            state.complete(pair, "add", ok)
        elif name == "delete_link":
            pair = state.claim_delete(rng)
            if pair is None:
                store.count_links(node, LINK_TYPE)
                return
            ok = self._retrying(
                lambda: store.delete_link(pair[0], LINK_TYPE, pair[1]),
                stats,
            )
            state.complete(pair, "delete", ok)
        else:
            raise ValueError(name)

    def _retrying(self, operation, stats):
        attempts = 0
        while True:
            try:
                outcome = operation()
                if isinstance(outcome, SessionOutcome):
                    stats["restarts"].append(outcome.restarts + attempts)
                return True
            except (QuarantinedError, TransactionAbortedError):
                attempts += 1
                if attempts >= self.RETRIES:
                    stats["errors"] += 1
                    return False
                time.sleep(0.0005 * attempts)

    def run(self, threads=4, ops_per_thread=100):
        latency = LatencyHistogram()
        stats = {"restarts": [], "errors": 0, "ops": 0}
        stats_lock = threading.Lock()
        failures = []

        def worker(index):
            rng = random.Random(self.seed + 31 * index)
            zipf = ZipfianGenerator(
                self.system.state.node_count, exponent=self.exponent,
                rng=random.Random(self.seed ^ index), scramble=True,
            )
            local = {"restarts": [], "errors": 0, "ops": 0}
            try:
                for _ in range(ops_per_thread):
                    name = rng.choices(
                        self._names, weights=self._weights, k=1
                    )[0]
                    start = time.monotonic()
                    self._one(name, rng, zipf, local)
                    latency.record(time.monotonic() - start)
                    local["ops"] += 1
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)
            finally:
                with stats_lock:
                    stats["restarts"].extend(local["restarts"])
                    stats["errors"] += local["errors"]
                    stats["ops"] += local["ops"]

        started = time.monotonic()
        pool = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        if failures:
            raise failures[0]
        elapsed = time.monotonic() - started
        return BenchmarkResult(
            mix_name="linkbench",
            threads=threads,
            duration=elapsed,
            actions=stats["ops"],
            reads=stats["ops"] - len(stats["restarts"]),
            writes=len(stats["restarts"]),
            latency=latency,
            restarts=stats["restarts"],
            validation=self.system.log,
            errors=stats["errors"],
        )
