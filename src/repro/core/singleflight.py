"""Per-process miss coalescing (singleflight) for the consistency clients.

The paper's I lease already elects one *filler* per key server-side: a
concurrent reader is told to back off, and sleep-and-repolls the wire
until the filler's ``IQset`` lands.  After a ``flush_all`` that repoll
traffic is a thundering herd -- N readers, one key, N x (round trips +
backoff sleeps).  Misra et al.'s complementary client-side move is to
share the one in-flight fill among every co-located reader: waiters
block on the filler's outcome instead of re-polling.

The safety rule (the *fencing rule*, proved in ``repro.mc`` by the
``coalesced-*`` scenarios and their unfenced losing variant):

* the filler **unregisters the flight before installing**, so nobody can
  join after the install -- every waiter's read window opened before the
  installed value was current;
* an IQ waiter consumes the outcome **only when the install was applied**
  (``iq_set`` redeemed a live I lease).  A refused install proves an
  invalidation -- Q grant, ``delete``, ``flush_all`` -- intervened during
  the fill; the *filler* may still return its own computed value (its
  read serializes before the racing writer, Section 3.2), but a waiter
  may have started *after* that writer committed, so it must retry the
  wire path instead;
* a clock waiter consumes the outcome **only while its own promised
  reading falls inside the fill's validity interval**
  (``valid_from <= reading < valid_until``) -- interval expiry is
  arithmetic, so the fence is too.

A :class:`SingleFlight` instance is per client (per process): it never
talks to the wire and holds its lock only for dictionary bookkeeping.
"""

import threading

__all__ = ["FillOutcome", "Flight", "SingleFlight"]


class FillOutcome:
    """What a resolved flight produced.

    ``applied`` carries the IQ fence (the install redeemed a live I
    lease); ``valid_from``/``valid_until`` carry the clock fence (the
    interval the fill's promise covers).
    """

    __slots__ = ("value", "applied", "valid_from", "valid_until")

    def __init__(self, value, applied=False, valid_from=None,
                 valid_until=None):
        self.value = value
        self.applied = applied
        self.valid_from = valid_from
        self.valid_until = valid_until

    def covers(self, reading):
        """Clock fence: does this fill's interval cover ``reading``?"""
        return (self.valid_from is not None
                and self.valid_until is not None
                and self.valid_from <= reading < self.valid_until)

    def __repr__(self):
        return ("FillOutcome(value={!r}, applied={}, interval=[{}, {}))"
                .format(self.value, self.applied, self.valid_from,
                        self.valid_until))


class Flight:
    """One in-flight fill; waiters block on :meth:`wait`."""

    __slots__ = ("_event", "outcome")

    def __init__(self):
        self._event = threading.Event()
        self.outcome = None

    def resolve(self, outcome):
        """Publish the fill's outcome and wake every waiter."""
        self.outcome = outcome
        self._event.set()

    def wait(self, timeout):
        """Block up to ``timeout`` seconds; the outcome, or ``None``.

        ``None`` covers both a timeout and an abandoned flight (the
        filler crashed or computed nothing); :attr:`resolved` tells the
        two apart -- a waiter keeps parking on an unresolved flight but
        falls back to the wire path once the flight is abandoned.
        """
        if self._event.wait(timeout):
            return self.outcome
        return None

    @property
    def resolved(self):
        """True once the filler resolved (or abandoned) this flight."""
        return self._event.is_set()


class SingleFlight:
    """Registry of at most one in-flight fill per key."""

    def __init__(self):
        self._lock = threading.Lock()
        self._flights = {}
        #: waiters served from a filler's outcome (fence passed)
        self.coalesced = 0
        #: waiters that joined a flight but had to retry (fence refused,
        #: flight abandoned, or wait timed out)
        self.refused = 0

    def begin(self, key):
        """Register a new flight for ``key`` (the caller is the filler).

        Replaces any still-registered prior flight: the replaced
        filler's eventual ``resolve`` still serves the waiters already
        holding it.
        """
        flight = Flight()
        with self._lock:
            self._flights[key] = flight
        return flight

    def join(self, key):
        """The registered flight for ``key``, or ``None``."""
        with self._lock:
            return self._flights.get(key)

    def unregister(self, key, flight):
        """Remove ``flight`` from the registry *before* its install.

        Ordering is the point: once unregistered, no new waiter can
        join, so everyone holding the flight joined before the install
        -- the half of the fencing rule the registry enforces.
        """
        with self._lock:
            if self._flights.get(key) is flight:
                del self._flights[key]

    def abandon(self, key, flight):
        """Unregister and resolve with no outcome (fill failed/empty)."""
        self.unregister(key, flight)
        flight.resolve(None)

    def note(self, served):
        with self._lock:
            if served:
                self.coalesced += 1
            else:
                self.refused += 1

    def in_flight(self):
        """Number of registered flights (diagnostics)."""
        with self._lock:
            return len(self._flights)
