"""LeaseBackend: the abstract IQ command surface.

The paper's Section 5 defines ten commands; everything above the cache
tier -- :class:`~repro.core.iq_client.IQClient`, the write-session model,
the consistency clients, the BG harness -- needs exactly that surface and
nothing else.  This module names it, so the cache tier is pluggable:

* :class:`~repro.core.iq_server.IQServer` -- the in-process server;
* :class:`~repro.net.client.RemoteIQServer` -- the same surface over TCP;
* :class:`~repro.net.resilient.ResilientIQServer` -- the fault-tolerant
  TCP client (timeouts, reconnect, circuit breaker, journal);
* :class:`~repro.sharding.ShardedIQServer` -- N backends behind a
  consistent-hash router, each itself any of the above.

The composition is closed under itself: a sharded router over resilient
remotes over restartable servers still *is* a ``LeaseBackend``, which is
what lets every consistency technique run unchanged against any cache
tier topology.

Implementations must honour two cross-cutting contracts that the
sessions' safety argument relies on:

* ``commit``/``abort``/``dar`` of an unknown or already-finished TID are
  no-ops (a retried or zombie terminator cannot double-apply);
* a Q lease's finite lifetime deletes its key on expiry (Section 4.2
  condition 3), so a backend that loses its client mid-session converges
  to a safe state on its own.
"""

import abc


class LeaseBackend(abc.ABC):
    """Abstract base class for anything that can serve IQ sessions.

    The methods mirror :class:`~repro.core.iq_server.IQServer` exactly --
    the ten commands of Section 5 plus the two client-visible helpers
    (``release_i`` for an unredeemed I lease, ``propose_refresh`` for the
    Section 4.2.2 buffered-refresh optimization) and ``flush_all`` for
    test isolation.
    """

    # -- session identity ----------------------------------------------------

    @abc.abstractmethod
    def gen_id(self):
        """Command 5, ``GenID``: mint a unique session identifier."""

    # -- reads ---------------------------------------------------------------

    @abc.abstractmethod
    def iq_get(self, key, session=None):
        """Command 1, ``IQget``: read; may grant an I lease on a miss."""

    @abc.abstractmethod
    def iq_set(self, key, value, token):
        """Command 2, ``IQset``: install a value under a live I token."""

    @abc.abstractmethod
    def release_i(self, key, token):
        """Relinquish an unredeemed I lease."""

    # -- refresh (R-M-W) -----------------------------------------------------

    @abc.abstractmethod
    def qaread(self, key, tid):
        """Command 3, ``QaRead``: exclusive Q lease + read."""

    @abc.abstractmethod
    def sar(self, key, value, tid):
        """Command 4, ``SaR``: swap the value, release the Q lease."""

    @abc.abstractmethod
    def propose_refresh(self, key, value, tid):
        """Section 4.2.2: buffer a refresh value until ``commit``."""

    # -- invalidate ----------------------------------------------------------

    @abc.abstractmethod
    def qar(self, tid, key):
        """Command 6, ``QaR``: quarantine-and-register for invalidation."""

    def dar(self, tid):
        """Command 7, ``DaR``: apply registered deletes, release leases.

        Defined as ``commit`` on every backend in this repository.
        """
        return self.commit(tid)

    def qar_many(self, tid, keys):
        """Bulk ``QaR``: acquire invalidation Q leases for ``keys`` in order.

        Returns an ordered dict mapping each *attempted* key to one of
        ``"granted"``, ``"abort"`` (Q-Q incompatibility -- acquisition
        stops, exactly like a sequential run of :meth:`qar`), or
        ``"unavailable"`` (that key's backend was unreachable; the caller
        degrades it individually and acquisition continues).  Keys after
        an ``"abort"`` are never attempted and are absent from the result.

        The default implementation loops :meth:`qar`; wire and sharded
        backends override it with a single round trip per server.
        """
        from repro.errors import CacheUnavailableError, QuarantinedError

        results = {}
        for key in keys:
            try:
                self.qar(tid, key)
            except QuarantinedError:
                results[key] = "abort"
                break
            except CacheUnavailableError:
                results[key] = "unavailable"
                continue
            results[key] = "granted"
        return results

    def iq_mget(self, keys, session=None):
        """Bulk ``IQget``: read ``keys`` in order, granting I leases on
        misses exactly as :meth:`iq_get` would.

        Returns an ordered dict mapping each key to its
        :class:`~repro.core.iq_server.IQGetResult`.  The default
        implementation loops :meth:`iq_get`; wire and sharded backends
        override it with a single round trip per server.
        """
        return {key: self.iq_get(key, session=session) for key in keys}

    # -- precise-clock reads (lease-free; repro.clock) -------------------------

    def cget(self, key, clock_now, extend=None):
        """Interval read at commit-clock reading ``clock_now``.

        Serves a cached value only while its validity interval covers
        ``clock_now`` -- the lease-free read path of the precise-clock
        technique.  Every backend in this repository implements it; the
        default raises so a third-party backend that predates the
        command fails loudly rather than serving unvalidated data.
        """
        raise NotImplementedError(
            "{} does not implement cget".format(type(self).__name__)
        )

    def cset(self, key, value, valid_from, valid_until):
        """Install ``value`` stamped with ``[valid_from, valid_until)``."""
        raise NotImplementedError(
            "{} does not implement cset".format(type(self).__name__)
        )

    # -- incremental update --------------------------------------------------

    @abc.abstractmethod
    def iq_delta(self, tid, key, op, operand):
        """Command 8, ``IQ-delta``: propose an incremental change."""

    # -- session termination -------------------------------------------------

    @abc.abstractmethod
    def commit(self, tid):
        """Command 9: apply the session's proposals, release its leases."""

    @abc.abstractmethod
    def abort(self, tid):
        """Command 10: discard proposals, release leases, keep values."""

    # -- plumbing ------------------------------------------------------------

    @abc.abstractmethod
    def flush_all(self):
        """Drop every value, lease, and in-flight session."""
