"""The IQ framework: Inhibit/Quarantine leases over a Twemcache-style KVS.

This package is the paper's primary contribution:

* :mod:`repro.core.leases` -- the lease table implementing the
  compatibility matrices of Figure 5 (5a for invalidate, 5b for
  refresh/incremental update), with finite lease lifetimes;
* :mod:`repro.core.iq_server` -- IQ-Twemcached: the KVS extended with the
  ten commands of Section 5 (IQget, IQset, QaRead, SaR, GenID, QaR, DaR,
  IQ-delta, Commit, Abort) and the Section 3.3 / 4.2.2 optimizations;
* :mod:`repro.core.iq_client` -- the client that manages lease tokens and
  backoff transparently on behalf of sessions;
* :mod:`repro.core.session` -- the session programming model (2PL-like
  lease discipline around an RDBMS transaction) with the two acquisition
  strategies of Section 6.2 (prior to vs during the transaction);
* :mod:`repro.core.policies` -- invalidate / refresh / incremental-update
  write-session strategies, in both IQ-leased and unleased (raceful
  baseline) variants.
"""

from repro.core.backend import LeaseBackend
from repro.core.iq_client import IQClient
from repro.core.iq_server import IQGetResult, IQServer, QaReadResult
from repro.core.leases import LeaseTable, QMode
from repro.core.session import AcquisitionMode, SessionRunner

__all__ = [
    "AcquisitionMode",
    "IQClient",
    "LeaseBackend",
    "IQGetResult",
    "IQServer",
    "LeaseTable",
    "QMode",
    "QaReadResult",
    "SessionRunner",
]
