"""Multi-transaction sessions (the paper's Section 8 research question).

The published IQ framework "limits a session to at most one RDBMS
transaction"; the authors pose as future work "whether the framework
provides strong consistency guarantees for sessions consisting of
multiple RDBMS transactions".

This module implements the natural generalization and the library's
answer: **yes, provided the 2PL discipline is stretched across the whole
session** --

* the session's *growing phase* spans every constituent transaction: Q
  leases accumulate (never release) until the last transaction commits;
* the *shrinking phase* -- applying KVS changes and releasing leases --
  happens only after the final commit;
* if any constituent transaction aborts, or any lease request is
  rejected, the entire session aborts: every already-committed
  constituent transaction is *compensated* (its registered undo action
  runs in its own transaction) and all leases are released without
  applying KVS changes.

The compensation requirement is the real cost surfaced by the
generalization: the RDBMS cannot atomically abort a transaction it
already committed, so the application must supply logical undo --
exactly the saga pattern.  The exhaustive-interleaving tests in
``tests/core/test_multi.py`` check that no schedule of a reader against
a two-transaction writer leaves stale data in the KVS.
"""

from repro.config import BackoffConfig
from repro.errors import (
    QuarantinedError,
    SessionAbortedError,
    TransactionAbortedError,
)
from repro.obs.trace import get_tracer, trace_context
from repro.util.backoff import ExponentialBackoff
from repro.util.clock import SystemClock


class CompensationError(SessionAbortedError):
    """A compensating transaction failed; manual intervention needed.

    The session's KVS keys have been *deleted* (safety via deletion) so
    no stale value can be served while the database is repaired.
    """

    def __init__(self, original, failures):
        super().__init__(
            "compensation failed for {} step(s)".format(len(failures)),
            retriable=False,
        )
        self.original = original
        self.failures = failures


class MultiTransactionSession:
    """A session spanning several RDBMS transactions under one TID.

    Usage::

        session = MultiTransactionSession(iq_client, db.connect)
        session.qar(key1)                      # growing phase: leases
        with session.transaction(undo=undo1) as txn:
            txn.execute(...)                   # constituent transaction 1
        session.qaread(key2)
        with session.transaction(undo=undo2) as txn:
            txn.execute(...)                   # constituent transaction 2
        session.sar(key2, new_value)           # stage KVS changes
        session.commit()                       # shrinking phase

    ``undo`` callables receive a live connection inside a fresh
    transaction and must logically reverse their step.
    """

    def __init__(self, client, connection_factory):
        self.kvs = client
        self.connection_factory = connection_factory
        self._tracer = get_tracer()
        #: One trace id spans every constituent transaction and KVS call.
        self.trace_id = self._tracer.new_trace() if self._tracer.active else None
        with trace_context(self.trace_id):
            self.tid = client.gen_id()
        if self.trace_id is not None:
            self._tracer.emit("session.begin", tid=self.tid,
                              trace_id=self.trace_id, multi=True)
        #: (description, undo) for each committed constituent transaction
        self._completed = []
        #: staged (key, value) pairs applied at commit via SaR
        self._staged_sar = []
        self._quarantined = set()
        self._finished = False

    # -- growing phase: leases -----------------------------------------------

    def _check_open(self):
        if self._finished:
            raise SessionAbortedError("session already finished")

    def qar(self, key):
        """Quarantine ``key`` for invalidation at session commit."""
        self._check_open()
        try:
            with trace_context(self.trace_id):
                self.kvs.qar(self.tid, key)
        except QuarantinedError:
            self.abort()
            raise
        self._quarantined.add(key)

    def qaread(self, key):
        """Quarantine ``key`` exclusively and read its current value."""
        self._check_open()
        try:
            with trace_context(self.trace_id):
                result = self.kvs.qaread(key, self.tid)
        except QuarantinedError:
            self.abort()
            raise
        self._quarantined.add(key)
        return result.value

    def delta(self, key, op, operand):
        """Propose an incremental change, applied at session commit."""
        self._check_open()
        try:
            with trace_context(self.trace_id):
                self.kvs.iq_delta(self.tid, key, op, operand)
        except QuarantinedError:
            self.abort()
            raise
        self._quarantined.add(key)

    def sar_at_commit(self, key, value):
        """Stage a refresh value; the SaR runs at session commit."""
        self._check_open()
        if key not in self._quarantined:
            raise SessionAbortedError(
                "sar_at_commit on {!r} without a Q lease".format(key),
                retriable=False,
            )
        self._staged_sar.append((key, value))

    # -- constituent transactions -----------------------------------------------

    def transaction(self, undo=None, description=None):
        """Open the next constituent transaction (context manager)."""
        self._check_open()
        return _ConstituentTransaction(self, undo, description)

    @property
    def completed_transactions(self):
        return len(self._completed)

    # -- shrinking phase -------------------------------------------------------------

    def commit(self):
        """Apply every staged KVS change and release all leases."""
        self._check_open()
        with trace_context(self.trace_id):
            for key, value in self._staged_sar:
                self.kvs.sar(key, value, self.tid)
            # Registered invalidations and deltas apply inside Commit(TID).
            self.kvs.commit(self.tid)
        self._finished = True
        if self.trace_id is not None:
            self._tracer.emit("session.end", tid=self.tid,
                              trace_id=self.trace_id, how="commit")

    def abort(self):
        """Undo committed constituent transactions; release all leases.

        Compensations run newest-first.  KVS proposals are discarded and
        the quarantined keys keep their pre-session values -- unless a
        compensation fails, in which case those keys are deleted (the
        framework's safety-via-deletion) and :class:`CompensationError`
        is raised.
        """
        if self._finished:
            return
        self._finished = True
        failures = []
        for description, undo in reversed(self._completed):
            if undo is None:
                failures.append((description, "no undo registered"))
                continue
            connection = self.connection_factory()
            try:
                connection.begin()
                undo(connection)
                connection.commit()
            except Exception as exc:  # noqa: BLE001 - collected and re-raised
                if connection.in_transaction:
                    connection.rollback()
                failures.append((description, repr(exc)))
            finally:
                connection.close()
        if failures:
            # Safety via deletion: purge the keys whose database state is
            # now uncertain, then release the leases.
            with trace_context(self.trace_id):
                for key in self._quarantined:
                    self.kvs.server.store.delete(key)
                self.kvs.abort(self.tid)
            if self.trace_id is not None:
                self._tracer.emit("session.end", tid=self.tid,
                                  trace_id=self.trace_id, how="compensation")
            raise CompensationError("abort", failures)
        with trace_context(self.trace_id):
            self.kvs.abort(self.tid)
        if self.trace_id is not None:
            self._tracer.emit("session.end", tid=self.tid,
                              trace_id=self.trace_id, how="abort")


class _ConstituentTransaction:
    """One RDBMS transaction inside a multi-transaction session."""

    def __init__(self, session, undo, description):
        self.session = session
        self.undo = undo
        self.description = description or "txn{}".format(
            session.completed_transactions + 1
        )
        self.connection = None

    def __enter__(self):
        self.connection = self.session.connection_factory()
        self.connection.begin()
        return self

    def execute(self, sql, params=()):
        return self.connection.execute(sql, params)

    def query_one(self, sql, params=()):
        return self.connection.query_one(sql, params)

    def query_scalar(self, sql, params=()):
        return self.connection.query_scalar(sql, params)

    def __exit__(self, exc_type, exc, tb):
        try:
            if exc_type is None:
                self.connection.commit()
                self.session._completed.append((self.description, self.undo))
                if self.session.trace_id is not None:
                    self.session._tracer.emit(
                        "session.sql_commit", tid=self.session.tid,
                        trace_id=self.session.trace_id,
                        step=self.description,
                    )
                return False
            if self.connection.in_transaction:
                self.connection.rollback()
        finally:
            self.connection.close()
        if exc_type is TransactionAbortedError or exc_type is QuarantinedError:
            # The constituent failed: abort the whole session (undoing
            # earlier constituents) and let the error propagate.
            self.session.abort()
        return False


class MultiSessionRunner:
    """Retry loop for multi-transaction session bodies."""

    RETRIABLE = (QuarantinedError, TransactionAbortedError)

    def __init__(self, client, connection_factory, backoff=None, clock=None):
        self.client = client
        self.connection_factory = connection_factory
        self.backoff = backoff or ExponentialBackoff(BackoffConfig())
        self.clock = clock or SystemClock()

    def run(self, body):
        """Run ``body(session)`` to completion; returns its result."""
        delays = self.backoff.delays()
        while True:
            session = MultiTransactionSession(
                self.client, self.connection_factory
            )
            try:
                result = body(session)
                session.commit()
                return result
            except self.RETRIABLE:
                session.abort()
                self.clock.sleep(next(delays))
            except CompensationError:
                raise
            except Exception:
                session.abort()
                raise
