"""IQ-Twemcached: the KVS extended with the IQ framework's commands.

Implements the ten commands of Section 5 of the paper on top of
:class:`repro.kvs.store.CacheStore`:

====  ======================  =====================================================
#     Command                 Purpose
====  ======================  =====================================================
1     ``iq_get``              read; on miss may grant an I lease (token)
2     ``iq_set``              install a value; honoured only with a live I token
3     ``qaread``              R of R-M-W (refresh): exclusive Q lease + read
4     ``sar``                 W of R-M-W (refresh): swap value + release Q
5     ``gen_id``              unique session/transaction identifier (TID)
6     ``qar``                 quarantine-and-register (invalidate)
7     ``dar``                 delete-and-release: apply invalidations (commit)
8     ``iq_delta``            propose an incremental change (append/prepend/...)
9     ``commit``              apply proposed deltas + pending deletes, release Qs
10    ``abort``               discard proposals, release Qs, keep current values
====  ======================  =====================================================

Optimizations (on by default via ``LeaseConfig.serve_pending_versions``):

* Section 3.3 -- a ``qar`` does **not** delete the key; other read sessions
  keep hitting the old version (they serialize before the writer) and the
  delete happens at ``dar``/``commit``.  The quarantining session itself is
  forced to observe a miss on its own key (read-your-own-RDBMS-update).
  With the optimization off, ``qar`` deletes immediately.
* Section 4.2.2 -- proposed deltas are buffered server-side and applied at
  ``commit``; the proposing session observes its own buffered change when
  it re-reads the key, while other sessions keep reading the old version.

Fault tolerance: when a Q lease's lifetime elapses the server deletes the
key-value pair and discards the session's proposals for it (Section 4.2,
condition 3), so a crashed application node cannot leave stale data behind.
"""

import itertools
import threading

from repro.config import KVSConfig, LeaseConfig
from repro.errors import BadValueError, QuarantinedError
from repro.kvs.stats import CacheStats
from repro.kvs.store import CacheStore, StoreResult
from repro.core.backend import LeaseBackend
from repro.core.leases import LeaseTable, QMode, QRequestOutcome
from repro.obs.trace import get_tracer
from repro.util.clock import SystemClock
from repro.util.tokens import TokenGenerator

#: Process-wide numbering for server incarnations; the ``srv`` field on
#: trace events, so shards and restarted servers cannot alias each other
#: in the auditor even when their TID spaces overlap.
_SERVER_IDS = itertools.count(1)


class IQGetResult:
    """Outcome of ``iq_get``: hit, miss-with-I-lease, or miss/backoff."""

    __slots__ = ("value", "token", "backoff")

    def __init__(self, value=None, token=None, backoff=False):
        self.value = value
        self.token = token
        self.backoff = backoff

    @property
    def is_hit(self):
        return self.value is not None

    @property
    def has_lease(self):
        return self.token is not None

    def __repr__(self):
        if self.is_hit:
            return "IQGetResult(hit, value={!r})".format(self.value)
        if self.has_lease:
            return "IQGetResult(miss, I token={})".format(self.token)
        return "IQGetResult(miss, backoff={})".format(self.backoff)


class QaReadResult:
    """Outcome of a granted ``qaread``: the current value (may be None)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    @property
    def is_miss(self):
        return self.value is None

    def __repr__(self):
        return "QaReadResult(value={!r})".format(self.value)


class _SessionState:
    """Server-side bookkeeping for one write session (TID)."""

    __slots__ = ("tid", "q_keys", "invalidated", "deltas", "refreshed")

    def __init__(self, tid):
        self.tid = tid
        #: every key this session holds a Q lease on
        self.q_keys = set()
        #: keys registered for deletion at dar/commit
        self.invalidated = set()
        #: key -> list of (op, operand) proposed incremental changes
        self.deltas = {}
        #: key -> value proposed via buffered refresh (optimization path)
        self.refreshed = {}


_DELTA_OPS = ("append", "prepend", "incr", "decr")


def apply_delta(value, op, operand):
    """Apply one incremental-change operation to a byte-string value.

    ``incr``/``decr`` interpret the value as an ASCII decimal, mirroring
    :meth:`repro.kvs.store.CacheStore.incr`.
    """
    if op == "append":
        return value + operand
    if op == "prepend":
        return operand + value
    if op in ("incr", "decr"):
        try:
            current = int(value.decode("ascii"))
        except (UnicodeDecodeError, ValueError):
            raise BadValueError("cannot increment or decrement non-numeric value")
        if isinstance(operand, int):
            amount = operand
        elif isinstance(operand, (bytes, bytearray)):
            amount = int(operand.decode("ascii"))
        else:
            amount = int(operand)
        if op == "incr":
            return str(current + amount).encode("ascii")
        return str(max(0, current - amount)).encode("ascii")
    raise BadValueError("unknown delta operation {!r}".format(op))


class IQServer(LeaseBackend):
    """The IQ-Twemcached server."""

    def __init__(self, kvs_config=None, lease_config=None, clock=None,
                 tid_start=1):
        self.clock = clock or SystemClock()
        self.stats = CacheStats()
        self.store = CacheStore(
            kvs_config or KVSConfig(), clock=self.clock, stats=self.stats
        )
        self.lease_config = lease_config or LeaseConfig()
        self.leases = LeaseTable(
            self.lease_config, clock=self.clock, stats=self.stats
        )
        # ``tid_start`` lets a restarted server incarnation mint TIDs from
        # a fresh epoch so they cannot collide with sessions that were in
        # flight against its predecessor (repro.faults.chaos).
        self._tids = TokenGenerator(start=tid_start)
        self._sessions = {}
        # TIDs at or below the watermark were retired by a flush_all; a
        # lease request quoting one is a zombie of a pre-flush session
        # and is aborted instead of silently resurrecting session state.
        self._tid_watermark = tid_start - 1
        self._lock = threading.RLock()
        self.obs_name = "iq{}".format(next(_SERVER_IDS))
        self._tracer = get_tracer()
        self.leases.owner = self.obs_name
        self.leases.on_q_expired = self._handle_q_expiry
        self.store.on_entry_removed = self.leases.void_i

    # -- session registry ------------------------------------------------------

    def gen_id(self):
        """Command 5, ``GenID``: mint a unique session identifier."""
        tid = self._tids.next()
        with self._lock:
            self._sessions[tid] = _SessionState(tid)
        return tid

    def _session(self, tid):
        state = self._sessions.get(tid)
        if state is None:
            state = _SessionState(tid)
            self._sessions[tid] = state
        return state

    def _check_tid_live(self, tid, key):
        """Abort lease requests from sessions retired by a flush_all.

        Without this, a session minted before a flush could re-acquire
        leases afterwards and recreate server-side state that no test
        (or restarted deployment) knows to clean up -- the TID would
        leak across the flush.  The zombie gets the same treatment as a
        lease conflict: abort, restart with a fresh (post-flush) TID.
        """
        if tid <= self._tid_watermark:
            self.stats.incr("lease_aborts")
            raise QuarantinedError(key)

    def _handle_q_expiry(self, key, tid):
        """Section 4.2 condition 3: an expired Q lease deletes its key."""
        self.store.delete(key)
        state = self._sessions.get(tid)
        if state is not None:
            state.q_keys.discard(key)
            state.invalidated.discard(key)
            state.deltas.pop(key, None)
            state.refreshed.pop(key, None)

    # -- reads ---------------------------------------------------------------

    def iq_get(self, key, session=None):
        """Command 1, ``IQget``.

        ``session`` identifies the calling write session (TID) when the
        read happens inside one; it enables the read-your-own-update rules
        of Sections 3.3 and 4.2.2.
        """
        with self._lock:
            if session is not None:
                state = self._sessions.get(session)
                if state is not None:
                    if key in state.invalidated:
                        # Section 3.3: the invalidating session must see a
                        # miss so it re-queries the RDBMS and observes its
                        # own update.  No I lease: it may not repopulate.
                        return IQGetResult()
                    if key in state.refreshed:
                        return IQGetResult(value=state.refreshed[key])
                    if key in state.deltas:
                        hit = self.store.get(key)
                        if hit is None:
                            return IQGetResult()
                        value = hit[0]
                        for op, operand in state.deltas[key]:
                            value = apply_delta(value, op, operand)
                        return IQGetResult(value=value)
            hit = self.store.get(key)
            if hit is not None:
                return IQGetResult(value=hit[0])
            token = self.leases.request_i(key)
            if token is None:
                return IQGetResult(backoff=True)
            return IQGetResult(token=token)

    def iq_set(self, key, value, token):
        """Command 2, ``IQset``: honoured only while the I token is live."""
        with self._lock:
            if not self.leases.redeem_i(key, token):
                self.stats.incr("ignored_sets")
                if self._tracer.active:
                    self._tracer.emit("iq.set", key=key, applied=False,
                                      srv=self.obs_name)
                return False
            self.store.set(key, value)
            if self._tracer.active:
                self._tracer.emit("iq.set", key=key, applied=True,
                                  srv=self.obs_name)
            return True

    def release_i(self, key, token):
        """Relinquish an unredeemed I lease (reader found nothing to cache)."""
        with self._lock:
            return self.leases.redeem_i(key, token)

    # -- precise-clock reads (lease-free; repro.clock) -------------------------

    def cget(self, key, clock_now, extend=None):
        """Interval read at commit-clock reading ``clock_now``.

        The lease-free read path: serves the cached value only while its
        validity interval covers ``clock_now``, never consulting the
        lease table.  ``extend`` carries a freshly promised horizon for
        dynamic self-invalidation.  Returns a
        :class:`~repro.kvs.store.ClockGetResult`.
        """
        with self._lock:
            result = self.store.cget(key, clock_now, extend=extend)
            if self._tracer.active:
                if result.is_hit:
                    self._tracer.emit(
                        "clock.serve", key=key, clock=clock_now,
                        start=result.valid_from, expiry=result.valid_until,
                        srv=self.obs_name,
                    )
                    if result.extended:
                        self._tracer.emit(
                            "clock.extend", key=key, clock=clock_now,
                            expiry=result.valid_until, srv=self.obs_name,
                        )
                elif result.expired:
                    self._tracer.emit("clock.expire", key=key,
                                      clock=clock_now, srv=self.obs_name)
            return result

    def cset(self, key, value, valid_from, valid_until):
        """Interval fill: install ``value`` valid over
        ``[valid_from, valid_until)`` commit-clock ticks.

        No token: the caller's *promise* (registered with the commit
        clock before computing the value) is what makes the fill safe,
        so the server only arbitrates between competing intervals --
        the longer-lived one wins.  Returns True when stored.
        """
        with self._lock:
            outcome = self.store.cset(key, value, valid_from, valid_until)
            stored = outcome is StoreResult.STORED
            if self._tracer.active:
                self._tracer.emit("clock.fill", key=key, start=valid_from,
                                  expiry=valid_until, applied=stored,
                                  srv=self.obs_name)
            return stored

    # -- refresh (R-M-W) ---------------------------------------------------------

    def qaread(self, key, tid):
        """Command 3, ``QaRead``: exclusive Q lease + read.

        Raises :class:`QuarantinedError` when another session holds a Q
        lease on ``key`` (Figure 5b: reject and abort requester).
        """
        with self._lock:
            self._check_tid_live(tid, key)
            outcome = self.leases.request_q(key, tid, QMode.EXCLUSIVE)
            if outcome is QRequestOutcome.REJECTED:
                self.stats.incr("lease_aborts")
                raise QuarantinedError(key)
            state = self._session(tid)
            state.q_keys.add(key)
            if key in state.refreshed:
                return QaReadResult(state.refreshed[key])
            hit = self.store.get(key)
            return QaReadResult(hit[0] if hit is not None else None)

    def sar(self, key, value, tid):
        """Command 4, ``SaR``: swap the value and release the Q lease.

        A ``None`` value only releases the lease.  If the session's Q lease
        expired (key already deleted by the server), the write is ignored.
        Returns True when a value was stored.
        """
        with self._lock:
            state = self._sessions.get(tid)
            if not self.leases.q_held_by(key, tid):
                if value is not None:
                    self.stats.incr("ignored_sets")
                return False
            stored = False
            if value is not None:
                self.store.set(key, value)
                stored = True
            if self._tracer.active:
                # Emitted before the release so the auditor knows the
                # imminent lease.q.release is SaR's legitimate per-key one.
                self._tracer.emit("iq.sar", key=key, tid=tid, stored=stored,
                                  srv=self.obs_name)
            self.leases.release_q(key, tid)
            if state is not None:
                state.q_keys.discard(key)
                state.refreshed.pop(key, None)
            return stored

    def propose_refresh(self, key, value, tid):
        """Optimization 4.2.2 for refresh: buffer the new value server-side.

        The proposing session sees ``value`` on re-read; everyone else keeps
        reading the old version until :meth:`commit`.  Requires a Q lease
        obtained via :meth:`qaread`.
        """
        with self._lock:
            if not self.leases.q_held_by(key, tid):
                return False
            self._session(tid).refreshed[key] = value
            return True

    # -- invalidate ---------------------------------------------------------------

    def qar(self, tid, key):
        """Command 6, ``QaR``: quarantine-and-register for invalidation.

        Always granted against other invalidate Q leases (deletes are
        idempotent, Figure 5a); raises :class:`QuarantinedError` only when
        the key is exclusively quarantined by a refresh/delta session.
        """
        with self._lock:
            self._check_tid_live(tid, key)
            outcome = self.leases.request_q(key, tid, QMode.SHARED_INVALIDATE)
            if outcome is QRequestOutcome.REJECTED:
                self.stats.incr("lease_aborts")
                raise QuarantinedError(key)
            state = self._session(tid)
            state.q_keys.add(key)
            state.invalidated.add(key)
            if not self.lease_config.serve_pending_versions:
                # Optimization off: delete eagerly (the paper's base
                # protocol of Section 3.2).
                self.store.delete(key)
            return True

    def dar(self, tid):
        """Command 7, ``DaR``: delete registered keys, release Q leases."""
        self.commit(tid)

    def qar_many(self, tid, keys):
        """Bulk ``QaR`` under one lock acquisition (wire command ``qareg``).

        Semantically identical to looping :meth:`qar` -- same key order,
        same stop-at-first-reject -- but atomic with respect to other
        commands and counted once in ``batched_qar_grants``.
        """
        from repro.errors import CacheUnavailableError

        results = {}
        granted = 0
        with self._lock:
            for key in keys:
                try:
                    self.qar(tid, key)
                except QuarantinedError:
                    results[key] = "abort"
                    break
                except CacheUnavailableError:
                    results[key] = "unavailable"
                    continue
                results[key] = "granted"
                granted += 1
            if granted:
                self.stats.incr("batched_qar_grants", granted)
        return results

    def iq_mget(self, keys, session=None):
        """Bulk ``IQget`` under one lock acquisition (wire command
        ``iqmget``): identical to looping :meth:`iq_get` in key order."""
        with self._lock:
            return {key: self.iq_get(key, session=session) for key in keys}

    # -- incremental update ----------------------------------------------------------

    def iq_delta(self, tid, key, op, operand):
        """Command 8, ``IQ-delta``: propose an incremental change.

        ``op`` is one of ``append``, ``prepend``, ``incr``, ``decr``.  The
        change is buffered and applied at :meth:`commit`.  Raises
        :class:`QuarantinedError` when the key is quarantined by another
        session (Figure 5b).
        """
        if op not in _DELTA_OPS:
            raise BadValueError("unknown delta operation {!r}".format(op))
        with self._lock:
            self._check_tid_live(tid, key)
            outcome = self.leases.request_q(key, tid, QMode.EXCLUSIVE)
            if outcome is QRequestOutcome.REJECTED:
                self.stats.incr("lease_aborts")
                raise QuarantinedError(key)
            state = self._session(tid)
            state.q_keys.add(key)
            state.deltas.setdefault(key, []).append((op, operand))
            return True

    # -- session termination ------------------------------------------------------------

    def commit(self, tid):
        """Command 9: apply this session's proposals and release its leases.

        Order matters: deletions and buffered changes are applied *before*
        the Q leases are released, so no reader can slip in between and
        observe the pre-commit value after the lease is gone.
        """
        with self._lock:
            state = self._sessions.pop(tid, None)
            if state is None:
                return
            tracing = self._tracer.active
            if tracing:
                self._tracer.emit("iq.commit.begin", tid=tid,
                                  srv=self.obs_name)
            for key in state.invalidated:
                if self.leases.q_held_by(key, tid):
                    self.store.delete(key)
                    if tracing:
                        self._tracer.emit("kvs.apply", key=key, tid=tid,
                                          op="delete", srv=self.obs_name)
            for key, ops in state.deltas.items():
                if not self.leases.q_held_by(key, tid):
                    continue
                hit = self.store.get(key)
                if hit is None:
                    # A delta to a missing value has nothing to change; the
                    # next read session recomputes from the RDBMS.
                    continue
                value = hit[0]
                for op, operand in ops:
                    value = apply_delta(value, op, operand)
                self.store.set(key, value)
                if tracing:
                    self._tracer.emit("kvs.apply", key=key, tid=tid,
                                      op="delta", srv=self.obs_name)
            for key, value in state.refreshed.items():
                if self.leases.q_held_by(key, tid):
                    self.store.set(key, value)
                    if tracing:
                        self._tracer.emit("kvs.apply", key=key, tid=tid,
                                          op="refresh", srv=self.obs_name)
            for key in state.q_keys:
                self.leases.release_q(key, tid)
            if tracing:
                self._tracer.emit("iq.commit.end", tid=tid,
                                  srv=self.obs_name)

    def abort(self, tid):
        """Command 10: discard proposals, release leases, keep values."""
        with self._lock:
            state = self._sessions.pop(tid, None)
            if state is None:
                return
            tracing = self._tracer.active
            if tracing:
                self._tracer.emit("iq.abort.begin", tid=tid,
                                  srv=self.obs_name)
            for key in state.q_keys:
                self.leases.release_q(key, tid)
            if tracing:
                self._tracer.emit("iq.abort.end", tid=tid,
                                  srv=self.obs_name)

    # -- plumbing ---------------------------------------------------------------

    def flush_all(self):
        """Drop every value, lease, and session (test isolation helper).

        In-flight session state is retired too: the TID watermark
        advances to the last identifier minted before the flush, so a
        pre-flush session that resurfaces afterwards (``qar``/``qaread``/
        ``iq_delta`` with its old TID) aborts instead of recreating
        server-side state -- TIDs cannot leak across flushes.  Its
        terminators (``commit``/``abort``/``dar``) remain safe no-ops.
        """
        with self._lock:
            self.store.flush_all()
            self._sessions.clear()
            self.leases.clear()
            self._tid_watermark = self._tids.last

    def session_count(self):
        with self._lock:
            return len(self._sessions)
