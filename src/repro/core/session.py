"""The session programming model.

A *session* is "a sequence of operations consisting of at most one RDBMS
transaction and one or more KVS operations" (Table 2 of the paper).  Write
sessions follow a 2PL-like discipline: all Q leases are acquired before
the RDBMS transaction commits (the growing phase) and the KVS changes are
applied -- and leases released -- after the commit (the shrinking phase).

Two lease-acquisition strategies are compared in Section 6.2:

* :attr:`AcquisitionMode.PRIOR` -- QaRead/QaR before ``BEGIN``; a lease
  conflict needs no RDBMS rollback but has no queuing, so under load a
  session can starve (Table 6's high restart maxima);
* :attr:`AcquisitionMode.DURING` -- QaRead/QaR inside the transaction; a
  conflict forces a rollback but the shorter lease hold time keeps restart
  counts low.

:class:`SessionRunner` executes a session body with automatic abort,
rollback, backoff, and restart accounting (the Table 6 metric).
"""

import enum

from repro.config import BackoffConfig
from repro.errors import (
    CacheUnavailableError,
    QuarantinedError,
    SessionAbortedError,
    StarvationError,
    TransactionAbortedError,
)
from repro.obs.trace import get_tracer, trace_context
from repro.util.backoff import ExponentialBackoff
from repro.util.clock import SystemClock


class AcquisitionMode(enum.Enum):
    """When a write session acquires its Q leases (Section 6.2)."""

    PRIOR = "prior to the RDBMS transaction"
    DURING = "during the RDBMS transaction"


class WriteSession:
    """One attempt at executing a write session.

    Binds a fresh TID from the IQ-Server to an RDBMS connection and exposes
    the session-scoped commands.  The KVS-side commit happens via
    :meth:`dar` (invalidate), :meth:`sar` per key (refresh), or
    :meth:`commit_kvs` (incremental update) -- always *after*
    :meth:`commit_sql`.
    """

    def __init__(self, client, connection):
        self.kvs = client
        self.sql = connection
        self._tracer = get_tracer()
        #: Trace id propagated through every KVS command of this session
        #: (and, via the wire token / shard fan-out, to the servers it
        #: touches).  ``None`` when tracing is disabled -- the no-op path.
        self.trace_id = self._tracer.new_trace() if self._tracer.active else None
        with trace_context(self.trace_id):
            self.tid = client.gen_id()
        self._finished = False
        if self.trace_id is not None:
            self._tracer.emit("session.begin", tid=self.tid,
                              trace_id=self.trace_id)

    def _end(self, how):
        if self.trace_id is not None:
            self._tracer.emit("session.end", tid=self.tid,
                              trace_id=self.trace_id, how=how)

    # -- KVS commands bound to this session's TID --------------------------------

    def iq_get(self, key):
        """Read ``key`` with this session's read-your-own-update view."""
        with trace_context(self.trace_id):
            return self.kvs.iq_get(key, session=self.tid)

    def qar(self, key):
        with trace_context(self.trace_id):
            return self.kvs.qar(self.tid, key)

    def qareg(self, keys):
        """Bulk-acquire invalidation Q leases for ``keys`` in one batch.

        Returns the ordered key -> ``"granted"``/``"abort"``/
        ``"unavailable"`` dict of
        :meth:`~repro.core.backend.LeaseBackend.qar_many`; acquisition
        stops at the first reject exactly like sequential :meth:`qar`.
        """
        with trace_context(self.trace_id):
            return self.kvs.qar_many(self.tid, keys)

    def qaread(self, key):
        with trace_context(self.trace_id):
            return self.kvs.qaread(key, self.tid)

    def sar(self, key, value):
        with trace_context(self.trace_id):
            return self.kvs.sar(key, value, self.tid)

    def propose_refresh(self, key, value):
        with trace_context(self.trace_id):
            return self.kvs.propose_refresh(key, value, self.tid)

    def delta(self, key, op, operand):
        with trace_context(self.trace_id):
            return self.kvs.iq_delta(self.tid, key, op, operand)

    def dar(self):
        with trace_context(self.trace_id):
            self.kvs.dar(self.tid)
        self._finished = True
        self._end("dar")

    def commit_kvs(self):
        with trace_context(self.trace_id):
            self.kvs.commit(self.tid)
        self._finished = True
        self._end("commit")

    def abort_kvs(self):
        with trace_context(self.trace_id):
            self.kvs.abort(self.tid)
        self._finished = True
        self._end("abort")

    # -- RDBMS operations ------------------------------------------------------------

    def begin_sql(self):
        return self.sql.begin()

    def execute(self, sql, params=()):
        return self.sql.execute(sql, params)

    def query_one(self, sql, params=()):
        return self.sql.query_one(sql, params)

    def query_scalar(self, sql, params=()):
        return self.sql.query_scalar(sql, params)

    def on_commit(self, callback):
        return self.sql.on_commit(callback)

    def commit_sql(self):
        self.sql.commit()
        if self.trace_id is not None:
            # Emitted only after a successful commit: the auditor's 2PL
            # check treats KVS applies before this event as violations.
            self._tracer.emit("session.sql_commit", tid=self.tid,
                              trace_id=self.trace_id)

    def rollback_sql(self):
        if self.sql.in_transaction:
            self.sql.rollback()

    # -- cleanup ----------------------------------------------------------------------

    def detach_kvs(self):
        """Give up on this session's KVS side without contacting the server.

        Used when the cache became unreachable after the RDBMS commit:
        the session's Q leases are left to expire server-side, which
        deletes the quarantined keys (Section 4.2 condition 3) and keeps
        the cache safe without a reachable connection.
        """
        self._finished = True
        self._end("detach")

    def abandon(self):
        """Release everything after a failure: KVS leases + RDBMS rollback."""
        if not self._finished:
            try:
                with trace_context(self.trace_id):
                    self.kvs.abort(self.tid)
            except CacheUnavailableError:
                # Unreachable cache: the leases expire on their own and
                # the server discards the session's proposals.
                pass
            self._finished = True
            self._end("abandon")
        self.rollback_sql()


class SessionOutcome:
    """Result of a completed session plus its restart statistics."""

    __slots__ = ("result", "restarts")

    def __init__(self, result, restarts):
        self.result = result
        self.restarts = restarts

    def __repr__(self):
        return "SessionOutcome(restarts={}, result={!r})".format(
            self.restarts, self.result
        )


class SessionRunner:
    """Run write-session bodies with abort/retry semantics.

    ``body(session)`` implements one attempt of the session; raising
    :class:`QuarantinedError` (Q lease conflict) or
    :class:`TransactionAbortedError` (RDBMS write-write conflict) triggers
    full cleanup -- release leases, roll back the transaction -- a backoff
    delay, and a restart with a fresh TID, per Section 4.2.  The restart
    count is the metric reported in Table 6.
    """

    RETRIABLE = (QuarantinedError, TransactionAbortedError)

    def __init__(self, client, connection_factory, backoff=None, clock=None):
        self.client = client
        self.connection_factory = connection_factory
        self.backoff = backoff or ExponentialBackoff(BackoffConfig())
        self.clock = clock or SystemClock()

    def run(self, body):
        """Execute ``body`` until it succeeds; returns a SessionOutcome."""
        restarts = 0
        delays = self.backoff.delays()
        while True:
            connection = self.connection_factory()
            session = WriteSession(self.client, connection)
            try:
                result = body(session)
                return SessionOutcome(result, restarts)
            except self.RETRIABLE:
                session.abandon()
                restarts += 1
                tracer = get_tracer()
                if tracer.active:
                    tracer.emit("session.restart", tid=session.tid,
                                trace_id=session.trace_id, restarts=restarts)
                try:
                    delay = next(delays)
                except StarvationError:
                    raise StarvationError(restarts)
                self.clock.sleep(delay)
            except SessionAbortedError:
                session.abandon()
                raise
            except Exception:
                session.abandon()
                raise
            finally:
                connection.close()
